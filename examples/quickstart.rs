//! Quickstart: train a small classifier on synthetic MNIST, wrap it in the
//! default MagNet defense, attack it with EAD, and see who wins.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use magnet_l1::attacks::{Attack, DecisionRule, EadConfig, ElasticNetAttack};
use magnet_l1::data::synth::mnist_like;
use magnet_l1::magnet::variants::{assemble_mnist_defense, train_mnist_autoencoders, TrainSpec};
use magnet_l1::magnet::DefenseScheme;
use magnet_l1::nn::optim::Adam;
use magnet_l1::nn::train::{fit_classifier, gather0, TrainConfig};
use magnet_l1::nn::Sequential;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: procedurally generated MNIST-like digits.
    let train = mnist_like(1500, 1);
    let test = mnist_like(200, 2);
    println!("generated {} training digits", train.len());

    // 2. Victim classifier: small CNN, trained for a couple of epochs.
    let specs = magnet_l1::magnet::arch::mnist_classifier(28, 1, 6, 12, 48, 10);
    let mut classifier = Sequential::from_specs(&specs, 42)?;
    let mut opt = Adam::with_defaults(1e-3);
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 32,
        seed: 7,
        label_smoothing: 0.0,
        verbose: true,
        checkpoint: None,
    };
    fit_classifier(
        &mut classifier,
        &mut opt,
        train.images(),
        train.labels(),
        &cfg,
    )?;

    // 3. Default MagNet: two auto-encoders, two reconstruction detectors,
    //    reformer, thresholds calibrated at 2% FPR on held-out data.
    let spec = TrainSpec {
        epochs: 8,
        ..TrainSpec::default()
    };
    let aes = train_mnist_autoencoders(1, &spec, train.images())?;
    let defense = assemble_mnist_defense("default", &aes, &classifier, &[], test.images(), 0.02)?;

    // 4. Attack 16 correctly classified digits with EAD (oblivious setting:
    //    the attacker only ever sees the undefended classifier).
    let preds = classifier.predict(test.images())?;
    let correct: Vec<usize> = preds
        .iter()
        .zip(test.labels())
        .enumerate()
        .filter(|(_, (p, l))| p == l)
        .map(|(i, _)| i)
        .take(16)
        .collect();
    let x = gather0(test.images(), &correct)?;
    let labels: Vec<usize> = correct.iter().map(|&i| test.labels()[i]).collect();

    let attack = ElasticNetAttack::new(EadConfig {
        kappa: 2.0,
        beta: 0.1,
        iterations: 80,
        binary_search_steps: 3,
        initial_c: 1.0,
        learning_rate: 0.05,
        rule: DecisionRule::ElasticNet,
        ..EadConfig::default()
    })?;
    let outcome = attack.run(&mut classifier, &x, &labels)?;
    println!(
        "\nEAD success rate on the undefended classifier: {:.0}%",
        outcome.success_rate() * 100.0
    );
    println!(
        "mean distortion of successful examples: L1 {:?}, L2 {:?}",
        outcome.mean_l1_successful(),
        outcome.mean_l2_successful()
    );

    // 5. How does MagNet fare against the *successfully crafted* examples?
    let succeeded: Vec<usize> = outcome
        .success
        .iter()
        .enumerate()
        .filter(|(_, &s)| s)
        .map(|(i, _)| i)
        .collect();
    if succeeded.is_empty() {
        println!("no adversarial examples to evaluate the defense on");
        return Ok(());
    }
    let adv = gather0(&outcome.adversarial, &succeeded)?;
    let adv_labels: Vec<usize> = succeeded.iter().map(|&i| labels[i]).collect();
    let accuracy = defense.accuracy(&adv, &adv_labels, DefenseScheme::Full)?;
    println!(
        "MagNet classification accuracy on EAD examples: {:.0}% (ASR {:.0}%)",
        accuracy * 100.0,
        (1.0 - accuracy) * 100.0
    );
    Ok(())
}
