//! Threat-model comparison: the paper's *oblivious* attacker (who never
//! sees MagNet) vs the *gray-box* attacker of Carlini & Wagner
//! (arXiv:1711.08478), who knows an auto-encoder shields the classifier and
//! attacks the composition `F(AE(x))` directly.
//!
//! ```text
//! cargo run --release --example graybox_vs_oblivious
//! ```

use magnet_l1::attacks::{Attack, DecisionRule, EadConfig, ElasticNetAttack};
use magnet_l1::data::synth::mnist_like;
use magnet_l1::magnet::graybox::ReformedModel;
use magnet_l1::magnet::variants::{assemble_mnist_defense, train_mnist_autoencoders, TrainSpec};
use magnet_l1::magnet::DefenseScheme;
use magnet_l1::nn::optim::Adam;
use magnet_l1::nn::train::{fit_classifier, gather0, TrainConfig};
use magnet_l1::nn::Sequential;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = mnist_like(1500, 41);
    let test = mnist_like(200, 42);

    let specs = magnet_l1::magnet::arch::mnist_classifier(28, 1, 6, 12, 48, 10);
    let mut classifier = Sequential::from_specs(&specs, 4)?;
    let mut opt = Adam::with_defaults(1e-3);
    fit_classifier(
        &mut classifier,
        &mut opt,
        train.images(),
        train.labels(),
        &TrainConfig {
            epochs: 3,
            batch_size: 32,
            seed: 6,
            label_smoothing: 0.0,
            verbose: false,
            checkpoint: None,
        },
    )?;

    let aes = train_mnist_autoencoders(
        1,
        &TrainSpec {
            epochs: 4,
            ..TrainSpec::default()
        },
        train.images(),
    )?;
    let defense = assemble_mnist_defense("default", &aes, &classifier, &[], test.images(), 0.01)?;

    // Select correctly classified victims.
    let preds = classifier.predict(test.images())?;
    let correct: Vec<usize> = preds
        .iter()
        .zip(test.labels())
        .enumerate()
        .filter(|(_, (p, l))| p == l)
        .map(|(i, _)| i)
        .take(16)
        .collect();
    let x = gather0(test.images(), &correct)?;
    let labels: Vec<usize> = correct.iter().map(|&i| test.labels()[i]).collect();

    let attack = ElasticNetAttack::new(EadConfig {
        kappa: 3.0,
        beta: 0.01,
        iterations: 60,
        binary_search_steps: 3,
        initial_c: 0.5,
        learning_rate: 0.02,
        rule: DecisionRule::ElasticNet,
        ..EadConfig::default()
    })?;

    // Oblivious: attack the bare classifier.
    let oblivious = attack.run(&mut classifier, &x, &labels)?;
    let acc_oblivious = defense.accuracy(&oblivious.adversarial, &labels, DefenseScheme::Full)?;

    // Gray-box: attack the classifier *through* the reformer.
    let mut composed = ReformedModel::new(aes.ae_one.clone(), classifier.clone());
    let graybox = attack.run(&mut composed, &x, &labels)?;
    let acc_graybox = defense.accuracy(&graybox.adversarial, &labels, DefenseScheme::Full)?;

    println!("attack: {}", attack.name());
    println!(
        "oblivious: crafted {:.0}% | MagNet accuracy {:.0}% (ASR {:.0}%) | mean L2 {:?}",
        oblivious.success_rate() * 100.0,
        acc_oblivious * 100.0,
        (1.0 - acc_oblivious) * 100.0,
        oblivious.mean_l2_successful()
    );
    println!(
        "gray-box : crafted {:.0}% | MagNet accuracy {:.0}% (ASR {:.0}%) | mean L2 {:?}",
        graybox.success_rate() * 100.0,
        acc_graybox * 100.0,
        (1.0 - acc_graybox) * 100.0,
        graybox.mean_l2_successful()
    );
    println!(
        "\nThe gray-box attacker optimizes through the reformer, so reforming\n\
         cannot undo its perturbations — the paper's point is that the much\n\
         weaker oblivious attacker *also* succeeds once the attack is L1-based."
    );
    Ok(())
}
