//! Crafts adversarial examples with four different attacks against the same
//! image and renders the perturbations as ASCII art, illustrating the
//! L1-vs-L2 geometry the paper is about: EAD's perturbations are sparse and
//! concentrated, C&W's are dense and spread out.
//!
//! ```text
//! cargo run --release --example craft_adversarial
//! ```

use magnet_l1::attacks::{
    Attack, CarliniWagnerL2, CwConfig, DecisionRule, DeepFool, DeepFoolConfig, EadConfig,
    ElasticNetAttack, Fgsm,
};
use magnet_l1::data::synth::mnist_like;
use magnet_l1::eval::render::ascii_pair;
use magnet_l1::nn::optim::Adam;
use magnet_l1::nn::train::{fit_classifier, gather0, TrainConfig};
use magnet_l1::nn::Sequential;
use magnet_l1::tensor::norms;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = mnist_like(1200, 11);
    let test = mnist_like(100, 12);

    let specs = magnet_l1::magnet::arch::mnist_classifier(28, 1, 6, 12, 48, 10);
    let mut classifier = Sequential::from_specs(&specs, 5)?;
    let mut opt = Adam::with_defaults(1e-3);
    fit_classifier(
        &mut classifier,
        &mut opt,
        train.images(),
        train.labels(),
        &TrainConfig {
            epochs: 3,
            batch_size: 32,
            seed: 3,
            label_smoothing: 0.0,
            verbose: false,
            checkpoint: None,
        },
    )?;

    // Pick the first correctly classified test digit.
    let preds = classifier.predict(test.images())?;
    let idx = preds
        .iter()
        .zip(test.labels())
        .position(|(p, l)| p == l)
        .expect("at least one correct prediction");
    let x = gather0(test.images(), &[idx])?;
    let label = vec![test.labels()[idx]];

    let attacks: Vec<(&str, Box<dyn Attack>)> = vec![
        ("FGSM", Box::new(Fgsm::new(0.15)?)),
        (
            "DeepFool",
            Box::new(DeepFool::new(DeepFoolConfig::default())?),
        ),
        (
            "C&W L2",
            Box::new(CarliniWagnerL2::new(CwConfig {
                kappa: 5.0,
                iterations: 80,
                binary_search_steps: 4,
                initial_c: 0.1,
                ..CwConfig::default()
            })?),
        ),
        (
            "EAD (EN, beta=0.1)",
            Box::new(ElasticNetAttack::new(EadConfig {
                kappa: 5.0,
                beta: 0.1,
                iterations: 80,
                binary_search_steps: 4,
                initial_c: 0.1,
                rule: DecisionRule::ElasticNet,
                ..EadConfig::default()
            })?),
        ),
    ];

    for (name, attack) in attacks {
        let outcome = attack.run(&mut classifier, &x, &label)?;
        if !outcome.success[0] {
            println!("--- {name}: attack failed ---\n");
            continue;
        }
        let delta = outcome.adversarial.sub(&x)?;
        let pred = classifier.predict(&outcome.adversarial)?[0];
        let header = format!(
            "--- {name}: {} -> {pred} | L0 {} | L1 {:.2} | L2 {:.2} | Linf {:.2} ---",
            label[0],
            norms::l0_norm(&delta, 1e-3),
            outcome.l1[0],
            outcome.l2[0],
            outcome.linf[0],
        );
        println!("{}", ascii_pair(&x, &outcome.adversarial, &header)?);
    }
    println!(
        "Note the L0 column: EAD perturbs far fewer pixels than C&W at a\n\
         similar L2 — exactly the sparsity the ISTA shrinkage step induces."
    );
    Ok(())
}
