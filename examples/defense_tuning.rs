//! Detector calibration study: how MagNet's detector thresholds trade
//! false positives on clean data against detection of adversarial examples,
//! across the FPR budget and across detector types.
//!
//! ```text
//! cargo run --release --example defense_tuning
//! ```

use magnet_l1::attacks::{Attack, DecisionRule, EadConfig, ElasticNetAttack};
use magnet_l1::data::synth::mnist_like;
use magnet_l1::magnet::variants::{train_mnist_autoencoders, TrainSpec};
use magnet_l1::magnet::{Detector, JsdDetector, ReconstructionDetector, ReconstructionNorm};
use magnet_l1::nn::optim::Adam;
use magnet_l1::nn::train::{fit_classifier, gather0, TrainConfig};
use magnet_l1::nn::Sequential;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = mnist_like(1500, 21);
    let valid = mnist_like(300, 22);
    let test = mnist_like(150, 23);

    let specs = magnet_l1::magnet::arch::mnist_classifier(28, 1, 6, 12, 48, 10);
    let mut classifier = Sequential::from_specs(&specs, 9)?;
    let mut opt = Adam::with_defaults(1e-3);
    fit_classifier(
        &mut classifier,
        &mut opt,
        train.images(),
        train.labels(),
        &TrainConfig {
            epochs: 3,
            batch_size: 32,
            seed: 1,
            label_smoothing: 0.0,
            verbose: false,
            checkpoint: None,
        },
    )?;

    let aes = train_mnist_autoencoders(
        1,
        &TrainSpec {
            epochs: 5,
            ..TrainSpec::default()
        },
        train.images(),
    )?;

    // Craft one batch of adversarial examples to measure detection rates on.
    let preds = classifier.predict(test.images())?;
    let correct: Vec<usize> = preds
        .iter()
        .zip(test.labels())
        .enumerate()
        .filter(|(_, (p, l))| p == l)
        .map(|(i, _)| i)
        .take(24)
        .collect();
    let x = gather0(test.images(), &correct)?;
    let labels: Vec<usize> = correct.iter().map(|&i| test.labels()[i]).collect();
    let attack = ElasticNetAttack::new(EadConfig {
        kappa: 20.0,
        beta: 0.01,
        iterations: 60,
        binary_search_steps: 3,
        initial_c: 0.1,
        rule: DecisionRule::ElasticNet,
        ..EadConfig::default()
    })?;
    let outcome = attack.run(&mut classifier, &x, &labels)?;
    println!(
        "crafted {} adversarial examples (ASR {:.0}%)\n",
        outcome.success.iter().filter(|&&s| s).count(),
        outcome.success_rate() * 100.0
    );

    let mut detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(ReconstructionDetector::new(
            aes.ae_one.clone(),
            ReconstructionNorm::L2,
        )),
        Box::new(ReconstructionDetector::new(
            aes.ae_two.clone(),
            ReconstructionNorm::L1,
        )),
        Box::new(JsdDetector::new(
            aes.ae_one.clone(),
            classifier.clone(),
            10.0,
        )?),
        Box::new(JsdDetector::new(
            aes.ae_one.clone(),
            classifier.clone(),
            40.0,
        )?),
    ];

    println!(
        "{:<12} {:>8} {:>14} {:>16}",
        "detector", "fpr", "threshold", "detection rate"
    );
    for fpr in [0.005f32, 0.01, 0.02, 0.05, 0.1] {
        for det in detectors.iter_mut() {
            let threshold = det.calibrate(valid.images(), fpr)?;
            let flags = det.flags(&outcome.adversarial)?;
            let rate = flags
                .iter()
                .zip(&outcome.success)
                .filter(|(&f, &s)| f && s)
                .count() as f32
                / outcome.success.iter().filter(|&&s| s).count().max(1) as f32;
            println!(
                "{:<12} {:>8.3} {:>14.4} {:>15.1}%",
                det.name(),
                fpr,
                threshold,
                rate * 100.0
            );
        }
        println!();
    }
    println!(
        "Raising the FPR budget lowers the thresholds and catches more\n\
         adversarial examples — at the price of rejecting clean inputs.\n\
         This is the trade-off behind MagNet's Table III accuracy drop."
    );
    Ok(())
}
