//! A miniature version of the paper's whole study, on CIFAR-like data:
//! sweep the attack confidence κ and watch the default MagNet hold against
//! C&W while EAD walks through it.
//!
//! ```text
//! cargo run --release --example transfer_study
//! ```

use magnet_l1::eval::config::Scale;
use magnet_l1::eval::sweep::{AttackKind, SweepRunner};
use magnet_l1::eval::zoo::{Scenario, Variant, Zoo};
use magnet_l1::magnet::DefenseScheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small scale so this example finishes in a couple of minutes; the
    // experiment binaries (table1, fig2, …) run the real thing.
    let mut scale = Scale::smoke();
    scale.train_size = 1200;
    scale.valid_size = 250;
    scale.test_size = 250;
    scale.attack_count = 16;
    scale.attack_iterations = 50;
    scale.binary_search_steps = 3;
    scale.classifier_epochs = 3;
    scale.ae_epochs = 4;

    let zoo = Zoo::new("models-example", scale);
    let scenario = Scenario::Cifar;
    println!("training victim classifier and MagNet (cached under models-example/)…");
    let bundle = zoo.bundle(scenario)?;
    println!(
        "clean test accuracy without defense: {:.1}%",
        bundle.clean_accuracy * 100.0
    );
    let mut defense = zoo.defense(scenario, Variant::Default)?;
    let mut runner = SweepRunner::new(&zoo, scenario)?;

    let kappas = [0.0f32, 10.0, 20.0, 40.0];
    println!(
        "\n{:<22} {}",
        "attack",
        kappas.map(|k| format!("k={k:<5}")).join(" ")
    );
    for kind in AttackKind::figure_trio() {
        let mut cells = Vec::new();
        for &kappa in &kappas {
            let eval = runner.evaluate(&kind, kappa, &mut defense)?;
            cells.push(format!(
                "{:>5.1}%",
                eval.accuracy_for(DefenseScheme::Full) * 100.0
            ));
        }
        println!("{:<22} {}", kind.label(), cells.join(" "));
    }
    println!(
        "\nRows are MagNet's classification accuracy on the crafted examples\n\
         (higher = better defense). The C&W row should stay high while the\n\
         EAD rows collapse — the paper's headline result."
    );
    Ok(())
}
