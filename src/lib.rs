//! # magnet-l1
//!
//! A full reproduction of *"On the Limitation of MagNet Defense against
//! L1-based Adversarial Examples"* (Lu, Chen, Chen & Yu — DSN 2018) in pure
//! Rust, built from scratch: tensor substrate, neural-network framework with
//! manual backprop, dataset generators, the MagNet defense, the C&W and EAD
//! attacks, and an evaluation harness that regenerates every table and
//! figure of the paper.
//!
//! This crate is a facade that re-exports the workspace crates under one
//! name. For the architecture map, see `DESIGN.md`; for the reproduced
//! numbers, see `EXPERIMENTS.md`.
//!
//! ## Quickstart
//!
//! ```no_run
//! use magnet_l1::data::synth::mnist_like;
//! use magnet_l1::eval::zoo::{Scenario, Zoo};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Train (or load from cache) the victim classifier and default MagNet.
//! let zoo = Zoo::with_defaults("models")?;
//! let bundle = zoo.bundle(Scenario::Mnist)?;
//! println!("test accuracy: {:.2}%", 100.0 * bundle.clean_accuracy);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use adv_attacks as attacks;
pub use adv_data as data;
pub use adv_eval as eval;
pub use adv_magnet as magnet;
pub use adv_nn as nn;
pub use adv_tensor as tensor;
