#!/usr/bin/env sh
# Regenerates every table and figure of the paper, then renders
# EXPERIMENTS.md. Usage: scripts/reproduce.sh [smoke|quick|paper]
set -eu
SCALE="${1:-quick}"
cargo build --release --workspace
cargo run --release -p adv-eval --bin reproduce_all -- --scale "$SCALE"
cargo run --release -p adv-eval --bin fig1 -- --scale "$SCALE"
cargo run --release -p adv-eval --bin graybox -- --scale "$SCALE"
cargo run --release -p adv-eval --bin ablation_ista -- --scale "$SCALE"
cargo run --release -p adv-eval --bin detector_breakdown -- --scale "$SCALE"
cargo run --release -p adv-eval --bin experiments_md -- --scale "$SCALE"
echo "Done. CSVs + SVGs in results/, summary in EXPERIMENTS.md"
