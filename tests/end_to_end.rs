//! Cross-crate integration tests: the full train → defend → attack →
//! evaluate pipeline at smoke scale, exercised through the facade crate.

use magnet_l1::attacks::{
    Attack, CarliniWagnerL2, CwConfig, DecisionRule, EadConfig, ElasticNetAttack,
};
use magnet_l1::data::synth::{cifar_like, mnist_like};
use magnet_l1::eval::config::Scale;
use magnet_l1::eval::experiment::select_attack_set;
use magnet_l1::eval::sweep::{AttackKind, SweepRunner};
use magnet_l1::eval::zoo::{Scenario, Variant, Zoo};
use magnet_l1::magnet::DefenseScheme;
use magnet_l1::nn::optim::Adam;
use magnet_l1::nn::train::{fit_classifier, TrainConfig};
use magnet_l1::nn::Sequential;

fn temp_zoo(tag: &str) -> Zoo {
    let dir = std::env::temp_dir().join(format!("magnet_l1_e2e_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    Zoo::new(dir, Scale::smoke())
}

#[test]
fn classifier_learns_synthetic_mnist() {
    let train = mnist_like(600, 1);
    let test = mnist_like(150, 2);
    let specs = magnet_l1::magnet::arch::mnist_classifier(28, 1, 6, 12, 48, 10);
    let mut net = Sequential::from_specs(&specs, 3).unwrap();
    let mut opt = Adam::with_defaults(1e-3);
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 32,
        seed: 4,
        label_smoothing: 0.0,
        verbose: false,
        checkpoint: None,
    };
    fit_classifier(&mut net, &mut opt, train.images(), train.labels(), &cfg).unwrap();
    let acc = magnet_l1::eval::zoo::classifier_accuracy(&mut net, &test).unwrap();
    assert!(acc > 0.8, "test accuracy {acc} too low");
}

#[test]
fn classifier_learns_synthetic_cifar() {
    let train = cifar_like(1200, 1);
    let test = cifar_like(150, 2);
    let specs = magnet_l1::magnet::arch::cifar_classifier(16, 3, 6, 12, 48, 10);
    let mut net = Sequential::from_specs(&specs, 3).unwrap();
    let mut opt = Adam::with_defaults(1e-3);
    let cfg = TrainConfig {
        epochs: 5,
        batch_size: 32,
        seed: 4,
        label_smoothing: 0.0,
        verbose: false,
        checkpoint: None,
    };
    fit_classifier(&mut net, &mut opt, train.images(), train.labels(), &cfg).unwrap();
    let acc = magnet_l1::eval::zoo::classifier_accuracy(&mut net, &test).unwrap();
    assert!(acc > 0.8, "test accuracy {acc} too low");
}

#[test]
fn attacks_fool_a_trained_cnn() {
    // The zoo's smoke classifier reaches high accuracy; both C&W and EAD
    // must fool it given an adequate c.
    let zoo = temp_zoo("attacks_fool");
    let mut clf = zoo.classifier(Scenario::Cifar).unwrap();
    let data = zoo.data(Scenario::Cifar);
    let set = select_attack_set(&mut clf, &data.test, 6, 9).unwrap();

    let ead = ElasticNetAttack::new(EadConfig {
        kappa: 0.0,
        beta: 0.01,
        iterations: 60,
        binary_search_steps: 4,
        initial_c: 1.0,
        rule: DecisionRule::ElasticNet,
        ..EadConfig::default()
    })
    .unwrap();
    let outcome = ead.run(&mut clf, &set.images, &set.labels).unwrap();
    assert!(
        outcome.success_rate() > 0.5,
        "EAD ASR {} too low",
        outcome.success_rate()
    );
    // Successful examples really are misclassified.
    for (i, &ok) in outcome.success.iter().enumerate() {
        if ok {
            let img = outcome.adversarial.index_axis0(i).unwrap();
            let img = img
                .clone()
                .into_reshaped(magnet_l1::tensor::Shape::new(
                    std::iter::once(1)
                        .chain(img.shape().dims().iter().copied())
                        .collect(),
                ))
                .unwrap();
            let pred = clf.predict(&img).unwrap()[0];
            assert_ne!(pred, set.labels[i], "example {i} not actually adversarial");
        }
    }

    let cw = CarliniWagnerL2::new(CwConfig {
        kappa: 0.0,
        iterations: 60,
        binary_search_steps: 4,
        initial_c: 1.0,
        ..CwConfig::default()
    })
    .unwrap();
    let outcome = cw.run(&mut clf, &set.images, &set.labels).unwrap();
    assert!(
        outcome.success_rate() > 0.5,
        "C&W ASR {} too low",
        outcome.success_rate()
    );
    std::fs::remove_dir_all(zoo.dir()).ok();
}

#[test]
fn adversarial_examples_stay_in_image_box() {
    let zoo = temp_zoo("box");
    let mut clf = zoo.classifier(Scenario::Cifar).unwrap();
    let data = zoo.data(Scenario::Cifar);
    let set = select_attack_set(&mut clf, &data.test, 4, 2).unwrap();
    for kind in [
        AttackKind::Cw,
        AttackKind::Ead {
            rule: DecisionRule::L1,
            beta: 0.05,
        },
    ] {
        let attack = kind.build(5.0, zoo.scale()).unwrap();
        let outcome = attack.run(&mut clf, &set.images, &set.labels).unwrap();
        assert!(
            outcome.adversarial.min() >= 0.0,
            "{} below box",
            kind.label()
        );
        assert!(
            outcome.adversarial.max() <= 1.0,
            "{} above box",
            kind.label()
        );
    }
    std::fs::remove_dir_all(zoo.dir()).ok();
}

#[test]
fn full_oblivious_pipeline_runs_and_is_cached() {
    let zoo = temp_zoo("pipeline");
    let mut runner = SweepRunner::new(&zoo, Scenario::Cifar).unwrap();
    let mut defense = zoo.defense(Scenario::Cifar, Variant::Default).unwrap();
    let kind = AttackKind::Ead {
        rule: DecisionRule::ElasticNet,
        beta: 0.1,
    };
    let e1 = runner.evaluate(&kind, 0.0, &mut defense).unwrap();
    let e2 = runner.evaluate(&kind, 0.0, &mut defense).unwrap();
    assert_eq!(e1.undefended_asr, e2.undefended_asr);
    assert!((0.0..=1.0).contains(&e1.accuracy_for(DefenseScheme::Full)));
    // The cache directory now holds exactly one attack file.
    let files = std::fs::read_dir(zoo.dir().join("attacks"))
        .unwrap()
        .count();
    assert_eq!(files, 1);
    std::fs::remove_dir_all(zoo.dir()).ok();
}

#[test]
fn reproducibility_across_identical_zoos() {
    let dir = std::env::temp_dir().join("magnet_l1_e2e_repro");
    std::fs::remove_dir_all(&dir).ok();
    let run = || {
        // Reuse the same dir: the second run loads the cached models, which
        // must not change the outcome relative to fresh training.
        let zoo = Zoo::new(&dir, Scale::smoke());
        let mut runner = SweepRunner::new(&zoo, Scenario::Cifar).unwrap();
        let kind = AttackKind::Cw;
        let outcome = runner.outcome(&kind, 0.0).unwrap();
        (outcome.success.clone(), outcome.l2.clone())
    };
    let (s1, d1) = run();
    let (s2, d2) = run();
    assert_eq!(s1, s2);
    assert_eq!(d1, d2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn defense_scheme_ordering_is_sane() {
    // On *clean* data the undefended scheme is at least as accurate as the
    // full scheme (detectors can only wrongly reject clean inputs).
    let zoo = temp_zoo("ordering");
    let defense = zoo.defense(Scenario::Cifar, Variant::Default).unwrap();
    let data = zoo.data(Scenario::Cifar);
    let x =
        magnet_l1::nn::train::gather0(data.test.images(), &(0..40).collect::<Vec<_>>()).unwrap();
    let labels = &data.test.labels()[..40];
    let none = defense.accuracy(&x, labels, DefenseScheme::None).unwrap();
    let full = defense.accuracy(&x, labels, DefenseScheme::Full).unwrap();
    // `accuracy` counts detections as "defended", so on clean data Full can
    // only exceed None via detections — both must stay in range and None
    // must be high for a trained classifier.
    assert!(none > 0.3, "clean accuracy {none} too low");
    assert!((0.0..=1.0).contains(&full));
    std::fs::remove_dir_all(zoo.dir()).ok();
}
