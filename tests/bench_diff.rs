//! Contract tests for `scripts/bench_diff`, the CI perf-regression gate:
//! exit 0 within threshold, exit 1 on a regression beyond it, per-bench
//! overrides, and a markdown report either way. The fixtures under
//! `scripts/fixtures/` include a 20% median regression on the serve
//! throughput bench — the exact failure the gate exists to catch.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn fixture(name: &str) -> String {
    repo_root()
        .join("scripts/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

fn scratch_report(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adv_bench_diff_{tag}_{}.md", std::process::id()))
}

fn run_diff(args: &[&str]) -> Output {
    Command::new("sh")
        .arg(repo_root().join("scripts/bench_diff"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("bench_diff must be runnable via sh")
}

fn read_and_remove(path: &Path) -> String {
    let content = std::fs::read_to_string(path).expect("report must exist");
    std::fs::remove_file(path).ok();
    content
}

#[test]
fn within_threshold_passes_and_reports_new_and_removed() {
    let report = scratch_report("ok");
    let out = run_diff(&[
        &fixture("bench_baseline.json"),
        &fixture("bench_ok.json"),
        "--report",
        &report.to_string_lossy(),
    ]);
    assert!(
        out.status.success(),
        "expected pass, got {:?}\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no regressions"), "{stdout}");
    let md = read_and_remove(&report);
    assert!(md.contains("| benchmark |"), "{md}");
    // New and removed benches are reported, never gated.
    assert!(md.contains("new (not gated)"), "{md}");
    assert!(md.contains("removed (not gated)"), "{md}");
    assert!(!md.contains("REGRESSION"), "{md}");
}

#[test]
fn twenty_percent_regression_fails_the_gate() {
    let report = scratch_report("regressed");
    let out = run_diff(&[
        &fixture("bench_baseline.json"),
        &fixture("bench_regressed.json"),
        "--report",
        &report.to_string_lossy(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "a 20% median regression must exit 1\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("regressed beyond threshold"), "{stderr}");
    let md = read_and_remove(&report);
    assert!(md.contains("**REGRESSION**"), "{md}");
    assert!(md.contains("server_b32"), "{md}");
    assert!(md.contains("+20.0%"), "{md}");
}

#[test]
fn per_bench_override_can_absorb_the_regression() {
    let report = scratch_report("override");
    let out = run_diff(&[
        &fixture("bench_baseline.json"),
        &fixture("bench_regressed.json"),
        "--override",
        "serve_throughput_32_samples/server_b32=25",
        "--report",
        &report.to_string_lossy(),
    ]);
    assert!(
        out.status.success(),
        "a +25% override must absorb the +20% regression\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    read_and_remove(&report);
}

#[test]
fn tighter_global_threshold_fails_the_ok_candidate() {
    let report = scratch_report("tight");
    let out = run_diff(&[
        &fixture("bench_baseline.json"),
        &fixture("bench_ok.json"),
        "--threshold",
        "2",
        "--report",
        &report.to_string_lossy(),
    ]);
    // server_b32 moved +5.0% — beyond a 2% threshold.
    assert_eq!(out.status.code(), Some(1));
    read_and_remove(&report);
}

#[test]
fn missing_files_and_bad_usage_exit_2() {
    let out = run_diff(&[&fixture("bench_baseline.json")]);
    assert_eq!(out.status.code(), Some(2), "missing candidate is usage");
    let out = run_diff(&[&fixture("bench_baseline.json"), "/nonexistent/cand.json"]);
    assert_eq!(out.status.code(), Some(2), "unreadable candidate");
}
