//! Public-API surface guarantees for the facade crate: the types a
//! downstream user builds against exist under the documented paths and
//! implement the traits the guidelines promise (Debug everywhere, Send/Sync
//! on errors, Clone on models, std::error::Error on error types).

use magnet_l1::attacks::{AttackError, AttackOutcome, CarliniWagnerL2, ElasticNetAttack};
use magnet_l1::data::{DataError, Dataset};
use magnet_l1::eval::EvalError;
use magnet_l1::magnet::{Autoencoder, MagnetDefense, MagnetError};
use magnet_l1::nn::{NnError, Sequential};
use magnet_l1::tensor::{Shape, Tensor, TensorError};

fn assert_send_sync<T: Send + Sync>() {}
fn assert_error<T: std::error::Error>() {}
fn assert_clone<T: Clone>() {}
fn assert_debug<T: std::fmt::Debug>() {}

#[test]
fn error_types_are_well_behaved() {
    assert_error::<TensorError>();
    assert_error::<NnError>();
    assert_error::<DataError>();
    assert_error::<MagnetError>();
    assert_error::<AttackError>();
    assert_error::<EvalError>();
    assert_send_sync::<TensorError>();
    assert_send_sync::<NnError>();
    assert_send_sync::<DataError>();
    assert_send_sync::<MagnetError>();
    assert_send_sync::<AttackError>();
    assert_send_sync::<EvalError>();
}

#[test]
fn core_types_implement_common_traits() {
    assert_clone::<Tensor>();
    assert_clone::<Shape>();
    assert_clone::<Dataset>();
    assert_clone::<Sequential>();
    assert_clone::<Autoencoder>();
    assert_clone::<AttackOutcome>();
    assert_clone::<ElasticNetAttack>();
    assert_clone::<CarliniWagnerL2>();
    assert_debug::<Tensor>();
    assert_debug::<MagnetDefense>();
    assert_send_sync::<Tensor>();
    assert_send_sync::<Dataset>();
}

#[test]
fn models_are_sendable_for_parallel_evaluation() {
    fn assert_send<T: Send>() {}
    assert_send::<Sequential>();
    assert_send::<Autoencoder>();
    assert_send::<MagnetDefense>();
}

#[test]
fn attack_trait_objects_compose() {
    // Attacks must be usable as boxed trait objects (the sweep machinery
    // relies on it).
    use magnet_l1::attacks::{Attack, CwConfig, EadConfig};
    let attacks: Vec<Box<dyn Attack>> = vec![
        Box::new(CarliniWagnerL2::new(CwConfig::default()).unwrap()),
        Box::new(ElasticNetAttack::new(EadConfig::default()).unwrap()),
    ];
    assert_eq!(attacks.len(), 2);
    assert!(attacks[0].name().contains("C&W"));
    assert!(attacks[1].name().contains("EAD"));
}

#[test]
fn detectors_compose_as_trait_objects() {
    use magnet_l1::magnet::{Detector, ReconstructionDetector, ReconstructionNorm};
    use magnet_l1::nn::loss::ReconstructionLoss;
    let ae = Autoencoder::new(
        &magnet_l1::magnet::arch::mnist_ae_two(1, 2),
        ReconstructionLoss::MeanSquaredError,
        0.1,
        0,
    )
    .unwrap();
    let detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(ReconstructionDetector::new(
            ae.clone(),
            ReconstructionNorm::L1,
        )),
        Box::new(ReconstructionDetector::new(ae, ReconstructionNorm::L2)),
    ];
    assert_eq!(detectors[0].name(), "recon-l1");
    assert_eq!(detectors[1].name(), "recon-l2");
}
