//! Shape-level assertions about the paper's headline claims.
//!
//! The smoke-scale tests assert only what is stable at tiny scale (attacks
//! craft, pipelines run, curves are well-formed). The `#[ignore]`d test runs
//! at the default `quick` scale (~10 minutes on one core) and asserts the
//! actual paper shape — run it manually with
//! `cargo test --release --test paper_shape -- --ignored`.

use magnet_l1::eval::config::Scale;
use magnet_l1::eval::sweep::{AttackKind, SweepRunner};
use magnet_l1::eval::zoo::{Scenario, Variant, Zoo};
use magnet_l1::magnet::DefenseScheme;

#[test]
fn smoke_curves_are_well_formed() {
    let dir = std::env::temp_dir().join("magnet_l1_shape_smoke");
    std::fs::remove_dir_all(&dir).ok();
    let zoo = Zoo::new(&dir, Scale::smoke());
    let mut runner = SweepRunner::new(&zoo, Scenario::Cifar).unwrap();
    let mut defense = zoo.defense(Scenario::Cifar, Variant::Default).unwrap();
    let kappas = [0.0f32, 50.0];
    for kind in AttackKind::figure_trio() {
        let curve = runner
            .curve(&kind, &kappas, &mut defense, DefenseScheme::Full)
            .unwrap();
        assert_eq!(curve.points.len(), 2);
        for p in &curve.points {
            assert!((0.0..=1.0).contains(&p.accuracy), "{}: {p:?}", curve.label);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn smoke_ead_crafts_adversarial_examples() {
    let dir = std::env::temp_dir().join("magnet_l1_shape_ead");
    std::fs::remove_dir_all(&dir).ok();
    // Smoke training is short but the classifier still earns real margins;
    // give the attack a budget that can cross them.
    let mut scale = Scale::smoke();
    scale.attack_iterations = 60;
    scale.binary_search_steps = 3;
    scale.initial_c = 1.0;
    scale.attack_lr = 0.05;
    let zoo = Zoo::new(&dir, scale);
    let mut runner = SweepRunner::new(&zoo, Scenario::Cifar).unwrap();
    let outcome = runner
        .outcome(
            &AttackKind::Ead {
                rule: magnet_l1::attacks::DecisionRule::ElasticNet,
                beta: 0.01,
            },
            0.0,
        )
        .unwrap();
    assert!(
        outcome.success_rate() > 0.5,
        "EAD undefended ASR {} too low even at kappa 0",
        outcome.success_rate()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The paper's headline, asserted at `quick` scale (MNIST): the default
/// MagNet holds C&W above the level it holds EAD to, with a real gap at the
/// medium confidence levels.
#[test]
#[ignore = "quick-scale: ~10 minutes on one core; run with -- --ignored"]
fn mnist_ead_beats_cw_against_default_magnet() {
    let zoo = Zoo::new("models", Scale::quick());
    let mut runner = SweepRunner::new(&zoo, Scenario::Mnist).unwrap();
    let mut defense = zoo.defense(Scenario::Mnist, Variant::Default).unwrap();
    let kappas = [10.0f32, 15.0, 20.0];
    let min_acc = |runner: &mut SweepRunner, kind: &AttackKind, defense: &mut _| {
        kappas
            .iter()
            .map(|&k| {
                runner
                    .evaluate(kind, k, defense)
                    .unwrap()
                    .accuracy_for(DefenseScheme::Full)
            })
            .fold(f32::INFINITY, f32::min)
    };
    let cw = min_acc(&mut runner, &AttackKind::Cw, &mut defense);
    let ead = min_acc(
        &mut runner,
        &AttackKind::Ead {
            rule: magnet_l1::attacks::DecisionRule::ElasticNet,
            beta: 0.1,
        },
        &mut defense,
    );
    assert!(
        cw > ead + 0.1,
        "expected a >=10-point defense gap: C&W min accuracy {cw}, EAD {ead}"
    );
    assert!(cw > 0.85, "C&W should stay well-defended, got {cw}");
}
