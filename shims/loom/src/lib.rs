//! Offline stand-in for the [loom](https://docs.rs/loom) model checker.
//!
//! Real loom exhaustively enumerates thread interleavings under the C11
//! memory model. This build environment has no registry access, so this
//! shim keeps loom's API surface — `model`, `loom::thread`, `loom::sync` —
//! letting `#[cfg(loom)]` test code compile unchanged, and substitutes the
//! exhaustive search with *deterministic schedule perturbation*:
//!
//! - [`model`] runs the body for a fixed number of iterations
//!   (`LOOM_ITERS`, default 64), re-seeding the scheduler each time;
//! - every shim-wrapped operation (mutex lock, condvar wait/notify, atomic
//!   access, thread spawn) consults a per-thread LCG derived from the
//!   iteration seed and injects `std::thread::yield_now` calls, so each
//!   iteration explores a different OS-level schedule.
//!
//! This is a stress harness, not a proof: it cannot exhibit non-SC
//! behaviors (everything executes on real hardware through `std` types) and
//! it samples schedules instead of enumerating them. It reliably catches
//! lost-wakeup, double-drain, and ordering-by-luck bugs in practice, and it
//! keeps the test code honest against the day the real checker is
//! available. The same `cfg(loom)` build with the real crate is a drop-in
//! upgrade.

pub mod hint {
    //! Spin-loop hints (pass-through).

    /// Emits a spin-loop hint after a possible injected yield.
    pub fn spin_loop() {
        crate::schedule::maybe_yield();
        std::hint::spin_loop();
    }
}

pub(crate) mod schedule {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Seed shared by every thread of the current model iteration.
    static ITERATION_SEED: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);
    /// Distinguishes threads so they draw different yield streams.
    static THREAD_SALT: AtomicU64 = AtomicU64::new(1);

    thread_local! {
        static RNG: Cell<u64> = const { Cell::new(0) };
    }

    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub(crate) fn begin_iteration(iteration: u64) {
        ITERATION_SEED.store(splitmix(iteration.wrapping_add(1)), Ordering::Relaxed);
        // Fresh salt space per iteration so re-used OS threads re-seed.
        THREAD_SALT.store(iteration.wrapping_mul(1 << 20) | 1, Ordering::Relaxed);
        RNG.with(|rng| rng.set(0));
    }

    fn next(rng: &Cell<u64>) -> u64 {
        let mut state = rng.get();
        if state == 0 {
            let salt = THREAD_SALT.fetch_add(1, Ordering::Relaxed);
            state = splitmix(ITERATION_SEED.load(Ordering::Relaxed) ^ splitmix(salt));
        }
        // Knuth's MMIX LCG; the top bits decide, the full state advances.
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng.set(state);
        state >> 33
    }

    /// Yields the OS scheduler with probability 1/4, twice with 1/32.
    pub(crate) fn maybe_yield() {
        let draw = RNG.with(next);
        if draw.is_multiple_of(4) {
            std::thread::yield_now();
        }
        if draw.is_multiple_of(32) {
            std::thread::yield_now();
        }
    }
}

/// How many perturbed schedules [`model`] explores (`LOOM_ITERS`,
/// default 64).
fn iterations() -> u64 {
    std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// Runs `f` under the perturbed-schedule harness; see the crate docs for
/// how this differs from real loom's exhaustive exploration.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for i in 0..iterations() {
        schedule::begin_iteration(i);
        f();
    }
}

pub mod thread {
    //! `std::thread` wrappers that seed the yield-injecting scheduler.

    pub use std::thread::JoinHandle;

    /// Spawns a thread whose shim operations draw from this iteration's
    /// schedule stream.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(move || {
            crate::schedule::maybe_yield();
            f()
        })
    }

    /// Explicit scheduling point.
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

pub mod sync {
    //! `std::sync` wrappers with scheduling points at every operation.

    use std::sync::LockResult;
    use std::time::Duration;

    pub use std::sync::Arc;
    pub use std::sync::MutexGuard;
    pub use std::sync::WaitTimeoutResult;

    /// Mutex with a scheduling point before each acquisition.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Creates the mutex.
        pub fn new(value: T) -> Mutex<T> {
            Mutex(std::sync::Mutex::new(value))
        }

        /// Locks, yielding first so contenders interleave differently per
        /// iteration.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            crate::schedule::maybe_yield();
            self.0.lock()
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> LockResult<T> {
            self.0.into_inner()
        }
    }

    /// Condvar with scheduling points around waits and notifies.
    #[derive(Debug, Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        /// Creates the condvar.
        pub fn new() -> Condvar {
            Condvar(std::sync::Condvar::new())
        }

        /// Waits; yields first so the waker can run ahead.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            crate::schedule::maybe_yield();
            self.0.wait(guard)
        }

        /// Timed wait; yields first.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            crate::schedule::maybe_yield();
            self.0.wait_timeout(guard, dur)
        }

        /// Wakes one waiter, with a scheduling point after the notify so
        /// the woken thread may run immediately.
        pub fn notify_one(&self) {
            self.0.notify_one();
            crate::schedule::maybe_yield();
        }

        /// Wakes all waiters; scheduling point as in
        /// [`notify_one`](Self::notify_one).
        pub fn notify_all(&self) {
            self.0.notify_all();
            crate::schedule::maybe_yield();
        }
    }

    pub mod atomic {
        //! Atomics with a scheduling point before every access.

        pub use std::sync::atomic::Ordering;

        macro_rules! shim_atomic {
            ($name:ident, $std:path, $value:ty) => {
                /// Atomic with injected scheduling points.
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    /// Creates the atomic.
                    pub const fn new(v: $value) -> $name {
                        $name(<$std>::new(v))
                    }

                    /// Load with a scheduling point.
                    pub fn load(&self, order: Ordering) -> $value {
                        crate::schedule::maybe_yield();
                        self.0.load(order)
                    }

                    /// Store with a scheduling point.
                    pub fn store(&self, v: $value, order: Ordering) {
                        crate::schedule::maybe_yield();
                        self.0.store(v, order)
                    }

                    /// Compare-exchange with a scheduling point.
                    pub fn compare_exchange(
                        &self,
                        current: $value,
                        new: $value,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$value, $value> {
                        crate::schedule::maybe_yield();
                        self.0.compare_exchange(current, new, success, failure)
                    }

                    /// `fetch_update` with a scheduling point per retry.
                    pub fn fetch_update<F>(
                        &self,
                        set_order: Ordering,
                        fetch_order: Ordering,
                        mut f: F,
                    ) -> Result<$value, $value>
                    where
                        F: FnMut($value) -> Option<$value>,
                    {
                        self.0.fetch_update(set_order, fetch_order, |v| {
                            crate::schedule::maybe_yield();
                            f(v)
                        })
                    }
                }
            };
        }

        shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        shim_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);
        shim_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

        macro_rules! shim_fetch_add {
            ($name:ident, $value:ty) => {
                impl $name {
                    /// Fetch-add with a scheduling point.
                    pub fn fetch_add(&self, v: $value, order: Ordering) -> $value {
                        crate::schedule::maybe_yield();
                        self.0.fetch_add(v, order)
                    }
                }
            };
        }

        shim_fetch_add!(AtomicU64, u64);
        shim_fetch_add!(AtomicUsize, usize);
        shim_fetch_add!(AtomicU8, u8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

    #[test]
    fn model_runs_the_configured_iteration_count() {
        static RUNS: StdAtomicU64 = StdAtomicU64::new(0);
        RUNS.store(0, StdOrdering::SeqCst);
        model(|| {
            RUNS.fetch_add(1, StdOrdering::SeqCst);
        });
        assert_eq!(RUNS.load(StdOrdering::SeqCst), iterations());
    }

    #[test]
    fn shim_mutex_and_condvar_round_trip() {
        let m = sync::Arc::new(sync::Mutex::new(0u32));
        let cv = sync::Arc::new(sync::Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = thread::spawn(move || {
            *m2.lock().unwrap() = 7;
            cv2.notify_one();
        });
        let mut guard = m.lock().unwrap();
        while *guard == 0 {
            let (g, _timeout) = cv
                .wait_timeout(guard, std::time::Duration::from_millis(50))
                .unwrap();
            guard = g;
        }
        assert_eq!(*guard, 7);
        drop(guard);
        t.join().unwrap();
    }

    #[test]
    fn shim_atomics_behave_like_std() {
        let a = sync::atomic::AtomicU64::new(1);
        a.fetch_add(2, sync::atomic::Ordering::Relaxed);
        assert_eq!(a.load(sync::atomic::Ordering::Relaxed), 3);
        let _ = a.fetch_update(
            sync::atomic::Ordering::Relaxed,
            sync::atomic::Ordering::Relaxed,
            |v| Some(v * 2),
        );
        assert_eq!(a.load(sync::atomic::Ordering::Relaxed), 6);
        assert_eq!(
            a.compare_exchange(
                6,
                9,
                sync::atomic::Ordering::Relaxed,
                sync::atomic::Ordering::Relaxed
            ),
            Ok(6)
        );
    }
}
