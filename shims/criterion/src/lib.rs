//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`sample_size`/`finish`, `Bencher::iter`
//! and the `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock harness: a warm-up pass sizes the iteration count toward a
//! fixed measurement budget, then samples are timed and summarized as
//! min/median/mean ns per iteration.
//!
//! When invoked by `cargo test` (any `--test`-style flag present) each
//! benchmark body runs exactly once, so bench targets double as smoke tests
//! without inflating suite wall-clock.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Per-sample time budget the harness aims at in full measurement mode.
const SAMPLE_BUDGET: Duration = Duration::from_millis(20);

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    smoke_test: bool,
    /// Measured ns/iter per sample, filled by [`Bencher::iter`].
    results_ns: Vec<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly, recording wall-clock time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke_test {
            std::hint::black_box(f());
            return;
        }
        // Warm-up: estimate per-iteration cost, then size samples to budget.
        let warm = Instant::now();
        std::hint::black_box(f());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let per_sample = (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let iters = self.iters_per_sample.max(per_sample);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            self.results_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

fn report(label: &str, results_ns: &[f64]) {
    if results_ns.is_empty() {
        println!("bench {label:<50} smoke-tested (1 iteration)");
        return;
    }
    let mut sorted = results_ns.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "bench {label:<50} min {:>12} median {:>12} mean {:>12}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test` the harness passes test-runner flags; run each
        // body once so bench targets act as fast smoke tests.
        let smoke_test = std::env::args().any(|a| {
            a == "--test" || a == "--list" || a.starts_with("--format") || a == "--nocapture"
        });
        Criterion {
            sample_size: 10,
            smoke_test,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (accepted for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: self.sample_size,
            smoke_test: self.smoke_test,
            results_ns: Vec::new(),
        };
        f(&mut b);
        report(name.as_ref(), &b.results_ns);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: self.sample_size.unwrap_or(self.parent.sample_size),
            smoke_test: self.parent.smoke_test,
            results_ns: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, name.as_ref()), &b.results_ns);
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut calls = 0u64;
        let mut c = Criterion {
            sample_size: 2,
            smoke_test: false,
        };
        c.bench_function("probe", |b| b.iter(|| calls += 1));
        assert!(calls >= 3, "warm-up plus two samples, got {calls}");
    }

    #[test]
    fn smoke_test_mode_runs_once_per_bench() {
        let mut calls = 0u64;
        let mut c = Criterion {
            sample_size: 50,
            smoke_test: true,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(30);
        g.bench_function("probe", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1_500.0), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.000 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.000 s");
    }
}
