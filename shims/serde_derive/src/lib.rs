//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The stand-in `serde` crate gives both traits blanket implementations, so
//! the derives have nothing to emit — they only need to *exist* so that
//! `#[derive(Serialize, Deserialize)]` parses, and to accept `#[serde(...)]`
//! helper attributes.

use proc_macro::TokenStream;

/// Derives the (blanket-implemented) `Serialize` trait: expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives the (blanket-implemented) `Deserialize` trait: expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
