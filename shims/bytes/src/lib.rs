//! Offline stand-in for the `bytes` crate.
//!
//! Backs `adv-nn`'s binary model codec. `Bytes` is a plain `Vec<u8>` with a
//! read cursor; `BytesMut` is a growable write buffer. Only the subset the
//! codec uses is implemented (little-endian integer/float accessors,
//! `split_to`, `remaining`, `put_slice`), with the same panic-on-underflow
//! contract as upstream.

#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Splits off and returns the first `n` unread bytes, advancing `self`
    /// past them.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.remaining(), "split_to out of bounds");
        let head = self.data[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Bytes { data: head, pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// The encoded bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Read access to a byte buffer, mirroring `bytes::Buf`.
///
/// All getters panic on underflow, matching upstream; callers guard with
/// [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes into a fixed-size array, advancing the cursor.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.remaining(), "buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.pos..self.pos + N]);
        self.pos += N;
        out
    }
}

/// Write access to a byte buffer, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_accessors() {
        let mut w = BytesMut::new();
        w.put_slice(b"HDR");
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_f32_le(-1.5);
        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(&r.split_to(3)[..], b"HDR");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f32_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r = Bytes::copy_from_slice(&[1, 2]);
        let _ = r.get_u32_le();
    }

    #[test]
    fn split_to_advances_cursor() {
        let mut r = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        let head = r.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u8(), 3);
    }
}
