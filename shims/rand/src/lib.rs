//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, API-compatible subset of `rand` 0.8: `StdRng` (xoshiro256**
//! seeded via SplitMix64), the `Rng`/`RngCore`/`SeedableRng` traits, range
//! sampling, and `seq::SliceRandom`. Streams differ from upstream `rand`,
//! but every consumer in this workspace only relies on *seeded
//! determinism*, not on specific values.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly "at standard" (the `Standard` distribution in
/// real `rand`): unit-interval floats, full-range integers, fair bools.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full float precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Namespaced RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded RNG: xoshiro256** with SplitMix64
    /// seed expansion. Not the upstream `StdRng` stream, but an equally
    /// deterministic, statistically solid generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range_with_decent_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let vals: Vec<f32> = (0..10_000).map(|_| rng.gen()).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-0.25..0.75);
            assert!((-0.25..0.75).contains(&x));
            let n: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&n));
            let i: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_seeded_permutation() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = StdRng::seed_from_u64(11);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
