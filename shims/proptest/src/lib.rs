//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the `proptest!` macro (with optional `#![proptest_config(…)]`),
//! numeric-range and collection strategies, `prop_map`, `bool::ANY`, and the
//! `prop_assert*` macros. Cases are sampled from a deterministic seeded RNG
//! (seed = FNV of the test name ⊕ case index) so failures reproduce;
//! there is no shrinking — the panic message reports the failing inputs via
//! the standard assertion formatting instead.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
    }

    /// Strategy yielding a constant value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Full-range strategy for types with a standard distribution
    /// (`proptest::arbitrary::any`).
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: rand::StandardSample> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    /// Builds an [`Any`] strategy for `T`.
    pub fn any<T: rand::StandardSample>() -> Any<T> {
        Any(PhantomData)
    }

    /// A vector-length specification: a fixed length or a length range.
    pub trait VecLen {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl VecLen for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl VecLen for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        pub(crate) element: S,
        pub(crate) len: L,
    }

    impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection`).

    use super::strategy::{Strategy, VecLen, VecStrategy};

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// comes from `len` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy, L: VecLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod option {
    //! Optional-value strategies (`proptest::option`).

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy returned by [`of`]: `None` about a quarter of the time,
    /// otherwise `Some` of the inner strategy's value (upstream's default
    /// `Some` probability is 0.75).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen::<f64>() < 0.75 {
                Some(self.0.sample(rng))
            } else {
                None
            }
        }
    }

    /// Wraps `inner` to generate `Option`s (`proptest::option::of`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod bool {
    //! Boolean strategies (`proptest::bool`).

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for a fair coin flip.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    /// Uniformly random booleans (`proptest::bool::ANY`).
    pub const ANY: BoolAny = BoolAny;
}

/// Runner configuration (`proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the workspace's property tests exercise
        // training loops, so the stand-in keeps suites fast with fewer cases.
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic per-test, per-case RNG used by the `proptest!` expansion.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }` item
/// becomes a `#[test]` that runs the body over seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a property holds for the current case (no shrinking: behaves as
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal for the current case (behaves as
/// `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

pub mod prelude {
    //! The glob-import surface (`proptest::prelude::*`).

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn unit_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
        crate::collection::vec(0.0f32..1.0, len)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -2.0f32..3.0, n in 1usize..10, b in crate::bool::ANY) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            let _ = b;
        }

        #[test]
        fn vec_strategy_has_requested_len(v in unit_vec(7)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn prop_map_applies(v in unit_vec(3).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 3);
        }

        #[test]
        fn tuple_strategies_sample_componentwise(
            pair in (0u8..4, 10u32..20).prop_map(|(a, b)| (a, b)),
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert!((10..20).contains(&pair.1));
        }

        #[test]
        fn option_of_yields_both_variants(v in crate::collection::vec(crate::option::of(0u8..3), 64)) {
            prop_assert!(v.iter().flatten().all(|&x| x < 3));
            // With 64 draws at P(Some)=0.75, both variants appear w.h.p.
            prop_assert!(v.iter().any(|x| x.is_some()));
            prop_assert!(v.iter().any(|x| x.is_none()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn config_form_parses(x in 0u8..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng;
        let a: u64 = crate::case_rng("t", 1).gen();
        let b: u64 = crate::case_rng("t", 1).gen();
        let c: u64 = crate::case_rng("t", 2).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
