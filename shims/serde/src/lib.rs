//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on several spec types but
//! never actually serializes through serde (model persistence uses the
//! hand-rolled codec in `adv-nn::serialize`). This stand-in therefore
//! provides the two trait names with blanket implementations and re-exports
//! no-op derive macros, which is exactly enough for every `use serde::…` and
//! `#[derive(…)]` in the tree to compile unchanged — offline.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Probe {
        x: u32,
    }

    fn assert_serialize<T: Serialize>() {}

    #[test]
    fn derive_and_blanket_impls_compile() {
        assert_serialize::<Probe>();
        assert_eq!(Probe { x: 3 }, Probe { x: 3 });
    }
}
