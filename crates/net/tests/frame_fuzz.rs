//! Truncation/corruption fuzz for the `ADVNET1` codec (ISSUE satellite).
//!
//! For a representative frame of every kind, the decoder must reject —
//! with a typed [`FrameError`], never a panic — (a) every strict prefix of
//! the encoding and (b) every single-bit flip of the encoding. The CRC32
//! covers all payload flips; header flips are caught by the magic, version,
//! kind, flags, and length checks. The streaming reader gets the same
//! treatment over an in-memory cursor.

use adv_magnet::{DefenseScheme, Verdict};
use adv_net::{read_frame, BusyReason, Frame, NetError, WireErrorCode, HEADER_LEN};
use adv_serve::{EngineHealth, RouteInfo};

fn sample_frames() -> Vec<Frame> {
    vec![
        Frame::Hello {
            tenant: 42,
            key: 0xDEAD_BEEF_CAFE_F00D,
        },
        Frame::Welcome {
            version: 2,
            max_frame: 16 << 20,
            health: EngineHealth::Healthy,
            routes: vec![
                RouteInfo {
                    variant: 0,
                    version: 1,
                    health: EngineHealth::Healthy,
                },
                RouteInfo {
                    variant: 3,
                    version: 7,
                    health: EngineHealth::Degraded,
                },
            ],
        },
        Frame::Request {
            id: 7,
            deadline_ms: 250,
            route: 3,
            sample: 911,
            variant: 1,
            dims: vec![1, 4, 4],
            data: (0..16).map(|i| i as f32 / 16.0).collect(),
        },
        Frame::Response {
            id: 7,
            verdict: Verdict::Classified(3),
            scheme: DefenseScheme::Full,
            degraded: false,
            queue_ns: 12_345,
            infer_ns: 678_910,
            batch: 4,
        },
        Frame::Response {
            id: 8,
            verdict: Verdict::Detected,
            scheme: DefenseScheme::DetectorOnly,
            degraded: true,
            queue_ns: 0,
            infer_ns: 1,
            batch: 1,
        },
        Frame::Busy {
            id: 9,
            reason: BusyReason::RateLimited,
            retry_after_ms: 120,
        },
        Frame::Error {
            id: 10,
            code: WireErrorCode::DeadlineExpired,
            message: "deadline expired after 250ms".to_string(),
        },
        Frame::Bye,
        Frame::StatusQuery,
        Frame::Status {
            health: EngineHealth::Draining,
            epoch: 42,
            routes: vec![RouteInfo {
                variant: 2,
                version: 5,
                health: EngineHealth::Failed,
            }],
        },
    ]
}

#[test]
fn every_sample_roundtrips() {
    for frame in sample_frames() {
        let bytes = frame.encode();
        let back = Frame::decode(&bytes).expect("valid encoding must decode");
        assert_eq!(back, frame);
    }
}

#[test]
fn every_strict_prefix_is_rejected_without_panic() {
    for frame in sample_frames() {
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            let prefix = bytes.get(..cut).expect("cut is in range");
            let decoded = Frame::decode(prefix);
            assert!(
                decoded.is_err(),
                "strict prefix of len {cut}/{} decoded as {decoded:?} for {frame:?}",
                bytes.len()
            );
        }
    }
}

#[test]
fn every_single_bit_flip_is_rejected_without_panic() {
    for frame in sample_frames() {
        let bytes = frame.encode();
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            if let Some(byte) = corrupt.get_mut(bit / 8) {
                *byte ^= 1u8 << (bit % 8);
            }
            let decoded = Frame::decode(&corrupt);
            assert!(
                decoded.is_err(),
                "bit flip at {bit} decoded as {decoded:?} for {frame:?}"
            );
        }
    }
}

#[test]
fn appended_garbage_is_rejected() {
    for frame in sample_frames() {
        let mut bytes = frame.encode();
        bytes.push(0);
        assert!(
            Frame::decode(&bytes).is_err(),
            "trailing byte for {frame:?}"
        );
    }
}

#[test]
fn streaming_reader_rejects_truncations_with_typed_errors() {
    for frame in sample_frames() {
        let bytes = frame.encode();
        for cut in 1..bytes.len() {
            let prefix = bytes.get(..cut).expect("cut is in range").to_vec();
            let mut cursor = std::io::Cursor::new(prefix);
            match read_frame(&mut cursor, 1 << 20) {
                Err(NetError::Io(_) | NetError::Frame(_)) => {}
                other => panic!("prefix len {cut} of {frame:?} gave {other:?}"),
            }
        }
        // Empty stream at a frame boundary is a clean close, not an error
        // blast — the server relies on this to tell Bye-less disconnects
        // from torn frames.
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(
            read_frame(&mut empty, 1 << 20),
            Err(NetError::Closed)
        ));
    }
}

#[test]
fn streaming_reader_rejects_single_bit_flips() {
    for frame in sample_frames() {
        let bytes = frame.encode();
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            if let Some(byte) = corrupt.get_mut(bit / 8) {
                *byte ^= 1u8 << (bit % 8);
            }
            let mut cursor = std::io::Cursor::new(corrupt);
            match read_frame(&mut cursor, 64 << 20) {
                // A flip in the length field can make the reader wait for
                // more bytes than the cursor holds (Io/Closed), or trip any
                // typed codec check; decoding successfully is the only
                // failure.
                Err(_) => {}
                Ok(decoded) => panic!("bit flip at {bit} decoded as {decoded:?} for {frame:?}"),
            }
        }
    }
}

#[test]
fn oversized_header_is_rejected_before_allocation() {
    // A header promising a 3 GiB payload must be refused by the size cap,
    // not by an allocation attempt.
    let mut bytes = Frame::Bye.encode();
    let huge: u32 = 3 << 30;
    bytes
        .get_mut(14..18)
        .expect("length field")
        .copy_from_slice(&huge.to_le_bytes());
    let mut cursor = std::io::Cursor::new(bytes);
    match read_frame(&mut cursor, 1 << 20) {
        Err(NetError::Frame(adv_net::FrameError::TooLarge { len, max })) => {
            assert_eq!(len, u64::from(huge));
            assert_eq!(max, 1 << 20);
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

#[test]
fn header_len_constant_matches_encoding() {
    assert_eq!(Frame::Bye.encode().len(), HEADER_LEN);
}
