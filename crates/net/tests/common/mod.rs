//! Shared fixtures for the adv-net integration tests: a cheap,
//! deterministic defense pipeline (no neural nets — verdicts are a pure
//! function of the input bytes) so the tests exercise the *wire* path, not
//! inference cost.

use adv_magnet::{DefensePipeline, DefenseScheme, MagnetError, StageTimings, Verdict};
use adv_tensor::{Shape, Tensor};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The verdict the stub pipeline produces for one item — shared with the
/// tests so wire verdicts can be checked against the in-process truth.
pub fn stub_verdict(item: &[f32]) -> Verdict {
    let sum: f32 = item.iter().sum();
    let q = (sum.abs() * 16.0) as usize;
    if q.is_multiple_of(7) {
        Verdict::Detected
    } else {
        Verdict::Classified(q % 10)
    }
}

/// A deterministic, dependency-free pipeline with optional per-batch delay
/// and a countdown of injected transient failures.
#[derive(Debug, Default)]
pub struct StubPipeline {
    /// Sleep per batch (creates queue pressure / deadline expiry).
    pub delay: Duration,
    /// While nonzero, each batch fails (decrementing) with a transient
    /// stage error — exercises the server-side retry path.
    pub fail_next: AtomicU64,
}

impl DefensePipeline for StubPipeline {
    fn name(&self) -> &str {
        "stub"
    }

    fn classify_batch(
        &self,
        x: &Tensor,
        _scheme: DefenseScheme,
    ) -> adv_magnet::Result<(Vec<Verdict>, StageTimings)> {
        if self.delay > Duration::ZERO {
            std::thread::sleep(self.delay);
        }
        loop {
            let n = self.fail_next.load(Ordering::Relaxed);
            if n == 0 {
                break;
            }
            if self
                .fail_next
                .compare_exchange(n, n - 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return Err(MagnetError::Stage {
                    stage: "stub".into(),
                    message: "injected transient failure".into(),
                });
            }
        }
        let n = x.shape().dims().first().copied().unwrap_or(0);
        let data = x.as_slice();
        let item_len = data.len() / n.max(1);
        let verdicts = (0..n)
            .map(|i| stub_verdict(&data[i * item_len..(i + 1) * item_len]))
            .collect();
        Ok((verdicts, StageTimings::default()))
    }
}

/// A deterministic `[1, 8, 8]` input, distinct per `offset`.
pub fn item(offset: usize) -> Tensor {
    Tensor::from_fn(Shape::new(vec![1, 8, 8]), |i| {
        (((i + offset * 131) * 7) % 23) as f32 / 23.0
    })
}
