//! End-to-end roundtrips over a real loopback socket: the full admission
//! pipeline (auth → rate limit → deadline → engine), verdict parity with
//! the in-process path, typed refusals, slow-loris eviction, and graceful
//! drain — all against the deterministic stub pipeline in `common`.

mod common;

use adv_net::{
    write_frame, BusyReason, ClientConfig, Frame, NetClient, NetError, NetServer, NetServerConfig,
    Reply, TenantPolicy, TenantSpec, WireErrorCode,
};
use adv_serve::{ServeConfig, ServeEngine};
use common::{item, stub_verdict, StubPipeline};
use std::io::Write;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

const KEY: u64 = 0x5EED_0F0F_1234_5678;

fn tenant_policy(rate: f64, burst: f64) -> TenantPolicy {
    TenantPolicy::Static(vec![TenantSpec {
        tenant: 1,
        key: KEY,
        rate_per_sec: rate,
        burst,
    }])
}

fn engine_with(pipeline: StubPipeline) -> Arc<ServeEngine> {
    let cfg = ServeConfig {
        workers: 2,
        max_wait: Duration::from_millis(1),
        ..ServeConfig::default()
    };
    Arc::new(ServeEngine::start(Arc::new(pipeline), cfg).expect("engine start"))
}

/// Engine with its *own* batch retry disabled, so transient failures
/// surface to the front door and exercise the net-level retry path.
fn engine_no_engine_retry(pipeline: StubPipeline) -> Arc<ServeEngine> {
    let cfg = ServeConfig {
        workers: 2,
        max_wait: Duration::from_millis(1),
        max_retries: 0,
        ..ServeConfig::default()
    };
    Arc::new(ServeEngine::start(Arc::new(pipeline), cfg).expect("engine start"))
}

fn serve(engine: &Arc<ServeEngine>, cfg: NetServerConfig) -> NetServer {
    NetServer::start(engine.clone(), "127.0.0.1:0", cfg).expect("server start")
}

fn connect(server: &NetServer) -> adv_net::Result<NetClient> {
    NetClient::connect(server.addr(), 1, KEY, ClientConfig::default())
}

/// After the server (the only other holder) is gone, unwrap the engine and
/// shut it down so worker threads are joined before the test exits.
fn stop_engine(engine: Arc<ServeEngine>) {
    if let Ok(engine) = Arc::try_unwrap(engine) {
        engine.shutdown();
    }
}

#[test]
fn wire_verdicts_match_the_in_process_path() {
    let engine = engine_with(StubPipeline::default());
    let server = serve(
        &engine,
        NetServerConfig {
            tenants: tenant_policy(1e6, 1e6),
            ..NetServerConfig::default()
        },
    );
    let mut client = connect(&server).expect("connect");
    for offset in 0..24 {
        let input = item(offset);
        let expected = stub_verdict(input.as_slice());
        match client.classify(&input, 0, offset as u32, 0).expect("reply") {
            Reply::Verdict { verdict, .. } => {
                assert_eq!(verdict, expected, "offset {offset}");
            }
            Reply::Busy { reason, .. } => panic!("unexpected busy: {reason}"),
        }
    }
    client.bye().expect("bye");
    let snap = server.shutdown();
    stop_engine(engine);
    assert_eq!(snap.requests, 24);
    assert_eq!(snap.accepted, 24);
    assert_eq!(snap.answered, 24);
    assert!(snap.accounting_holds(), "{snap:?}");
    assert_eq!(snap.connections_accepted, 1);
}

#[test]
fn wrong_key_is_refused_with_a_typed_auth_error() {
    let engine = engine_with(StubPipeline::default());
    let server = serve(
        &engine,
        NetServerConfig {
            tenants: tenant_policy(1e6, 1e6),
            ..NetServerConfig::default()
        },
    );
    match NetClient::connect(server.addr(), 1, KEY ^ 1, ClientConfig::default()) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, WireErrorCode::Auth),
        other => panic!("expected auth rejection, got {other:?}"),
    }
    match NetClient::connect(server.addr(), 777, KEY, ClientConfig::default()) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, WireErrorCode::Auth),
        other => panic!("expected unknown-tenant rejection, got {other:?}"),
    }
    let snap = server.shutdown();
    stop_engine(engine);
    assert_eq!(snap.auth_failures, 2);
    assert_eq!(snap.accepted, 0, "refused sessions never reach the engine");
}

#[test]
fn token_bucket_rejects_with_retry_hint_and_refills() {
    let engine = engine_with(StubPipeline::default());
    let server = serve(
        &engine,
        NetServerConfig {
            // 20 tokens/sec, burst 2: two immediate requests pass, the
            // third is refused with a ~50ms retry hint, and after waiting
            // out the hint a retry passes.
            tenants: tenant_policy(20.0, 2.0),
            ..NetServerConfig::default()
        },
    );
    let mut client = connect(&server).expect("connect");
    for offset in 0..2 {
        match client.classify(&item(offset), 0, 0, 0).expect("reply") {
            Reply::Verdict { .. } => {}
            Reply::Busy { reason, .. } => panic!("burst request {offset} refused: {reason}"),
        }
    }
    let hint = match client.classify(&item(2), 0, 0, 0).expect("reply") {
        Reply::Busy {
            reason,
            retry_after_ms,
        } => {
            assert_eq!(reason, BusyReason::RateLimited);
            assert!(retry_after_ms >= 1, "hint must be nonzero");
            retry_after_ms
        }
        Reply::Verdict { .. } => panic!("third burst request should be rate limited"),
    };
    std::thread::sleep(Duration::from_millis(u64::from(hint) + 20));
    match client.classify(&item(2), 0, 0, 0).expect("reply") {
        Reply::Verdict { .. } => {}
        Reply::Busy { reason, .. } => panic!("post-refill request refused: {reason}"),
    }
    let snap = server.shutdown();
    stop_engine(engine);
    assert_eq!(snap.busy, 1);
    assert_eq!(snap.rate_limited, 1);
    assert!(snap.accounting_holds(), "{snap:?}");
}

#[test]
fn client_deadline_expires_into_a_typed_error_and_shed_accounting() {
    let engine = engine_with(StubPipeline {
        delay: Duration::from_millis(400),
        fail_next: AtomicU64::new(0),
    });
    let server = serve(
        &engine,
        NetServerConfig {
            tenants: tenant_policy(1e6, 1e6),
            wait_slack: Duration::from_millis(100),
            ..NetServerConfig::default()
        },
    );
    let mut client = connect(&server).expect("connect");
    match client.classify(&item(0), 0, 0, 40) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, WireErrorCode::DeadlineExpired),
        other => panic!("expected deadline expiry, got {other:?}"),
    }
    // The connection survives a shed request; a patient follow-up passes.
    match client.classify(&item(1), 0, 1, 5_000).expect("reply") {
        Reply::Verdict { .. } => {}
        Reply::Busy { reason, .. } => panic!("follow-up refused: {reason}"),
    }
    let snap = server.shutdown();
    stop_engine(engine);
    assert_eq!(snap.shed_expired, 1);
    assert_eq!(snap.answered, 1);
    assert_eq!(snap.accepted, 2);
    assert!(snap.accounting_holds(), "{snap:?}");
}

#[test]
fn transient_pipeline_failures_are_retried_server_side() {
    let engine = engine_no_engine_retry(StubPipeline {
        delay: Duration::ZERO,
        // Exactly one injected failure: the first batch errors, the
        // server-side resubmit succeeds.
        fail_next: AtomicU64::new(1),
    });
    let server = serve(
        &engine,
        NetServerConfig {
            tenants: tenant_policy(1e6, 1e6),
            max_retries: 3,
            ..NetServerConfig::default()
        },
    );
    let mut client = connect(&server).expect("connect");
    let input = item(5);
    match client.classify(&input, 0, 5, 0).expect("reply") {
        Reply::Verdict { verdict, .. } => assert_eq!(verdict, stub_verdict(input.as_slice())),
        Reply::Busy { reason, .. } => panic!("refused: {reason}"),
    }
    let snap = server.shutdown();
    stop_engine(engine);
    assert!(snap.retries >= 1, "{snap:?}");
    assert_eq!(snap.accepted, 1, "retries must not re-count admission");
    assert!(snap.accounting_holds(), "{snap:?}");
}

#[test]
fn exhausted_retries_surface_a_typed_pipeline_error() {
    let engine = engine_no_engine_retry(StubPipeline {
        delay: Duration::ZERO,
        fail_next: AtomicU64::new(50),
    });
    let server = serve(
        &engine,
        NetServerConfig {
            tenants: tenant_policy(1e6, 1e6),
            max_retries: 1,
            ..NetServerConfig::default()
        },
    );
    let mut client = connect(&server).expect("connect");
    match client.classify(&item(0), 0, 0, 0) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, WireErrorCode::Pipeline),
        other => panic!("expected pipeline error, got {other:?}"),
    }
    let snap = server.shutdown();
    stop_engine(engine);
    assert!(snap.accounting_holds(), "{snap:?}");
    assert_eq!(snap.answered, 1, "typed errors still count as answered");
}

#[test]
fn draining_refuses_requests_and_new_connections() {
    let engine = engine_with(StubPipeline::default());
    let server = serve(
        &engine,
        NetServerConfig {
            tenants: tenant_policy(1e6, 1e6),
            ..NetServerConfig::default()
        },
    );
    let mut client = connect(&server).expect("connect");
    match client.classify(&item(0), 0, 0, 0).expect("reply") {
        Reply::Verdict { .. } => {}
        Reply::Busy { reason, .. } => panic!("refused before drain: {reason}"),
    }
    engine.begin_drain();
    // In-flight session: the next request is refused with Draining and the
    // server closes the connection after delivering the refusal.
    match client.classify(&item(1), 0, 1, 0) {
        Ok(Reply::Busy { reason, .. }) => assert_eq!(reason, BusyReason::Draining),
        other => panic!("expected draining refusal, got {other:?}"),
    }
    // New connection: refused at the door.
    match connect(&server) {
        Err(NetError::Refused { reason, .. }) => assert_eq!(reason, BusyReason::Draining),
        other => panic!("expected door refusal, got {other:?}"),
    }
    let snap = server.shutdown();
    stop_engine(engine);
    assert_eq!(snap.connections_refused, 1);
    assert!(snap.busy >= 1);
    assert!(snap.accounting_holds(), "{snap:?}");
}

#[test]
fn connection_cap_refuses_with_overloaded() {
    let engine = engine_with(StubPipeline::default());
    let server = serve(
        &engine,
        NetServerConfig {
            max_connections: 1,
            tenants: tenant_policy(1e6, 1e6),
            ..NetServerConfig::default()
        },
    );
    let holder = connect(&server).expect("first connection");
    match connect(&server) {
        Err(NetError::Refused {
            reason,
            retry_after_ms,
        }) => {
            assert_eq!(reason, BusyReason::Overloaded);
            assert!(retry_after_ms >= 1);
        }
        other => panic!("expected overloaded refusal, got {other:?}"),
    }
    drop(holder);
    let snap = server.shutdown();
    stop_engine(engine);
    assert_eq!(snap.connections_accepted, 1);
    assert_eq!(snap.connections_refused, 1);
}

#[test]
fn oversized_request_is_rejected_with_too_large() {
    let engine = engine_with(StubPipeline::default());
    let server = serve(
        &engine,
        NetServerConfig {
            // Welcome advertises this; the client below ignores it on
            // purpose, as a hostile client would.
            max_frame_bytes: 128,
            tenants: tenant_policy(1e6, 1e6),
            ..NetServerConfig::default()
        },
    );
    let mut client = connect(&server).expect("connect");
    assert_eq!(client.server_max_frame(), 128);
    match client.classify(&item(0), 0, 0, 0) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, WireErrorCode::TooLarge),
        other => panic!("expected TooLarge, got {other:?}"),
    }
    let snap = server.shutdown();
    stop_engine(engine);
    assert_eq!(snap.frame_errors, 1);
    assert_eq!(snap.accepted, 0);
}

#[test]
fn slow_loris_dribbler_is_evicted() {
    let engine = engine_with(StubPipeline::default());
    let server = serve(
        &engine,
        NetServerConfig {
            handshake_timeout: Duration::from_millis(150),
            frame_timeout: Duration::from_millis(150),
            tenants: tenant_policy(1e6, 1e6),
            ..NetServerConfig::default()
        },
    );
    let addr = server.addr();
    let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
    // Dribble half a Hello frame, then stall past the frame timeout.
    let hello = Frame::Hello {
        tenant: 1,
        key: KEY,
    }
    .encode();
    raw.write_all(hello.get(..10).expect("prefix"))
        .expect("dribble");
    raw.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(600));
    let snap = server.metrics();
    assert_eq!(snap.evicted_slow, 1, "{snap:?}");
    drop(raw);
    // The door still serves honest clients afterwards.
    let mut client = connect(&server).expect("connect after eviction");
    match client.classify(&item(0), 0, 0, 0).expect("reply") {
        Reply::Verdict { .. } => {}
        Reply::Busy { reason, .. } => panic!("refused: {reason}"),
    }
    let snap = server.shutdown();
    stop_engine(engine);
    assert!(snap.accounting_holds(), "{snap:?}");
}

#[test]
fn malformed_frame_kind_mid_session_gets_a_typed_error() {
    let engine = engine_with(StubPipeline::default());
    let server = serve(
        &engine,
        NetServerConfig {
            tenants: tenant_policy(1e6, 1e6),
            ..NetServerConfig::default()
        },
    );
    let addr = server.addr();
    let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
    raw.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    write_frame(
        &mut raw,
        &Frame::Hello {
            tenant: 1,
            key: KEY,
        },
    )
    .expect("hello");
    match adv_net::read_frame(&mut raw, 16 << 20).expect("welcome") {
        Frame::Welcome { .. } => {}
        other => panic!("expected Welcome, got {other:?}"),
    }
    // A server-only frame from the client is a protocol violation.
    write_frame(
        &mut raw,
        &Frame::Busy {
            id: 1,
            reason: BusyReason::QueueFull,
            retry_after_ms: 1,
        },
    )
    .expect("rogue frame");
    match adv_net::read_frame(&mut raw, 16 << 20).expect("error reply") {
        Frame::Error { code, .. } => assert_eq!(code, WireErrorCode::Malformed),
        other => panic!("expected Error, got {other:?}"),
    }
    let snap = server.shutdown();
    stop_engine(engine);
    assert!(snap.accounting_holds(), "{snap:?}");
}

#[test]
fn shutdown_answers_in_flight_work_before_joining() {
    let engine = engine_with(StubPipeline {
        delay: Duration::from_millis(100),
        fail_next: AtomicU64::new(0),
    });
    let server = serve(
        &engine,
        NetServerConfig {
            tenants: tenant_policy(1e6, 1e6),
            ..NetServerConfig::default()
        },
    );
    let addr = server.addr();
    let worker = std::thread::spawn(move || {
        let mut client = NetClient::connect(addr, 1, KEY, ClientConfig::default())?;
        client.classify(&item(3), 0, 3, 5_000)
    });
    // Let the request enter the engine, then shut down underneath it.
    std::thread::sleep(Duration::from_millis(30));
    let snap = server.shutdown();
    stop_engine(engine);
    let reply = worker.join().expect("client thread");
    match reply {
        Ok(Reply::Verdict { .. }) => {}
        other => panic!("in-flight request must be answered, got {other:?}"),
    }
    assert!(snap.accounting_holds(), "{snap:?}");
    assert_eq!(snap.answered, 1);
}
