//! Seeded network-chaos soak: the real server loop behind a
//! [`adv_chaos::NetFaultPlan`]-wrapped socket, hammered by tenant threads
//! that tolerate torn frames, bit flips, stalls, and mid-request
//! disconnects. Invariants checked after the storm:
//!
//! * **Wire accounting** — `accepted = answered + shed_expired +
//!   abandoned` at quiescence: every request admitted into the engine is
//!   answered exactly once or provably abandoned, never lost or double
//!   counted.
//! * **Engine accounting** — `submitted = completed + failed +
//!   shed_expired` in the engine's own ledger.
//! * **Verdict integrity** — every verdict that survives the wire matches
//!   the in-process truth (CRC plus id echo: corruption can kill a reply
//!   but never silently alter one).
//! * **Clean teardown** — `shutdown()` joins the accept loop and every
//!   handler; the process thread count returns to its pre-server level.
//!
//! The seed matrix comes from `NET_CHAOS_SEEDS` (comma-separated) so CI can
//! pin its own; the same seed replays the same fault schedule. With
//! `NET_CHAOS_METRICS_PATH` set, per-seed metrics JSON is written there for
//! the CI artifact.

#[allow(dead_code)]
mod common;

use adv_chaos::NetFaultPlan;
use adv_net::{
    derived_key, ClientConfig, NetClient, NetServer, NetServerConfig, Reply, TenantPolicy,
};
use adv_serve::{ServeConfig, ServeEngine};
use common::{item, stub_verdict, StubPipeline};
use std::sync::Arc;
use std::time::Duration;

const SECRET: u64 = 0xA11C_E5ED_5EED_0001;
const TENANTS: usize = 8;
const REQUESTS_PER_TENANT: usize = 12;

fn seed_matrix() -> Vec<u64> {
    match std::env::var("NET_CHAOS_SEEDS") {
        Ok(csv) => csv
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect(),
        Err(_) => vec![3, 17, 1031],
    }
}

/// Current thread count of this process, from /proc (Linux CI); `None`
/// elsewhere, which skips the leak check.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

struct TenantOutcome {
    verified: usize,
    mismatched: usize,
    busy: usize,
    errored: usize,
}

/// One tenant's session: send every request, reconnecting after injected
/// connection deaths, tolerating refusals and typed errors — but never a
/// wrong verdict.
fn run_tenant(addr: std::net::SocketAddr, tenant: u32) -> TenantOutcome {
    let key = derived_key(SECRET, tenant);
    let cfg = ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        max_frame_bytes: 16 << 20,
    };
    let mut out = TenantOutcome {
        verified: 0,
        mismatched: 0,
        busy: 0,
        errored: 0,
    };
    let mut client: Option<NetClient> = None;
    for req in 0..REQUESTS_PER_TENANT {
        let offset = tenant as usize * REQUESTS_PER_TENANT + req;
        let input = item(offset);
        let expected = stub_verdict(input.as_slice());
        // Up to three attempts per request: a torn frame or disconnect
        // costs the connection, not the test.
        let mut delivered = false;
        for _attempt in 0..3 {
            if client.is_none() {
                match NetClient::connect(addr, tenant, key, cfg.clone()) {
                    Ok(c) => client = Some(c),
                    Err(_) => {
                        out.errored += 1;
                        continue;
                    }
                }
            }
            let Some(c) = client.as_mut() else { continue };
            match c.classify(&input, 1, offset as u32, 0) {
                Ok(Reply::Verdict { verdict, .. }) => {
                    if verdict == expected {
                        out.verified += 1;
                    } else {
                        out.mismatched += 1;
                    }
                    delivered = true;
                }
                Ok(Reply::Busy { .. }) => {
                    out.busy += 1;
                    delivered = true;
                }
                Err(_) => {
                    // Torn/flipped/disconnected somewhere in the exchange:
                    // drop the session and retry on a fresh one.
                    out.errored += 1;
                    client = None;
                }
            }
            if delivered {
                break;
            }
        }
    }
    out
}

fn soak(seed: u64) -> String {
    let engine = {
        let cfg = ServeConfig {
            workers: 2,
            max_wait: Duration::from_millis(1),
            queue_capacity: 64,
            ..ServeConfig::default()
        };
        let pipeline = StubPipeline {
            delay: Duration::from_millis(1),
            ..StubPipeline::default()
        };
        Arc::new(ServeEngine::start(Arc::new(pipeline), cfg).expect("engine start"))
    };
    let server = NetServer::start(
        engine.clone(),
        "127.0.0.1:0",
        NetServerConfig {
            max_connections: TENANTS * 2,
            read_poll: Duration::from_millis(10),
            idle_timeout: Duration::from_secs(2),
            frame_timeout: Duration::from_millis(500),
            handshake_timeout: Duration::from_secs(1),
            default_deadline: Duration::from_millis(500),
            wait_slack: Duration::from_millis(500),
            tenants: TenantPolicy::Derived {
                secret: SECRET,
                rate_per_sec: 1e6,
                burst: 1e6,
            },
            fault_plan: Some(Arc::new(NetFaultPlan::randomized(seed))),
            ..NetServerConfig::default()
        },
    )
    .expect("server start");
    let addr = server.addr();

    let tenants: Vec<_> = (0..TENANTS as u32)
        .map(|tenant| std::thread::spawn(move || run_tenant(addr, tenant)))
        .collect();
    let mut verified = 0usize;
    let mut mismatched = 0usize;
    let mut busy = 0usize;
    let mut errored = 0usize;
    for handle in tenants {
        let out = handle.join().expect("tenant thread");
        verified += out.verified;
        mismatched += out.mismatched;
        busy += out.busy;
        errored += out.errored;
    }

    let net = server.shutdown();
    let engine_snap = Arc::try_unwrap(engine)
        .expect("server released its engine handle")
        .shutdown();

    assert_eq!(mismatched, 0, "seed {seed}: corrupted verdict survived");
    assert!(
        verified > 0,
        "seed {seed}: no request survived the fault schedule at all"
    );
    assert!(
        net.accounting_holds(),
        "seed {seed}: wire accounting broke: {net:?}"
    );
    assert_eq!(
        engine_snap.submitted,
        engine_snap.completed + engine_snap.failed + engine_snap.shed_expired,
        "seed {seed}: engine accounting broke: {engine_snap:?}"
    );
    assert!(
        net.accepted <= engine_snap.submitted,
        "seed {seed}: more wire acceptances than engine submissions"
    );

    format!(
        "{{\"seed\":{seed},\"verified\":{verified},\"busy\":{busy},\"client_errors\":{errored},\
         \"accepted\":{},\"answered\":{},\"shed_expired\":{},\"abandoned\":{},\
         \"frame_errors\":{},\"evicted_slow\":{},\"engine_submitted\":{}}}",
        net.accepted,
        net.answered,
        net.shed_expired,
        net.abandoned,
        net.frame_errors,
        net.evicted_slow,
        engine_snap.submitted,
    )
}

#[test]
fn seeded_net_chaos_soak_holds_the_front_door_contract() {
    let baseline_threads = thread_count();
    let mut artifacts = String::new();
    for seed in seed_matrix() {
        let line = soak(seed);
        artifacts.push_str(&line);
        artifacts.push('\n');
    }
    if let (Some(before), Some(after)) = (baseline_threads, thread_count()) {
        assert!(
            after <= before,
            "thread leak: {before} threads before the soak, {after} after"
        );
    }
    if let Ok(path) = std::env::var("NET_CHAOS_METRICS_PATH") {
        std::fs::write(&path, artifacts).expect("write net chaos metrics artifact");
    }
}

/// The same seed must drive the same fault schedule: two plans with equal
/// seeds agree on every decision, which is what makes a CI failure
/// replayable from its seed alone.
#[test]
fn fault_schedule_is_replayable_from_the_seed() {
    let a = NetFaultPlan::randomized(41);
    let b = NetFaultPlan::randomized(41);
    for conn in 0..4u64 {
        for op in 0..64u64 {
            assert_eq!(a.on_write(conn, op, 64), b.on_write(conn, op, 64));
            assert_eq!(a.on_read(conn, op), b.on_read(conn, op));
        }
    }
}
