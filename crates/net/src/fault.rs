//! The socket abstraction and the chaos seam.
//!
//! [`NetStream`] is the minimal surface the server and client need from a
//! connection — `Read + Write` plus timeouts and shutdown — implemented by
//! [`std::net::TcpStream`] and by [`FaultyStream`], which wraps any stream
//! and applies an [`adv_chaos::NetFaultPlan`]'s seeded schedule: torn
//! writes (prefix sent, then severed), bit flips, stalled reads, and
//! mid-operation disconnects. Handlers are generic over [`NetStream`], so
//! the soak test runs the *real* server loop against faulty sockets with
//! zero production-path branches.

use adv_chaos::{NetFault, NetFaultPlan};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the front door needs from a connection.
pub trait NetStream: Read + Write + Send {
    /// Sets the read timeout (None blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()>;

    /// Sets the write timeout (None blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    fn set_write_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()>;

    /// Severs both directions; subsequent operations fail.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    fn shutdown(&mut self) -> std::io::Result<()>;
}

impl NetStream for TcpStream {
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }

    fn set_write_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_write_timeout(self, timeout)
    }

    fn shutdown(&mut self) -> std::io::Result<()> {
        TcpStream::shutdown(self, std::net::Shutdown::Both)
    }
}

/// A [`NetStream`] that consults a seeded [`NetFaultPlan`] before every
/// read and write. See the module docs.
#[derive(Debug)]
pub struct FaultyStream<S: NetStream> {
    inner: S,
    plan: Arc<NetFaultPlan>,
    conn: u64,
    reads: AtomicU64,
    writes: AtomicU64,
    severed: bool,
}

impl<S: NetStream> FaultyStream<S> {
    /// Wraps `inner`; `conn` distinguishes this connection's fault
    /// schedule from its siblings under the same plan.
    pub fn new(inner: S, plan: Arc<NetFaultPlan>, conn: u64) -> FaultyStream<S> {
        FaultyStream {
            inner,
            plan,
            conn,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            severed: false,
        }
    }

    fn sever(&mut self) -> std::io::Error {
        self.severed = true;
        let _ = self.inner.shutdown();
        std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "adv-chaos: injected disconnect",
        )
    }
}

impl<S: NetStream> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.severed {
            return Ok(0);
        }
        let op = self.reads.fetch_add(1, Ordering::Relaxed);
        match self.plan.on_read(self.conn, op) {
            NetFault::None => self.inner.read(buf),
            NetFault::Stall { delay } => {
                std::thread::sleep(delay);
                self.inner.read(buf)
            }
            NetFault::Disconnect => Err(self.sever()),
            // The plan degrades structural faults to stalls on reads, but
            // keep the match total in case that contract shifts.
            NetFault::Torn { .. } | NetFault::BitFlip { .. } => self.inner.read(buf),
        }
    }
}

impl<S: NetStream> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.severed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "adv-chaos: connection already severed",
            ));
        }
        let op = self.writes.fetch_add(1, Ordering::Relaxed);
        match self.plan.on_write(self.conn, op, buf.len()) {
            NetFault::None => self.inner.write(buf),
            NetFault::Disconnect => Err(self.sever()),
            NetFault::Stall { delay } => {
                std::thread::sleep(delay);
                self.inner.write(buf)
            }
            NetFault::Torn { keep } => {
                // Send the prefix, then sever: the peer sees a torn frame.
                let prefix = buf.get(..keep).unwrap_or(buf);
                let _ = self.inner.write_all(prefix);
                let _ = self.inner.flush();
                Err(self.sever())
            }
            NetFault::BitFlip { bit } => {
                let mut corrupted = buf.to_vec();
                let byte = (bit / 8).min(corrupted.len().saturating_sub(1));
                if let Some(b) = corrupted.get_mut(byte) {
                    *b ^= 1u8 << (bit % 8);
                }
                // Report the full length so the writer believes the frame
                // went out intact — the corruption is the peer's problem.
                self.inner.write_all(&corrupted).map(|()| buf.len())
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl<S: NetStream> NetStream for FaultyStream<S> {
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_read_timeout(timeout)
    }

    fn set_write_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_write_timeout(timeout)
    }

    fn shutdown(&mut self) -> std::io::Result<()> {
        self.severed = true;
        self.inner.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// A loopback stream for exercising the wrapper without sockets.
    #[derive(Debug, Default)]
    struct MemStream {
        incoming: VecDeque<u8>,
        outgoing: Arc<Mutex<Vec<u8>>>,
        shut: bool,
    }

    impl Read for MemStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.shut {
                return Ok(0);
            }
            let n = buf.len().min(self.incoming.len());
            for slot in buf.iter_mut().take(n) {
                *slot = self.incoming.pop_front().unwrap_or(0);
            }
            Ok(n)
        }
    }

    impl Write for MemStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.shut {
                return Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "shut"));
            }
            adv_obs::sync::lock_unpoisoned(&self.outgoing).extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl NetStream for MemStream {
        fn set_read_timeout(&mut self, _t: Option<Duration>) -> std::io::Result<()> {
            Ok(())
        }

        fn set_write_timeout(&mut self, _t: Option<Duration>) -> std::io::Result<()> {
            Ok(())
        }

        fn shutdown(&mut self) -> std::io::Result<()> {
            self.shut = true;
            Ok(())
        }
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let out = Arc::new(Mutex::new(Vec::new()));
        let mem = MemStream {
            incoming: VecDeque::from(vec![1, 2, 3]),
            outgoing: out.clone(),
            shut: false,
        };
        let mut s = FaultyStream::new(mem, Arc::new(NetFaultPlan::new(1)), 0);
        let mut buf = [0u8; 3];
        assert_eq!(s.read(&mut buf).unwrap(), 3);
        assert_eq!(buf, [1, 2, 3]);
        s.write_all(&[9, 8]).unwrap();
        assert_eq!(*adv_obs::sync::lock_unpoisoned(&out), vec![9, 8]);
    }

    #[test]
    fn torn_write_sends_a_strict_prefix_then_severs() {
        let out = Arc::new(Mutex::new(Vec::new()));
        let mem = MemStream {
            incoming: VecDeque::new(),
            outgoing: out.clone(),
            shut: false,
        };
        let plan = Arc::new(NetFaultPlan::new(3).rates(1.0, 0.0, 0.0, 0.0));
        let mut s = FaultyStream::new(mem, plan, 0);
        let payload = vec![0xAAu8; 64];
        assert!(s.write(&payload).is_err(), "torn write must error");
        let sent = adv_obs::sync::lock_unpoisoned(&out).len();
        assert!(sent < 64, "sent {sent} of 64");
        // Severed: later writes fail, later reads report EOF.
        assert!(s.write(&payload).is_err());
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let out = Arc::new(Mutex::new(Vec::new()));
        let mem = MemStream {
            incoming: VecDeque::new(),
            outgoing: out.clone(),
            shut: false,
        };
        let plan = Arc::new(NetFaultPlan::new(5).rates(0.0, 1.0, 0.0, 0.0));
        let mut s = FaultyStream::new(mem, plan, 0);
        let payload = vec![0u8; 32];
        assert_eq!(s.write(&payload).unwrap(), 32, "flip reports full length");
        let sent = adv_obs::sync::lock_unpoisoned(&out).clone();
        let flipped: u32 = sent.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit must differ");
    }

    #[test]
    fn disconnect_on_read_severs_the_stream() {
        let mem = MemStream {
            incoming: VecDeque::from(vec![0u8; 16]),
            outgoing: Arc::new(Mutex::new(Vec::new())),
            shut: false,
        };
        let plan = Arc::new(NetFaultPlan::new(7).rates(0.0, 0.0, 0.0, 1.0));
        let mut s = FaultyStream::new(mem, plan, 0);
        let mut buf = [0u8; 8];
        assert!(s.read(&mut buf).is_err());
        assert_eq!(s.read(&mut buf).unwrap(), 0, "severed reads are EOF");
    }
}
