//! Tenant authentication and per-tenant token-bucket rate limiting.
//!
//! Every connection authenticates once at `Hello` time against a
//! [`TenantTable`]; every request then draws one token from the tenant's
//! [`TokenBucket`]. Buckets refill continuously at `rate_per_sec` up to
//! `burst` tokens, so a tenant can burst to its bucket size but sustains
//! only its configured rate — the loadgen invariant that bursty tenants see
//! `Busy(RateLimited)` while steady ones never do.
//!
//! Time is passed in by the caller as nanoseconds on the server's
//! monotonic epoch, which keeps the bucket arithmetic pure and testable
//! without sleeping.

use std::collections::HashMap;
use std::sync::Mutex;

/// One tenant's credentials and limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// The tenant id presented in `Hello`.
    pub tenant: u32,
    /// The tenant's API key.
    pub key: u64,
    /// Sustained request rate, tokens per second.
    pub rate_per_sec: f64,
    /// Bucket capacity (maximum burst).
    pub burst: f64,
}

/// How the server knows its tenants.
#[derive(Debug, Clone)]
pub enum TenantPolicy {
    /// An explicit allowlist of tenants with per-tenant limits.
    Static(Vec<TenantSpec>),
    /// Any tenant id is valid if it presents `derived_key(secret, tenant)`;
    /// all tenants share the same rate/burst configuration. This is how the
    /// loadgen simulates thousands of tenants without a thousand-entry
    /// config.
    Derived {
        /// The shared secret keys are derived from.
        secret: u64,
        /// Sustained request rate, tokens per second, per tenant.
        rate_per_sec: f64,
        /// Bucket capacity per tenant.
        burst: f64,
    },
}

/// The API key a [`TenantPolicy::Derived`] table expects from `tenant`.
/// FNV-1a over the tenant id, seeded by the secret — not cryptography, a
/// stand-in for a real credential store with the right shape (per-tenant,
/// unguessable-without-the-secret in tests).
pub fn derived_key(secret: u64, tenant: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ secret;
    for b in tenant.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A continuously-refilling token bucket. All state sits behind one mutex;
/// the hot path is a handful of float operations.
#[derive(Debug)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    state: Mutex<BucketState>,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// A full bucket refilling at `rate_per_sec` up to `burst` tokens.
    /// Non-finite or negative inputs are clamped to a minimal working
    /// bucket rather than rejected — a limits misconfiguration should
    /// throttle, not crash the listener.
    pub fn new(rate_per_sec: f64, burst: f64) -> TokenBucket {
        let sane = |v: f64, floor: f64| if v.is_finite() && v > floor { v } else { floor };
        let burst = sane(burst, 1.0);
        TokenBucket {
            rate_per_sec: sane(rate_per_sec, f64::MIN_POSITIVE),
            burst,
            state: Mutex::new(BucketState {
                tokens: burst,
                last_ns: 0,
            }),
        }
    }

    /// Tries to take one token at time `now_ns` (nanoseconds on any
    /// monotone epoch). On refusal returns the suggested wait in
    /// milliseconds until a token will be available.
    ///
    /// # Errors
    ///
    /// `Err(retry_after_ms)` when the bucket is empty.
    pub fn try_take(&self, now_ns: u64) -> Result<(), u32> {
        let mut s = adv_obs::sync::unpoison(self.state.lock());
        let elapsed_ns = now_ns.saturating_sub(s.last_ns);
        s.last_ns = now_ns;
        let refill = elapsed_ns as f64 * 1e-9 * self.rate_per_sec;
        s.tokens = (s.tokens + refill).min(self.burst);
        if s.tokens >= 1.0 {
            s.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - s.tokens;
            let wait_ms = (deficit / self.rate_per_sec * 1e3).ceil();
            Err(wait_ms.clamp(1.0, u32::MAX as f64) as u32)
        }
    }
}

/// The server's view of its tenants: authentication plus per-tenant
/// buckets. Derived-policy buckets are created lazily on first
/// authentication.
#[derive(Debug)]
pub struct TenantTable {
    policy: TenantPolicy,
    buckets: Mutex<HashMap<u32, std::sync::Arc<TokenBucket>>>,
}

impl TenantTable {
    /// Builds the table for a policy.
    pub fn new(policy: TenantPolicy) -> TenantTable {
        TenantTable {
            policy,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Checks `(tenant, key)` and returns the tenant's bucket on success.
    /// `None` means unknown tenant or wrong key — the caller answers
    /// `Error(Auth)` and closes.
    pub fn authenticate(&self, tenant: u32, key: u64) -> Option<std::sync::Arc<TokenBucket>> {
        let (rate, burst) = match &self.policy {
            TenantPolicy::Static(specs) => {
                let spec = specs.iter().find(|s| s.tenant == tenant)?;
                if spec.key != key {
                    return None;
                }
                (spec.rate_per_sec, spec.burst)
            }
            TenantPolicy::Derived {
                secret,
                rate_per_sec,
                burst,
            } => {
                if derived_key(*secret, tenant) != key {
                    return None;
                }
                (*rate_per_sec, *burst)
            }
        };
        let mut buckets = adv_obs::sync::unpoison(self.buckets.lock());
        Some(
            buckets
                .entry(tenant)
                .or_insert_with(|| std::sync::Arc::new(TokenBucket::new(rate, burst)))
                .clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn bucket_allows_burst_then_refuses() {
        let b = TokenBucket::new(10.0, 3.0);
        assert!(b.try_take(0).is_ok());
        assert!(b.try_take(0).is_ok());
        assert!(b.try_take(0).is_ok());
        let wait = b.try_take(0).unwrap_err();
        // One token at 10/s is 100ms away.
        assert!((90..=110).contains(&wait), "wait {wait}ms");
    }

    #[test]
    fn bucket_refills_at_rate() {
        let b = TokenBucket::new(2.0, 1.0);
        assert!(b.try_take(0).is_ok());
        assert!(b.try_take(0).is_err(), "empty immediately after");
        // 0.5s at 2 tokens/s refills exactly one token.
        assert!(b.try_take(SEC / 2).is_ok());
        assert!(b.try_take(SEC / 2).is_err());
    }

    #[test]
    fn refill_never_exceeds_burst() {
        let b = TokenBucket::new(100.0, 2.0);
        // A long quiet period must not bank more than `burst` tokens.
        assert!(b.try_take(1000 * SEC).is_ok());
        assert!(b.try_take(1000 * SEC).is_ok());
        assert!(b.try_take(1000 * SEC).is_err());
    }

    #[test]
    fn degenerate_configs_are_clamped_not_fatal() {
        for (rate, burst) in [(f64::NAN, 1.0), (-5.0, f64::INFINITY), (0.0, 0.0)] {
            let b = TokenBucket::new(rate, burst);
            // The clamped bucket still functions: one burst token exists.
            assert!(b.try_take(0).is_ok());
            assert!(b.try_take(0).is_err());
        }
    }

    #[test]
    fn static_table_authenticates_by_key() {
        let table = TenantTable::new(TenantPolicy::Static(vec![TenantSpec {
            tenant: 7,
            key: 1234,
            rate_per_sec: 10.0,
            burst: 5.0,
        }]));
        assert!(table.authenticate(7, 1234).is_some());
        assert!(table.authenticate(7, 1235).is_none(), "wrong key");
        assert!(table.authenticate(8, 1234).is_none(), "unknown tenant");
    }

    #[test]
    fn static_table_hands_back_the_same_bucket() {
        let table = TenantTable::new(TenantPolicy::Static(vec![TenantSpec {
            tenant: 1,
            key: 9,
            rate_per_sec: 10.0,
            burst: 1.0,
        }]));
        let a = table.authenticate(1, 9).unwrap();
        assert!(a.try_take(0).is_ok());
        // A second authentication shares the drained bucket — limits are
        // per tenant, not per connection.
        let b = table.authenticate(1, 9).unwrap();
        assert!(b.try_take(0).is_err());
    }

    #[test]
    fn derived_table_accepts_any_tenant_with_the_right_key() {
        let table = TenantTable::new(TenantPolicy::Derived {
            secret: 0xABCD,
            rate_per_sec: 5.0,
            burst: 2.0,
        });
        for tenant in [0u32, 1, 999, u32::MAX] {
            let key = derived_key(0xABCD, tenant);
            assert!(table.authenticate(tenant, key).is_some(), "tenant {tenant}");
            assert!(table.authenticate(tenant, key ^ 1).is_none());
        }
    }

    #[test]
    fn derived_keys_differ_across_tenants_and_secrets() {
        assert_ne!(derived_key(1, 10), derived_key(1, 11));
        assert_ne!(derived_key(1, 10), derived_key(2, 10));
    }
}
