//! Front-door metrics on a private `adv-obs` registry, mirroring the
//! engine's `ServeMetrics` discipline: always recorded (they back the
//! server's own snapshot API), never shared between two servers in one
//! process.
//!
//! The counters encode the admission accounting identity the net-chaos
//! soak asserts:
//!
//! ```text
//! accepted = answered + shed_expired + abandoned
//! ```
//!
//! where `accepted` counts requests admitted into the serving engine,
//! `answered` counts replies (verdicts *or* typed pipeline errors)
//! delivered to the client, `shed_expired` counts deadline-expired replies
//! delivered, and `abandoned` counts replies that could not be delivered
//! because the connection died first. Refusals — `Busy` frames, auth
//! failures, malformed frames — never enter the engine and sit outside the
//! identity.

use adv_obs::{Counter, Gauge, Registry, Snapshot};
use std::sync::Arc;

/// Point-in-time view of the front door's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetMetricsSnapshot {
    /// Connections accepted and handed to a handler thread.
    pub connections_accepted: u64,
    /// Connections refused at the door (connection cap or draining).
    pub connections_refused: u64,
    /// `Hello` frames rejected for an unknown tenant or wrong key.
    pub auth_failures: u64,
    /// Client frames rejected by the codec (truncated, corrupt, oversized).
    pub frame_errors: u64,
    /// `Request` frames read off the wire.
    pub requests: u64,
    /// Requests admitted into the serving engine.
    pub accepted: u64,
    /// Replies (verdicts or typed errors) delivered to the client.
    pub answered: u64,
    /// Deadline-expired replies delivered to the client.
    pub shed_expired: u64,
    /// Accepted requests whose reply could not be delivered because the
    /// connection died first.
    pub abandoned: u64,
    /// `Busy` frames sent (all admission refusals).
    pub busy: u64,
    /// `Busy` frames sent specifically for token-bucket exhaustion.
    pub rate_limited: u64,
    /// Server-side retries of transient pipeline failures.
    pub retries: u64,
    /// Connections evicted for dribbling a frame past the frame timeout
    /// (slow-loris defense).
    pub evicted_slow: u64,
    /// Connections currently being served.
    pub active_connections: u64,
}

impl NetMetricsSnapshot {
    /// `true` when the admission accounting identity holds. Call this only
    /// at quiescence (no in-flight requests); mid-flight the identity can
    /// transiently lag by the requests currently in the engine.
    pub fn accounting_holds(&self) -> bool {
        self.accepted == self.answered + self.shed_expired + self.abandoned
    }
}

/// Shared counters updated by the accept loop and handler threads, living
/// on a private `adv-obs` [`Registry`].
#[derive(Debug)]
pub struct NetMetrics {
    registry: Arc<Registry>,
    connections_accepted: Arc<Counter>,
    connections_refused: Arc<Counter>,
    auth_failures: Arc<Counter>,
    frame_errors: Arc<Counter>,
    requests: Arc<Counter>,
    accepted: Arc<Counter>,
    answered: Arc<Counter>,
    shed_expired: Arc<Counter>,
    abandoned: Arc<Counter>,
    busy: Arc<Counter>,
    rate_limited: Arc<Counter>,
    retries: Arc<Counter>,
    evicted_slow: Arc<Counter>,
    active_connections: Arc<Gauge>,
}

impl Default for NetMetrics {
    fn default() -> Self {
        let registry = Arc::new(Registry::new());
        NetMetrics {
            connections_accepted: registry.counter("net.connections_accepted"),
            connections_refused: registry.counter("net.connections_refused"),
            auth_failures: registry.counter("net.auth_failures"),
            frame_errors: registry.counter("net.frame_errors"),
            requests: registry.counter("net.requests"),
            accepted: registry.counter("net.accepted"),
            answered: registry.counter("net.answered"),
            shed_expired: registry.counter("net.shed_expired"),
            abandoned: registry.counter("net.abandoned"),
            busy: registry.counter("net.busy"),
            rate_limited: registry.counter("net.rate_limited"),
            retries: registry.counter("net.retries"),
            evicted_slow: registry.counter("net.evicted_slow"),
            active_connections: registry.gauge("net.active_connections"),
            registry,
        }
    }
}

impl NetMetrics {
    pub(crate) fn record_connection_accepted(&self) {
        self.connections_accepted.incr();
    }

    pub(crate) fn record_connection_refused(&self) {
        self.connections_refused.incr();
    }

    pub(crate) fn record_auth_failure(&self) {
        self.auth_failures.incr();
    }

    pub(crate) fn record_frame_error(&self) {
        self.frame_errors.incr();
    }

    pub(crate) fn record_request(&self) {
        self.requests.incr();
    }

    pub(crate) fn record_accepted(&self) {
        self.accepted.incr();
    }

    pub(crate) fn record_answered(&self) {
        self.answered.incr();
    }

    pub(crate) fn record_shed_expired(&self) {
        self.shed_expired.incr();
    }

    pub(crate) fn record_abandoned(&self) {
        self.abandoned.incr();
    }

    pub(crate) fn record_busy(&self, rate_limited: bool) {
        self.busy.incr();
        if rate_limited {
            self.rate_limited.incr();
        }
    }

    pub(crate) fn record_retry(&self) {
        self.retries.incr();
    }

    pub(crate) fn record_evicted_slow(&self) {
        self.evicted_slow.incr();
    }

    pub(crate) fn set_active_connections(&self, n: usize) {
        self.active_connections.set(n as f64);
    }

    /// Raw `adv-obs` snapshot of the server registry, for the Prometheus
    /// and JSON exporters.
    pub fn obs_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Current counter snapshot.
    pub fn snapshot(&self) -> NetMetricsSnapshot {
        NetMetricsSnapshot {
            connections_accepted: self.connections_accepted.get(),
            connections_refused: self.connections_refused.get(),
            auth_failures: self.auth_failures.get(),
            frame_errors: self.frame_errors.get(),
            requests: self.requests.get(),
            accepted: self.accepted.get(),
            answered: self.answered.get(),
            shed_expired: self.shed_expired.get(),
            abandoned: self.abandoned.get(),
            busy: self.busy.get(),
            rate_limited: self.rate_limited.get(),
            retries: self.retries.get(),
            evicted_slow: self.evicted_slow.get(),
            active_connections: self.active_connections.get() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_aggregates_counters_and_identity_holds() {
        let m = NetMetrics::default();
        m.record_connection_accepted();
        m.record_request();
        m.record_request();
        m.record_request();
        m.record_accepted();
        m.record_accepted();
        m.record_accepted();
        m.record_answered();
        m.record_shed_expired();
        m.record_abandoned();
        m.record_busy(true);
        m.record_busy(false);
        m.record_retry();
        m.record_evicted_slow();
        m.set_active_connections(4);
        let s = m.snapshot();
        assert_eq!(s.requests, 3);
        assert_eq!(s.accepted, 3);
        assert!(s.accounting_holds(), "{s:?}");
        assert_eq!(s.busy, 2);
        assert_eq!(s.rate_limited, 1);
        assert_eq!(s.active_connections, 4);
    }

    #[test]
    fn identity_detects_a_lost_reply() {
        let m = NetMetrics::default();
        m.record_accepted();
        assert!(!m.snapshot().accounting_holds());
        m.record_answered();
        assert!(m.snapshot().accounting_holds());
    }

    #[test]
    fn obs_snapshot_exports_net_metrics() {
        let m = NetMetrics::default();
        m.record_connection_accepted();
        m.record_auth_failure();
        m.record_frame_error();
        let snap = m.obs_snapshot();
        assert_eq!(snap.counter("net.connections_accepted"), Some(1));
        let prom = snap.to_prometheus();
        assert!(prom.contains("net_auth_failures 1"), "{prom}");
        assert!(prom.contains("net_frame_errors 1"), "{prom}");
    }
}
