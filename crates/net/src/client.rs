//! The blocking `ADVNET1` client: connect, authenticate, classify.
//!
//! Used by the integration tests, the `loadgen` binary (thousands of these
//! across a thread pool), and the roundtrip bench. One request in flight
//! per connection, matching the server's sequential request loop.

use crate::frame::{read_frame, write_frame, Frame, PROTOCOL_VERSION};
use crate::{BusyReason, NetError};
use adv_magnet::{DefenseScheme, Verdict};
use adv_serve::{EngineHealth, RouteInfo, DEFAULT_VARIANT};
use adv_tensor::Tensor;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client socket tuning.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Bound on connect establishment.
    pub connect_timeout: Duration,
    /// Bound on waiting for any reply frame.
    pub read_timeout: Duration,
    /// Bound on writing a frame.
    pub write_timeout: Duration,
    /// Largest reply payload accepted.
    pub max_frame_bytes: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(5),
            max_frame_bytes: 16 << 20,
        }
    }
}

/// The server's answer to one request, as the client sees it.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A verdict was served.
    Verdict {
        /// The defense pipeline's decision.
        verdict: Verdict,
        /// Scheme the batch actually ran under.
        scheme: DefenseScheme,
        /// `true` when the breaker had degraded the configured scheme.
        degraded: bool,
        /// Queue wait of the request, nanoseconds.
        queue_ns: u64,
        /// Pipeline time of the request's batch, nanoseconds.
        infer_ns: u64,
        /// Requests coalesced into the executed batch.
        batch: u32,
    },
    /// Admission was refused; retry after the hinted backoff.
    Busy {
        /// Why admission failed.
        reason: BusyReason,
        /// Suggested backoff, milliseconds.
        retry_after_ms: u32,
    },
}

/// One `StatusQuery` answer: the server's health and live routing table.
#[derive(Debug, Clone)]
pub struct ServerStatus {
    /// Aggregate engine (or zoo) health.
    pub health: EngineHealth,
    /// Routing-table epoch; increments on every hot-swap flip.
    pub epoch: u64,
    /// The live routing table: one entry per servable variant.
    pub routes: Vec<RouteInfo>,
}

/// A blocking connection to a [`crate::NetServer`].
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    cfg: ClientConfig,
    next_id: u64,
    /// Largest frame the server said it accepts.
    max_frame: u32,
    /// Health the server reported at handshake time.
    health: EngineHealth,
    /// Routing table the server reported at handshake time.
    routes: Vec<RouteInfo>,
}

impl NetClient {
    /// Connects, sends `Hello`, and waits for `Welcome`.
    ///
    /// # Errors
    ///
    /// [`NetError::Refused`] when the door answers `Busy` (connection cap,
    /// draining), [`NetError::Remote`] for auth rejection, plus the usual
    /// socket and codec failures.
    pub fn connect(
        addr: impl ToSocketAddrs,
        tenant: u32,
        key: u64,
        cfg: ClientConfig,
    ) -> crate::Result<NetClient> {
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or(NetError::Protocol("address resolved to nothing"))?;
        let stream = TcpStream::connect_timeout(&resolved, cfg.connect_timeout)?;
        stream.set_read_timeout(Some(cfg.read_timeout))?;
        stream.set_write_timeout(Some(cfg.write_timeout))?;
        let mut client = NetClient {
            stream,
            cfg,
            next_id: 1,
            max_frame: 0,
            health: EngineHealth::Healthy,
            routes: Vec::new(),
        };
        write_frame(&mut client.stream, &Frame::Hello { tenant, key })?;
        match client.read_reply()? {
            Frame::Welcome {
                version,
                max_frame,
                health,
                routes,
            } => {
                if version != PROTOCOL_VERSION {
                    return Err(NetError::Protocol("server speaks a different version"));
                }
                client.max_frame = max_frame;
                client.health = health;
                client.routes = routes;
                Ok(client)
            }
            Frame::Busy {
                reason,
                retry_after_ms,
                ..
            } => Err(NetError::Refused {
                reason,
                retry_after_ms,
            }),
            Frame::Error { code, message, .. } => Err(NetError::Remote { code, message }),
            _ => Err(NetError::Protocol("expected Welcome")),
        }
    }

    /// Classifies one input (per-item shape, e.g. `[C, H, W]`).
    /// `deadline_ms == 0` asks for the server's default deadline.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] for typed server errors (pipeline failure,
    /// deadline expiry), plus socket and codec failures. A `Busy` refusal
    /// is a normal [`Reply`], not an error.
    pub fn classify(
        &mut self,
        input: &Tensor,
        route: u32,
        sample: u32,
        deadline_ms: u32,
    ) -> crate::Result<Reply> {
        self.classify_variant(input, route, sample, DEFAULT_VARIANT, deadline_ms)
    }

    /// Classifies one input against a specific model-zoo variant. A
    /// variant missing from the live routing table answers
    /// `Busy(VariantUnavailable)` as a normal [`Reply`].
    ///
    /// # Errors
    ///
    /// Same as [`classify`](Self::classify).
    pub fn classify_variant(
        &mut self,
        input: &Tensor,
        route: u32,
        sample: u32,
        variant: u32,
        deadline_ms: u32,
    ) -> crate::Result<Reply> {
        let id = self.next_id;
        self.next_id += 1;
        let dims: Vec<u32> = input
            .shape()
            .dims()
            .iter()
            .map(|&d| d.min(u32::MAX as usize) as u32)
            .collect();
        let request = Frame::Request {
            id,
            deadline_ms,
            route,
            sample,
            variant,
            dims,
            data: input.as_slice().to_vec(),
        };
        write_frame(&mut self.stream, &request)?;
        match self.read_reply()? {
            Frame::Response {
                id: rid,
                verdict,
                scheme,
                degraded,
                queue_ns,
                infer_ns,
                batch,
            } => {
                if rid != id {
                    return Err(NetError::Protocol("reply id mismatch"));
                }
                Ok(Reply::Verdict {
                    verdict,
                    scheme,
                    degraded,
                    queue_ns,
                    infer_ns,
                    batch,
                })
            }
            Frame::Busy {
                reason,
                retry_after_ms,
                ..
            } => Ok(Reply::Busy {
                reason,
                retry_after_ms,
            }),
            Frame::Error { code, message, .. } => Err(NetError::Remote { code, message }),
            _ => Err(NetError::Protocol("expected Response")),
        }
    }

    /// The largest frame payload the server accepts, from its `Welcome`.
    pub fn server_max_frame(&self) -> u32 {
        self.max_frame
    }

    /// Engine health the server reported in its `Welcome`.
    pub fn server_health(&self) -> EngineHealth {
        self.health
    }

    /// The routing table the server reported in its `Welcome` (one entry
    /// per live variant; a bare engine reports a single default route).
    pub fn server_routes(&self) -> &[RouteInfo] {
        &self.routes
    }

    /// Asks the server for its current health, routing epoch, and live
    /// routing table (a `StatusQuery`/`Status` exchange). Also refreshes
    /// the cached [`server_health`](Self::server_health) and
    /// [`server_routes`](Self::server_routes).
    ///
    /// # Errors
    ///
    /// Socket and codec failures, or a non-`Status` reply.
    pub fn status(&mut self) -> crate::Result<ServerStatus> {
        write_frame(&mut self.stream, &Frame::StatusQuery)?;
        match self.read_reply()? {
            Frame::Status {
                health,
                epoch,
                routes,
            } => {
                self.health = health;
                self.routes = routes.clone();
                Ok(ServerStatus {
                    health,
                    epoch,
                    routes,
                })
            }
            Frame::Error { code, message, .. } => Err(NetError::Remote { code, message }),
            _ => Err(NetError::Protocol("expected Status")),
        }
    }

    /// Ends the session cleanly.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn bye(mut self) -> crate::Result<()> {
        write_frame(&mut self.stream, &Frame::Bye)?;
        Ok(())
    }

    fn read_reply(&mut self) -> crate::Result<Frame> {
        read_frame(&mut self.stream, self.cfg.max_frame_bytes)
    }
}
