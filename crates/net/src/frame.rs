//! The `ADVNET1` wire frame: a length-prefixed, CRC-guarded envelope for
//! every message the front door exchanges, reusing `adv-store`'s envelope
//! discipline (magic / version / length / CRC32, strict validation) on the
//! socket instead of the filesystem.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   "ADVNET1\0"  8 bytes
//! version u32          currently 2
//! kind    u8           frame kind discriminant
//! flags   u8           must be 0 in version 2
//! length  u32          payload byte count
//! crc32   u32          CRC32 of the payload
//! payload [u8; length]
//! ```
//!
//! Version 2 (the model-zoo protocol) added the `variant` routing key to
//! `Request`, engine health plus the live routing table to `Welcome`, the
//! `StatusQuery`/`Status` pair for mid-session observation, and the
//! `VariantUnavailable` busy reason. Version-1 peers are rejected at the
//! header (`BadVersion`) — both ends of this protocol live in this
//! workspace, so there is no compatibility shim.
//!
//! Validation is strict: wrong magic, unknown version or kind, nonzero
//! flags, a length that does not match the buffer, trailing bytes after the
//! payload, a CRC mismatch, or an out-of-range field inside the payload all
//! reject the frame with a typed [`FrameError`] — never a panic. The fuzz
//! suite pins this for every strict prefix and every single-bit flip of a
//! valid frame.

use adv_magnet::{DefenseScheme, Verdict};
use adv_serve::{EngineHealth, RouteInfo};
use adv_store::crc32;

/// The frame magic (8 bytes, NUL-padded).
pub const FRAME_MAGIC: &[u8; 8] = b"ADVNET1\0";

/// Protocol version this build speaks.
pub const PROTOCOL_VERSION: u32 = 2;

/// Routing-table entries a `Welcome`/`Status` frame may carry — a sanity
/// bound, far above any realistic variant count.
pub const MAX_ROUTES: usize = 1024;

/// Bytes in the fixed frame header.
pub const HEADER_LEN: usize = 8 + 4 + 1 + 1 + 4 + 4;

/// Why a server refused to take a request right now. Busy frames are the
/// admission-control answer: they are sent *before* any work enters the
/// engine, so a loaded or draining server degrades into fast, explicit
/// rejections instead of queue bloat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyReason {
    /// The tenant exhausted its token bucket.
    RateLimited,
    /// The engine's request queue is at capacity (backpressure).
    QueueFull,
    /// The server is draining for shutdown; no new work is admitted.
    Draining,
    /// The server is at its concurrent-connection cap.
    Overloaded,
    /// The requested variant is not in the live routing table (unknown,
    /// retired, or its shard has failed); other variants may still serve.
    VariantUnavailable,
}

impl BusyReason {
    fn to_wire(self) -> u8 {
        match self {
            BusyReason::RateLimited => 1,
            BusyReason::QueueFull => 2,
            BusyReason::Draining => 3,
            BusyReason::Overloaded => 4,
            BusyReason::VariantUnavailable => 5,
        }
    }

    fn from_wire(b: u8) -> Result<BusyReason, FrameError> {
        match b {
            1 => Ok(BusyReason::RateLimited),
            2 => Ok(BusyReason::QueueFull),
            3 => Ok(BusyReason::Draining),
            4 => Ok(BusyReason::Overloaded),
            5 => Ok(BusyReason::VariantUnavailable),
            _ => Err(FrameError::BadField("busy reason")),
        }
    }
}

impl std::fmt::Display for BusyReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusyReason::RateLimited => write!(f, "rate limited"),
            BusyReason::QueueFull => write!(f, "queue full"),
            BusyReason::Draining => write!(f, "draining"),
            BusyReason::Overloaded => write!(f, "overloaded"),
            BusyReason::VariantUnavailable => write!(f, "variant unavailable"),
        }
    }
}

fn health_to_wire(h: EngineHealth) -> u8 {
    match h {
        EngineHealth::Healthy => 0,
        EngineHealth::Degraded => 1,
        EngineHealth::Draining => 2,
        EngineHealth::Failed => 3,
    }
}

fn health_from_wire(b: u8) -> Result<EngineHealth, FrameError> {
    match b {
        0 => Ok(EngineHealth::Healthy),
        1 => Ok(EngineHealth::Degraded),
        2 => Ok(EngineHealth::Draining),
        3 => Ok(EngineHealth::Failed),
        _ => Err(FrameError::BadField("engine health")),
    }
}

fn encode_routes(p: &mut Vec<u8>, routes: &[RouteInfo]) {
    let count = routes.len().min(MAX_ROUTES);
    p.extend_from_slice(&(count as u16).to_le_bytes());
    for route in routes.iter().take(count) {
        p.extend_from_slice(&route.variant.to_le_bytes());
        p.extend_from_slice(&route.version.to_le_bytes());
        p.push(health_to_wire(route.health));
    }
}

fn decode_routes(r: &mut Reader<'_>) -> Result<Vec<RouteInfo>, FrameError> {
    let count = r.u16()? as usize;
    if count > MAX_ROUTES {
        return Err(FrameError::BadField("route count"));
    }
    let mut routes = Vec::with_capacity(count);
    for _ in 0..count {
        routes.push(RouteInfo {
            variant: r.u32()?,
            version: r.u32()?,
            health: health_from_wire(r.u8()?)?,
        });
    }
    Ok(routes)
}

/// Typed error category carried by an [`Frame::Error`] reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireErrorCode {
    /// Unknown tenant or wrong API key.
    Auth,
    /// The server could not parse the client's frame.
    Malformed,
    /// The defense pipeline failed terminally for this request.
    Pipeline,
    /// The request's deadline expired before a verdict was produced.
    DeadlineExpired,
    /// The request frame exceeded the server's size cap.
    TooLarge,
    /// Anything else (supervision failure, internal invariant).
    Internal,
}

impl WireErrorCode {
    fn to_wire(self) -> u8 {
        match self {
            WireErrorCode::Auth => 1,
            WireErrorCode::Malformed => 2,
            WireErrorCode::Pipeline => 3,
            WireErrorCode::DeadlineExpired => 4,
            WireErrorCode::TooLarge => 5,
            WireErrorCode::Internal => 6,
        }
    }

    fn from_wire(b: u8) -> Result<WireErrorCode, FrameError> {
        match b {
            1 => Ok(WireErrorCode::Auth),
            2 => Ok(WireErrorCode::Malformed),
            3 => Ok(WireErrorCode::Pipeline),
            4 => Ok(WireErrorCode::DeadlineExpired),
            5 => Ok(WireErrorCode::TooLarge),
            6 => Ok(WireErrorCode::Internal),
            _ => Err(FrameError::BadField("error code")),
        }
    }
}

impl std::fmt::Display for WireErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireErrorCode::Auth => write!(f, "auth"),
            WireErrorCode::Malformed => write!(f, "malformed"),
            WireErrorCode::Pipeline => write!(f, "pipeline"),
            WireErrorCode::DeadlineExpired => write!(f, "deadline expired"),
            WireErrorCode::TooLarge => write!(f, "too large"),
            WireErrorCode::Internal => write!(f, "internal"),
        }
    }
}

fn scheme_to_wire(s: DefenseScheme) -> u8 {
    match s {
        DefenseScheme::None => 0,
        DefenseScheme::DetectorOnly => 1,
        DefenseScheme::ReformerOnly => 2,
        DefenseScheme::Full => 3,
    }
}

fn scheme_from_wire(b: u8) -> Result<DefenseScheme, FrameError> {
    match b {
        0 => Ok(DefenseScheme::None),
        1 => Ok(DefenseScheme::DetectorOnly),
        2 => Ok(DefenseScheme::ReformerOnly),
        3 => Ok(DefenseScheme::Full),
        _ => Err(FrameError::BadField("defense scheme")),
    }
}

/// Every message the protocol can carry, server- and client-side.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: open a session as `tenant`, proving the API key.
    Hello {
        /// Tenant id presented by the client.
        tenant: u32,
        /// The tenant's API key.
        key: u64,
    },
    /// Server → client: the session is open.
    Welcome {
        /// Protocol version the server speaks.
        version: u32,
        /// Largest frame (payload bytes) the server will accept.
        max_frame: u32,
        /// Aggregate engine health at session open.
        health: EngineHealth,
        /// The live routing table: every variant currently admitting
        /// traffic, with its version and per-shard health.
        routes: Vec<RouteInfo>,
    },
    /// Client → server: classify one input.
    Request {
        /// Client-chosen request id, echoed in the reply.
        id: u64,
        /// Client deadline budget in milliseconds; 0 means "server
        /// default". Propagated into the engine's shed-expired path.
        deadline_ms: u32,
        /// Route tag (which corpus/endpoint the input belongs to).
        route: u32,
        /// Sample tag (resolvable back to the input at replay time).
        sample: u32,
        /// Defense variant to route to (0 = the default variant).
        variant: u32,
        /// Input shape (per-item, e.g. `[C, H, W]`).
        dims: Vec<u32>,
        /// Input data, row-major, `dims` product many values.
        data: Vec<f32>,
    },
    /// Server → client: the verdict for a request.
    Response {
        /// The request id this answers.
        id: u64,
        /// The defense pipeline's decision.
        verdict: Verdict,
        /// Scheme the batch actually ran under.
        scheme: DefenseScheme,
        /// `true` when the breaker had degraded the configured scheme.
        degraded: bool,
        /// Time the request waited in the engine queue, nanoseconds.
        queue_ns: u64,
        /// Pipeline execution time of the request's batch, nanoseconds.
        infer_ns: u64,
        /// Requests coalesced into the executed batch.
        batch: u32,
    },
    /// Server → client: the request was refused before entering the engine.
    Busy {
        /// The request id (0 for connection-level refusals).
        id: u64,
        /// Why admission failed.
        reason: BusyReason,
        /// Suggested client backoff before retrying, milliseconds.
        retry_after_ms: u32,
    },
    /// Server → client: the request failed with a typed error.
    Error {
        /// The request id (0 for connection-level errors).
        id: u64,
        /// Error category.
        code: WireErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Client → server: clean end of session.
    Bye,
    /// Client → server: report current health and the live routing table
    /// (answered with a [`Frame::Status`]); lets ops clients observe a
    /// drain or a hot swap mid-session without a side channel.
    StatusQuery,
    /// Server → client: the engine's current state.
    Status {
        /// Aggregate engine health.
        health: EngineHealth,
        /// Routing-table epoch (bumps on every hot-swap flip).
        epoch: u64,
        /// The live routing table.
        routes: Vec<RouteInfo>,
    },
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::Welcome { .. } => 2,
            Frame::Request { .. } => 3,
            Frame::Response { .. } => 4,
            Frame::Busy { .. } => 5,
            Frame::Error { .. } => 6,
            Frame::Bye => 7,
            Frame::StatusQuery => 8,
            Frame::Status { .. } => 9,
        }
    }

    /// Serializes the frame (header + payload) into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(FRAME_MAGIC);
        out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        out.push(self.kind());
        out.push(0); // flags, reserved
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Frame::Hello { tenant, key } => {
                p.extend_from_slice(&tenant.to_le_bytes());
                p.extend_from_slice(&key.to_le_bytes());
            }
            Frame::Welcome {
                version,
                max_frame,
                health,
                routes,
            } => {
                p.extend_from_slice(&version.to_le_bytes());
                p.extend_from_slice(&max_frame.to_le_bytes());
                p.push(health_to_wire(*health));
                encode_routes(&mut p, routes);
            }
            Frame::Request {
                id,
                deadline_ms,
                route,
                sample,
                variant,
                dims,
                data,
            } => {
                p.extend_from_slice(&id.to_le_bytes());
                p.extend_from_slice(&deadline_ms.to_le_bytes());
                p.extend_from_slice(&route.to_le_bytes());
                p.extend_from_slice(&sample.to_le_bytes());
                p.extend_from_slice(&variant.to_le_bytes());
                p.push(dims.len() as u8);
                for d in dims {
                    p.extend_from_slice(&d.to_le_bytes());
                }
                for v in data {
                    p.extend_from_slice(&v.to_le_bytes());
                }
            }
            Frame::Response {
                id,
                verdict,
                scheme,
                degraded,
                queue_ns,
                infer_ns,
                batch,
            } => {
                p.extend_from_slice(&id.to_le_bytes());
                match verdict {
                    Verdict::Detected => {
                        p.push(0);
                        p.extend_from_slice(&0u32.to_le_bytes());
                    }
                    Verdict::Classified(class) => {
                        p.push(1);
                        p.extend_from_slice(&(*class as u32).to_le_bytes());
                    }
                }
                p.push(scheme_to_wire(*scheme));
                p.push(u8::from(*degraded));
                p.extend_from_slice(&queue_ns.to_le_bytes());
                p.extend_from_slice(&infer_ns.to_le_bytes());
                p.extend_from_slice(&batch.to_le_bytes());
            }
            Frame::Busy {
                id,
                reason,
                retry_after_ms,
            } => {
                p.extend_from_slice(&id.to_le_bytes());
                p.push(reason.to_wire());
                p.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
            Frame::Error { id, code, message } => {
                p.extend_from_slice(&id.to_le_bytes());
                p.push(code.to_wire());
                let msg = message.as_bytes();
                let len = msg.len().min(u16::MAX as usize);
                p.extend_from_slice(&(len as u16).to_le_bytes());
                p.extend_from_slice(msg.get(..len).unwrap_or_default());
            }
            Frame::Bye => {}
            Frame::StatusQuery => {}
            Frame::Status {
                health,
                epoch,
                routes,
            } => {
                p.push(health_to_wire(*health));
                p.extend_from_slice(&epoch.to_le_bytes());
                encode_routes(&mut p, routes);
            }
        }
        p
    }

    /// Parses exactly one frame from `buf`, which must contain the whole
    /// frame and nothing else.
    ///
    /// # Errors
    ///
    /// A typed [`FrameError`] for any malformation; see the module docs for
    /// the strictness contract.
    pub fn decode(buf: &[u8]) -> Result<Frame, FrameError> {
        let (kind, payload_len) = decode_header(buf)?;
        let payload = buf.get(HEADER_LEN..).unwrap_or_default();
        if payload.len() != payload_len {
            return Err(FrameError::LengthMismatch {
                header: payload_len as u64,
                actual: payload.len() as u64,
            });
        }
        let stored_crc = read_u32(buf, 18)?;
        decode_body(kind, payload, stored_crc)
    }

    /// Decodes a frame's body given an already-validated header. Used by
    /// the streaming reader, which pulls the header and payload off the
    /// socket separately.
    ///
    /// # Errors
    ///
    /// As [`decode`](Self::decode).
    pub fn decode_body(kind: u8, payload: &[u8], stored_crc: u32) -> Result<Frame, FrameError> {
        decode_body(kind, payload, stored_crc)
    }
}

/// Writes one frame (header + payload) and flushes.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_frame<W: std::io::Write + ?Sized>(w: &mut W, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

/// Reads exactly one frame. Payloads above `max_payload` are rejected
/// *before* any allocation or payload read.
///
/// # Errors
///
/// [`crate::NetError::Closed`] on EOF at a frame boundary, `Io` on EOF or
/// socket failure mid-frame, `Frame` for any codec rejection.
pub fn read_frame<R: std::io::Read + ?Sized>(
    r: &mut R,
    max_payload: usize,
) -> crate::Result<Frame> {
    let mut header = [0u8; HEADER_LEN];
    fill(r, &mut header, true)?;
    let (kind, payload_len) = decode_header(&header)?;
    if payload_len > max_payload {
        return Err(FrameError::TooLarge {
            len: payload_len as u64,
            max: max_payload as u64,
        }
        .into());
    }
    let mut payload = vec![0u8; payload_len];
    fill(r, &mut payload, false)?;
    let stored_crc = read_u32(&header, 18)?;
    Ok(Frame::decode_body(kind, &payload, stored_crc)?)
}

/// Fills `buf` completely. `at_boundary` selects whether EOF before the
/// first byte is a clean close or a mid-frame truncation.
fn fill<R: std::io::Read + ?Sized>(
    r: &mut R,
    buf: &mut [u8],
    at_boundary: bool,
) -> crate::Result<()> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let (_, rest) = buf.split_at_mut(filled);
        let n = r.read(rest)?;
        if n == 0 {
            return Err(if at_boundary && filled == 0 {
                crate::NetError::Closed
            } else {
                crate::NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof mid-frame",
                ))
            });
        }
        filled += n;
    }
    Ok(())
}

/// Validates the fixed header, returning `(kind, payload_len)`.
///
/// # Errors
///
/// Typed [`FrameError`] on truncation, bad magic/version/flags, or an
/// unknown kind.
pub fn decode_header(buf: &[u8]) -> Result<(u8, usize), FrameError> {
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Truncated {
            have: buf.len(),
            need: HEADER_LEN,
        });
    }
    if buf.get(..8) != Some(FRAME_MAGIC.as_slice()) {
        return Err(FrameError::BadMagic);
    }
    let version = read_u32(buf, 8)?;
    if version != PROTOCOL_VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let kind = *buf.get(12).unwrap_or(&0);
    if !(1..=9).contains(&kind) {
        return Err(FrameError::BadKind(kind));
    }
    let flags = *buf.get(13).unwrap_or(&0);
    if flags != 0 {
        return Err(FrameError::BadFlags(flags));
    }
    let payload_len = read_u32(buf, 14)? as usize;
    Ok((kind, payload_len))
}

fn decode_body(kind: u8, payload: &[u8], stored_crc: u32) -> Result<Frame, FrameError> {
    let computed = crc32(payload);
    if stored_crc != computed {
        return Err(FrameError::CrcMismatch {
            stored: stored_crc,
            computed,
        });
    }
    let mut r = Reader::new(payload);
    let frame = match kind {
        1 => Frame::Hello {
            tenant: r.u32()?,
            key: r.u64()?,
        },
        2 => Frame::Welcome {
            version: r.u32()?,
            max_frame: r.u32()?,
            health: health_from_wire(r.u8()?)?,
            routes: decode_routes(&mut r)?,
        },
        3 => {
            let id = r.u64()?;
            let deadline_ms = r.u32()?;
            let route = r.u32()?;
            let sample = r.u32()?;
            let variant = r.u32()?;
            let rank = r.u8()? as usize;
            if rank == 0 || rank > 8 {
                return Err(FrameError::BadField("tensor rank"));
            }
            let mut dims = Vec::with_capacity(rank);
            let mut volume: u64 = 1;
            for _ in 0..rank {
                let d = r.u32()?;
                if d == 0 {
                    return Err(FrameError::BadField("zero tensor dim"));
                }
                volume = volume.saturating_mul(u64::from(d));
                dims.push(d);
            }
            // The remaining payload must carry exactly `volume` f32s; the
            // byte budget was already capped by the reader's max length.
            if volume.saturating_mul(4) != r.remaining() as u64 {
                return Err(FrameError::BadField("tensor data length"));
            }
            let mut data = Vec::with_capacity(volume as usize);
            for _ in 0..volume {
                data.push(f32::from_le_bytes(r.u32()?.to_le_bytes()));
            }
            Frame::Request {
                id,
                deadline_ms,
                route,
                sample,
                variant,
                dims,
                data,
            }
        }
        4 => {
            let id = r.u64()?;
            let tag = r.u8()?;
            let class = r.u32()?;
            let verdict = match tag {
                0 if class == 0 => Verdict::Detected,
                1 => Verdict::Classified(class as usize),
                _ => return Err(FrameError::BadField("verdict")),
            };
            Frame::Response {
                id,
                verdict,
                scheme: scheme_from_wire(r.u8()?)?,
                degraded: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(FrameError::BadField("degraded flag")),
                },
                queue_ns: r.u64()?,
                infer_ns: r.u64()?,
                batch: r.u32()?,
            }
        }
        5 => Frame::Busy {
            id: r.u64()?,
            reason: BusyReason::from_wire(r.u8()?)?,
            retry_after_ms: r.u32()?,
        },
        6 => {
            let id = r.u64()?;
            let code = WireErrorCode::from_wire(r.u8()?)?;
            let len = r.u16()? as usize;
            let raw = r.bytes(len)?;
            let message = std::str::from_utf8(raw)
                .map_err(|_| FrameError::BadField("error message utf8"))?
                .to_string();
            Frame::Error { id, code, message }
        }
        7 => Frame::Bye,
        8 => Frame::StatusQuery,
        9 => Frame::Status {
            health: health_from_wire(r.u8()?)?,
            epoch: r.u64()?,
            routes: decode_routes(&mut r)?,
        },
        other => return Err(FrameError::BadKind(other)),
    };
    r.finish()?;
    Ok(frame)
}

fn read_u32(buf: &[u8], offset: usize) -> Result<u32, FrameError> {
    buf.get(offset..offset + 4)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .map(u32::from_le_bytes)
        .ok_or(FrameError::Truncated {
            have: buf.len(),
            need: offset + 4,
        })
}

/// Bounds-checked little-endian cursor over a payload slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated {
            have: self.buf.len(),
            need: usize::MAX,
        })?;
        let s = self.buf.get(self.pos..end).ok_or(FrameError::Truncated {
            have: self.buf.len(),
            need: end,
        })?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        self.bytes(1).map(|s| *s.first().unwrap_or(&0))
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        let s = self.bytes(2)?;
        <[u8; 2]>::try_from(s)
            .map(u16::from_le_bytes)
            .map_err(|_| FrameError::BadField("u16"))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let s = self.bytes(4)?;
        <[u8; 4]>::try_from(s)
            .map(u32::from_le_bytes)
            .map_err(|_| FrameError::BadField("u32"))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let s = self.bytes(8)?;
        <[u8; 8]>::try_from(s)
            .map(u64::from_le_bytes)
            .map_err(|_| FrameError::BadField("u64"))
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            })
        }
    }
}

/// Why a frame was rejected. Every variant is a protocol-level decision the
/// peer caused; none of them are recoverable for the frame in question.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the structure requires.
    Truncated {
        /// Bytes available.
        have: usize,
        /// Bytes required.
        need: usize,
    },
    /// The first 8 bytes are not [`FRAME_MAGIC`].
    BadMagic,
    /// Unknown protocol version.
    BadVersion(u32),
    /// Unknown frame kind discriminant.
    BadKind(u8),
    /// Reserved flags set (must be 0 in version 1).
    BadFlags(u8),
    /// Header length field disagrees with the bytes present.
    LengthMismatch {
        /// Length the header claims.
        header: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// Payload checksum mismatch (corruption in flight).
    CrcMismatch {
        /// CRC stored in the header.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// The payload declared a larger frame than the peer accepts.
    TooLarge {
        /// Payload length the header claims.
        len: u64,
        /// The enforced cap.
        max: u64,
    },
    /// Payload bytes left over after the structure was fully read.
    TrailingBytes {
        /// How many bytes were left.
        extra: usize,
    },
    /// An in-range structural field held an out-of-range value.
    BadField(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::BadFlags(fl) => write!(f, "reserved flags set: {fl:#04x}"),
            FrameError::LengthMismatch { header, actual } => {
                write!(
                    f,
                    "length mismatch: header says {header}, buffer has {actual}"
                )
            }
            FrameError::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "crc mismatch: stored {stored:08x}, computed {computed:08x}"
                )
            }
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the payload")
            }
            FrameError::BadField(what) => write!(f, "out-of-range field: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                tenant: 7,
                key: 0xDEAD_BEEF_CAFE_F00D,
            },
            Frame::Welcome {
                version: PROTOCOL_VERSION,
                max_frame: 1 << 20,
                health: EngineHealth::Healthy,
                routes: vec![
                    RouteInfo {
                        variant: 0,
                        version: 3,
                        health: EngineHealth::Healthy,
                    },
                    RouteInfo {
                        variant: 2,
                        version: 1,
                        health: EngineHealth::Degraded,
                    },
                ],
            },
            Frame::Request {
                id: 42,
                deadline_ms: 250,
                route: 1,
                sample: 9,
                variant: 2,
                dims: vec![1, 4, 4],
                data: (0..16).map(|i| i as f32 / 16.0).collect(),
            },
            Frame::Response {
                id: 42,
                verdict: Verdict::Classified(3),
                scheme: DefenseScheme::Full,
                degraded: false,
                queue_ns: 1_000,
                infer_ns: 2_000,
                batch: 8,
            },
            Frame::Response {
                id: 43,
                verdict: Verdict::Detected,
                scheme: DefenseScheme::DetectorOnly,
                degraded: true,
                queue_ns: 0,
                infer_ns: 5,
                batch: 1,
            },
            Frame::Busy {
                id: 44,
                reason: BusyReason::RateLimited,
                retry_after_ms: 120,
            },
            Frame::Busy {
                id: 46,
                reason: BusyReason::VariantUnavailable,
                retry_after_ms: 0,
            },
            Frame::Error {
                id: 45,
                code: WireErrorCode::Pipeline,
                message: "detector failed".to_string(),
            },
            Frame::Bye,
            Frame::StatusQuery,
            Frame::Status {
                health: EngineHealth::Draining,
                epoch: 17,
                routes: vec![RouteInfo {
                    variant: 1,
                    version: 4,
                    health: EngineHealth::Draining,
                }],
            },
        ]
    }

    #[test]
    fn every_kind_roundtrips() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            assert_eq!(Frame::decode(&bytes).unwrap(), frame, "{frame:?}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Frame::Bye.encode();
        bytes.push(0);
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn payload_corruption_rejected() {
        let mut bytes = Frame::Hello { tenant: 1, key: 2 }.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn request_data_length_must_match_dims() {
        let frame = Frame::Request {
            id: 1,
            deadline_ms: 0,
            route: 0,
            sample: 0,
            variant: 0,
            dims: vec![2, 2],
            data: vec![0.0; 5], // one extra value
        };
        let bytes = frame.encode();
        assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::BadField("tensor data length"))
        );
    }

    #[test]
    fn zero_dims_and_zero_rank_rejected() {
        for (dims, data) in [(vec![0u32, 4], vec![0.0f32; 0]), (vec![], vec![])] {
            let bytes = Frame::Request {
                id: 1,
                deadline_ms: 0,
                route: 0,
                sample: 0,
                variant: 0,
                dims,
                data,
            }
            .encode();
            assert!(Frame::decode(&bytes).is_err());
        }
    }

    #[test]
    fn long_error_messages_are_clamped_not_lost() {
        let frame = Frame::Error {
            id: 1,
            code: WireErrorCode::Internal,
            message: "x".repeat(90_000),
        };
        let bytes = frame.encode();
        match Frame::decode(&bytes).unwrap() {
            Frame::Error { message, .. } => assert_eq!(message.len(), u16::MAX as usize),
            other => panic!("unexpected {other:?}"),
        }
    }
}
