//! adv-net: a fault-hardened multi-tenant TCP front door for the serving
//! engine.
//!
//! The in-process [`adv_serve::ServeEngine`] already survives worker
//! panics, pipeline failures, and deadline pressure; this crate puts a wire
//! boundary in front of it, where the *other* half of production failure
//! modes live — slow clients, torn frames, retry storms, tenant overload.
//! Everything is std-only: a thread-per-connection listener over a
//! length-prefixed binary protocol.
//!
//! The pieces:
//!
//! * [`Frame`] — the `ADVNET1` wire format: magic / version / length /
//!   CRC32 framing (adv-store's envelope discipline applied to a socket)
//!   with strict typed rejection of anything malformed.
//! * [`TenantTable`] / [`TokenBucket`] — per-tenant API keys and
//!   token-bucket rate limits; authentication happens once per connection
//!   at `Hello` time, admission per request.
//! * [`NetServer`] — the listener: bounded concurrent connections,
//!   admission control that answers [`Frame::Busy`] *before* work enters
//!   the engine, client deadlines propagated into the engine's
//!   shed-expired path, slow-loris eviction, bounded retry with jittered
//!   backoff for transient pipeline failures, and graceful drain on
//!   shutdown (in-flight requests answered, new connects refused via the
//!   engine's `Draining` health state).
//! * [`NetClient`] — the matching blocking client used by the tests, the
//!   `loadgen` binary, and the roundtrip bench.
//! * [`FaultyStream`] — the chaos seam: wraps any stream and applies an
//!   [`adv_chaos::NetFaultPlan`]'s seeded schedule of torn frames, bit
//!   flips, stalls, and disconnects.
//!
//! Accounting identity, asserted by the net-chaos soak: every request the
//! server *accepts* (admits into the engine) is answered exactly once —
//! `accepted = answered + shed_expired + abandoned`, where `abandoned`
//! counts replies that could not be delivered because the connection died
//! first. Refusals (`Busy`, auth failures, malformed frames) never enter
//! the engine and are counted separately.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod fault;
mod frame;
mod limits;
mod metrics;
mod server;

pub use client::{ClientConfig, NetClient, Reply, ServerStatus};
pub use fault::{FaultyStream, NetStream};
pub use frame::{
    decode_header, read_frame, write_frame, BusyReason, Frame, FrameError, WireErrorCode,
    FRAME_MAGIC, HEADER_LEN, MAX_ROUTES, PROTOCOL_VERSION,
};
pub use limits::{derived_key, TenantPolicy, TenantSpec, TenantTable, TokenBucket};
pub use metrics::{NetMetrics, NetMetricsSnapshot};
pub use server::{NetServer, NetServerConfig};

/// Errors surfaced by the network layer.
#[derive(Debug)]
pub enum NetError {
    /// A malformed or corrupted frame (typed codec rejection).
    Frame(FrameError),
    /// A socket-level failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// The peer closed the connection cleanly where a frame was expected.
    Closed,
    /// The server answered with a typed [`Frame::Error`].
    Remote {
        /// The error category the server reported.
        code: WireErrorCode,
        /// The server's human-readable detail.
        message: String,
    },
    /// The server refused admission with a [`Frame::Busy`] during the
    /// handshake (connection cap, draining).
    Refused {
        /// Why admission failed.
        reason: BusyReason,
        /// The server's suggested backoff, milliseconds.
        retry_after_ms: u32,
    },
    /// The peer sent a frame kind that is illegal in the current protocol
    /// state (e.g. a `Request` before `Hello`).
    Protocol(&'static str),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Frame(e) => write!(f, "frame error: {e}"),
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Closed => write!(f, "connection closed"),
            NetError::Remote { code, message } => {
                write!(f, "server error ({code}): {message}")
            }
            NetError::Refused {
                reason,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "refused at the door ({reason}); retry in {retry_after_ms}ms"
                )
            }
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Frame(e) => Some(e),
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> NetError {
        NetError::Frame(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetError>;
