//! The listener: thread-per-connection serving of `ADVNET1` over TCP with
//! admission control in front of the [`adv_serve::ServeEngine`].
//!
//! The admission pipeline, in order, cheapest refusal first:
//!
//! 1. **Connection cap / draining** — at accept time: over the concurrent
//!    connection cap or during drain, the connect is answered with one
//!    `Busy` frame and closed before a handler thread is even spawned.
//! 2. **Authentication** — the first frame must be a valid `Hello` within
//!    the handshake timeout; unknown tenants get `Error(Auth)` and close.
//! 3. **Rate limit** — each `Request` draws a token from the tenant's
//!    bucket; an empty bucket answers `Busy(RateLimited)` with a
//!    retry-after hint. No engine work has happened yet.
//! 4. **Engine backpressure** — `submit` can still refuse with a full
//!    queue (`Busy(QueueFull)`) or a closed one (`Busy(Draining)`).
//!
//! Only past all four does a request enter the engine, carrying the
//! client's deadline into the shed-expired path; from that point the
//! accounting identity (`accepted = answered + shed_expired + abandoned`)
//! guarantees exactly one wire-level outcome. Transient pipeline failures
//! are retried server-side with jittered backoff before the client ever
//! sees an error.
//!
//! Slow-loris defense: once the first byte of a frame arrives, the whole
//! frame must complete within the frame timeout or the connection is
//! evicted. Idle connections (no first byte) are evicted after the idle
//! timeout; both bounds also double as the drain-responsiveness bound.

use crate::fault::{FaultyStream, NetStream};
use crate::frame::{decode_header, write_frame, Frame, FrameError, HEADER_LEN, PROTOCOL_VERSION};
use crate::limits::{TenantPolicy, TenantTable, TokenBucket};
use crate::metrics::{NetMetrics, NetMetricsSnapshot};
use crate::{BusyReason, NetError, WireErrorCode};
use adv_chaos::NetFaultPlan;
use adv_serve::{EngineHealth, RequestTag, ServeError, VariantRouter};
use adv_tensor::{Shape, Tensor};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Front-door tuning knobs.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Concurrent connections served; further connects get `Busy` frames.
    pub max_connections: usize,
    /// Poll granularity of the request-loop read timeout (bounds how fast
    /// handlers notice a drain).
    pub read_poll: Duration,
    /// Idle eviction: a connection with no request activity this long is
    /// closed.
    pub idle_timeout: Duration,
    /// Slow-loris eviction: once a frame's first byte arrives, the whole
    /// frame must complete within this bound.
    pub frame_timeout: Duration,
    /// Socket write timeout for replies.
    pub write_timeout: Duration,
    /// The `Hello` must arrive within this bound.
    pub handshake_timeout: Duration,
    /// Largest accepted frame payload, bytes.
    pub max_frame_bytes: usize,
    /// Deadline applied when a request carries `deadline_ms == 0`.
    pub default_deadline: Duration,
    /// Upper clamp on client-supplied deadlines.
    pub max_deadline: Duration,
    /// Extra wait past the deadline before the handler gives up on the
    /// engine's reply (covers batch execution already in flight).
    pub wait_slack: Duration,
    /// Server-side resubmissions after a transient pipeline failure.
    pub max_retries: usize,
    /// Backoff before the first retry; doubles per attempt, jittered.
    pub retry_backoff: Duration,
    /// Who may connect, and at what rate.
    pub tenants: TenantPolicy,
    /// Chaos seam: when set, every accepted socket is wrapped in a
    /// [`FaultyStream`] driven by this plan. `None` in production.
    pub fault_plan: Option<Arc<NetFaultPlan>>,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            max_connections: 64,
            read_poll: Duration::from_millis(25),
            idle_timeout: Duration::from_secs(30),
            frame_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(5),
            handshake_timeout: Duration::from_secs(2),
            max_frame_bytes: 16 << 20,
            default_deadline: Duration::from_secs(5),
            max_deadline: Duration::from_secs(30),
            wait_slack: Duration::from_secs(1),
            max_retries: 2,
            retry_backoff: Duration::from_millis(5),
            tenants: TenantPolicy::Static(Vec::new()),
            fault_plan: None,
        }
    }
}

/// State shared by the accept loop and every handler thread.
#[derive(Debug)]
struct ServerShared {
    router: Arc<dyn VariantRouter>,
    cfg: NetServerConfig,
    tenants: TenantTable,
    metrics: NetMetrics,
    epoch: Instant,
    stopping: AtomicBool,
    active: AtomicUsize,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerShared {
    /// Nanoseconds since the server started — the token buckets' time base.
    fn now_ns(&self) -> u64 {
        // lint-ok(gated-clocks): rate limiting is the feature; the bucket
        // refill arithmetic runs on this clock.
        self.epoch.elapsed().as_nanos() as u64
    }

    fn draining(&self) -> bool {
        // lint-ok(ordering-justified): one-way stop latch; a late reader
        // refuses one connect later.
        self.stopping.load(Ordering::Relaxed)
            || self.router.router_health() >= EngineHealth::Draining
    }
}

/// The TCP front door. Dropping (or [`shutdown`](Self::shutdown)) drains
/// gracefully: new connects are refused, in-flight requests answered,
/// handler threads joined.
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts the accept loop in
    /// front of `router` — a bare [`adv_serve::ServeEngine`] or a full
    /// model zoo; anything that implements [`VariantRouter`].
    ///
    /// # Errors
    ///
    /// Socket errors from bind, local-address resolution, or the accept
    /// thread spawn.
    pub fn start<R: VariantRouter + 'static>(
        router: Arc<R>,
        addr: &str,
        cfg: NetServerConfig,
    ) -> crate::Result<NetServer> {
        let router: Arc<dyn VariantRouter> = router;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let tenants = TenantTable::new(cfg.tenants.clone());
        let shared = Arc::new(ServerShared {
            router,
            cfg,
            tenants,
            metrics: NetMetrics::default(),
            // lint-ok(gated-clocks): the epoch anchors every token bucket.
            epoch: Instant::now(),
            stopping: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            handlers: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("adv-net-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(NetError::Io)?
        };
        Ok(NetServer {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current front-door counters.
    pub fn metrics(&self) -> NetMetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The front door's metrics in the Prometheus text exposition format.
    pub fn metrics_prometheus(&self) -> String {
        self.shared.metrics.obs_snapshot().to_prometheus()
    }

    /// Graceful shutdown: refuse new connects, drain the engine, answer
    /// everything in flight, join every thread, return the final counters.
    pub fn shutdown(mut self) -> NetMetricsSnapshot {
        self.stop();
        self.shared.metrics.snapshot()
    }

    fn stop(&mut self) {
        // Order matters: the stop latch first (accept loop and handler
        // polls see it), then the engine drain (queued work still
        // answered), then wake the blocking accept with a throwaway
        // connect, then join everything.
        // lint-ok(ordering-justified): one-way latch, as above.
        self.shared.stopping.store(true, Ordering::Relaxed);
        self.shared.router.begin_drain();
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = adv_obs::sync::lock_unpoisoned(&self.shared.handlers);
            guard.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    let mut conn_seq: u64 = 0;
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                // lint-ok(ordering-justified): one-way stop latch.
                if shared.stopping.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
        };
        // lint-ok(ordering-justified): one-way stop latch.
        if shared.stopping.load(Ordering::Relaxed) {
            return;
        }
        let conn = conn_seq;
        conn_seq += 1;
        refuse_or_spawn(shared, stream, conn);
    }
}

/// Door policy: refuse (one `Busy` frame, close) or hand to a handler.
fn refuse_or_spawn(shared: &Arc<ServerShared>, mut stream: TcpStream, conn: u64) {
    let refusal = if shared.draining() {
        Some(BusyReason::Draining)
    // lint-ok(ordering-justified): admission heuristic; racing accepts may
    // briefly overshoot the cap by the number of in-flight accept
    // decisions, which only softens the refusal.
    } else if shared.active.load(Ordering::Relaxed) >= shared.cfg.max_connections {
        Some(BusyReason::Overloaded)
    } else {
        None
    };
    if let Some(reason) = refusal {
        shared.metrics.record_connection_refused();
        let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
        let _ = write_frame(
            &mut stream,
            &Frame::Busy {
                id: 0,
                reason,
                retry_after_ms: 100,
            },
        );
        return;
    }
    shared.metrics.record_connection_accepted();
    // lint-ok(ordering-justified): the count only feeds the admission
    // heuristic above and a gauge; no memory is published through it.
    let n = shared.active.fetch_add(1, Ordering::Relaxed) + 1;
    shared.metrics.set_active_connections(n);
    let handle = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name(format!("adv-net-conn-{conn}"))
            .spawn(move || {
                match &shared.cfg.fault_plan {
                    Some(plan) => {
                        let faulty = FaultyStream::new(stream, plan.clone(), conn);
                        handler_entry(&shared, faulty, conn);
                    }
                    None => handler_entry(&shared, stream, conn),
                }
                // lint-ok(ordering-justified): admission heuristic, as above.
                let n = shared.active.fetch_sub(1, Ordering::Relaxed) - 1;
                shared.metrics.set_active_connections(n);
            })
    };
    match handle {
        Ok(handle) => {
            let mut guard = adv_obs::sync::lock_unpoisoned(&shared.handlers);
            // Reap finished handlers so a long-lived server doesn't hoard
            // dead thread stacks; live ones stay for the shutdown join.
            let mut keep = Vec::with_capacity(guard.len() + 1);
            for h in guard.drain(..) {
                if h.is_finished() {
                    let _ = h.join();
                } else {
                    keep.push(h);
                }
            }
            keep.push(handle);
            *guard = keep;
        }
        Err(_) => {
            // lint-ok(ordering-justified): admission heuristic, as above.
            let n = shared.active.fetch_sub(1, Ordering::Relaxed) - 1;
            shared.metrics.set_active_connections(n);
        }
    }
}

/// Why the handler stopped serving a connection.
enum ConnEnd {
    /// Clean: `Bye`, EOF at a frame boundary, or a served refusal.
    Clean,
    /// The socket died or the peer violated the protocol.
    Errored,
}

fn handler_entry<S: NetStream>(shared: &ServerShared, mut stream: S, conn: u64) {
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = serve_connection(shared, &mut stream, conn);
    let _ = stream.shutdown();
}

fn serve_connection<S: NetStream>(
    shared: &ServerShared,
    stream: &mut S,
    conn: u64,
) -> std::result::Result<ConnEnd, ()> {
    // Handshake: exactly one Hello within the handshake timeout.
    let bucket = match read_frame_bounded(shared, stream, shared.cfg.handshake_timeout) {
        Ok(Frame::Hello { tenant, key }) => match shared.tenants.authenticate(tenant, key) {
            Some(bucket) => (tenant, bucket),
            None => {
                shared.metrics.record_auth_failure();
                let _ = write_frame(
                    stream,
                    &Frame::Error {
                        id: 0,
                        code: WireErrorCode::Auth,
                        message: format!("unknown tenant {tenant} or bad key"),
                    },
                );
                return Ok(ConnEnd::Clean);
            }
        },
        Ok(_) => {
            let _ = write_frame(
                stream,
                &Frame::Error {
                    id: 0,
                    code: WireErrorCode::Malformed,
                    message: "expected Hello".into(),
                },
            );
            return Ok(ConnEnd::Errored);
        }
        Err(e) => {
            answer_read_failure(shared, stream, 0, &e);
            return Ok(ConnEnd::Errored);
        }
    };
    let (tenant, bucket) = bucket;
    write_frame(
        stream,
        &Frame::Welcome {
            version: PROTOCOL_VERSION,
            max_frame: shared.cfg.max_frame_bytes.min(u32::MAX as usize) as u32,
            health: shared.router.router_health(),
            routes: shared.router.routes(),
        },
    )
    .map_err(|_| ())?;

    // Request loop: one frame at a time, in order.
    loop {
        let frame = match read_frame_bounded(shared, stream, shared.cfg.idle_timeout) {
            Ok(frame) => frame,
            Err(ReadEnd::Closed) => return Ok(ConnEnd::Clean),
            Err(e) => {
                answer_read_failure(shared, stream, 0, &e);
                return Ok(ConnEnd::Errored);
            }
        };
        match frame {
            Frame::Bye => return Ok(ConnEnd::Clean),
            Frame::StatusQuery => {
                // Ops probe: current health, routing epoch, and the live
                // routing table — answered even while draining, so a
                // client can watch a drain or promotion progress.
                let status = Frame::Status {
                    health: shared.router.router_health(),
                    epoch: shared.router.routing_epoch(),
                    routes: shared.router.routes(),
                };
                if write_frame(stream, &status).is_err() {
                    return Err(());
                }
            }
            Frame::Request {
                id,
                deadline_ms,
                route,
                sample,
                variant,
                dims,
                data,
            } => {
                shared.metrics.record_request();
                match handle_request(
                    shared,
                    stream,
                    conn,
                    tenant,
                    &bucket,
                    id,
                    deadline_ms,
                    route,
                    sample,
                    variant,
                    dims,
                    data,
                ) {
                    RequestEnd::Continue => {}
                    RequestEnd::Close => return Ok(ConnEnd::Clean),
                    RequestEnd::Dead => return Err(()),
                }
            }
            _ => {
                let _ = write_frame(
                    stream,
                    &Frame::Error {
                        id: 0,
                        code: WireErrorCode::Malformed,
                        message: "unexpected frame kind".into(),
                    },
                );
                return Ok(ConnEnd::Errored);
            }
        }
    }
}

/// How one request left the handler.
enum RequestEnd {
    /// Answered (or refused); keep serving this connection.
    Continue,
    /// Answered, but the connection should close (draining).
    Close,
    /// The connection died while delivering the reply.
    Dead,
}

#[allow(clippy::too_many_arguments)]
fn handle_request<S: NetStream>(
    shared: &ServerShared,
    stream: &mut S,
    conn: u64,
    tenant: u32,
    bucket: &TokenBucket,
    id: u64,
    deadline_ms: u32,
    route: u32,
    sample: u32,
    variant: u32,
    dims: Vec<u32>,
    data: Vec<f32>,
) -> RequestEnd {
    // Admission gate 1: draining — refuse before any engine contact.
    if shared.draining() {
        shared.metrics.record_busy(false);
        let _ = write_frame(
            stream,
            &Frame::Busy {
                id,
                reason: BusyReason::Draining,
                retry_after_ms: 500,
            },
        );
        return RequestEnd::Close;
    }
    // Admission gate 2: the tenant's token bucket.
    if let Err(retry_after_ms) = bucket.try_take(shared.now_ns()) {
        shared.metrics.record_busy(true);
        return match write_frame(
            stream,
            &Frame::Busy {
                id,
                reason: BusyReason::RateLimited,
                retry_after_ms,
            },
        ) {
            Ok(()) => RequestEnd::Continue,
            Err(_) => RequestEnd::Dead,
        };
    }
    // Build the tensor; the codec already validated dims/data consistency.
    let shape = Shape::new(dims.iter().map(|&d| d as usize).collect());
    let input = match Tensor::from_vec(data, shape) {
        Ok(t) => t,
        Err(e) => {
            let _ = write_frame(
                stream,
                &Frame::Error {
                    id,
                    code: WireErrorCode::Malformed,
                    message: format!("bad tensor: {e}"),
                },
            );
            return RequestEnd::Continue;
        }
    };
    let budget = if deadline_ms == 0 {
        shared.cfg.default_deadline
    } else {
        Duration::from_millis(u64::from(deadline_ms)).min(shared.cfg.max_deadline)
    };
    let tag = RequestTag::new(tenant, route, sample);

    // Admission gate 3: the engine queue. Past this point the request is
    // `accepted` and owes the client exactly one reply.
    let mut attempt = 0usize;
    let mut accepted = false;
    let reply = loop {
        let pending = match shared
            .router
            .submit_routed(variant, input.clone(), tag, budget)
        {
            Ok(pending) => pending,
            Err(ServeError::VariantUnavailable(_)) => {
                // Not in the live routing table (or its shard failed):
                // refuse without touching any engine. The client may retry
                // after the table flips — e.g. mid-promotion — so this is
                // Busy, not a hard error.
                if accepted {
                    break Frame::Error {
                        id,
                        code: WireErrorCode::Pipeline,
                        message: "retry rejected: variant left routing table".into(),
                    };
                }
                shared.metrics.record_busy(false);
                break Frame::Busy {
                    id,
                    reason: BusyReason::VariantUnavailable,
                    retry_after_ms: 100,
                };
            }
            Err(ServeError::QueueFull) => {
                if accepted {
                    // A retry resubmission hit backpressure: the original
                    // acceptance still owes a reply — report the pipeline
                    // failure we were retrying.
                    break Frame::Error {
                        id,
                        code: WireErrorCode::Pipeline,
                        message: "retry rejected by backpressure".into(),
                    };
                }
                shared.metrics.record_busy(false);
                break Frame::Busy {
                    id,
                    reason: BusyReason::QueueFull,
                    retry_after_ms: 10,
                };
            }
            Err(ServeError::ShuttingDown) => {
                if accepted {
                    break Frame::Error {
                        id,
                        code: WireErrorCode::Pipeline,
                        message: "retry rejected by drain".into(),
                    };
                }
                shared.metrics.record_busy(false);
                let _ = write_frame(
                    stream,
                    &Frame::Busy {
                        id,
                        reason: BusyReason::Draining,
                        retry_after_ms: 500,
                    },
                );
                return RequestEnd::Close;
            }
            Err(e) => {
                break Frame::Error {
                    id,
                    code: WireErrorCode::Internal,
                    message: e.to_string(),
                };
            }
        };
        if !accepted {
            accepted = true;
            shared.metrics.record_accepted();
        }
        match pending.wait_timeout(budget + shared.cfg.wait_slack) {
            Ok(resp) => {
                break Frame::Response {
                    id,
                    verdict: resp.verdict,
                    scheme: resp.scheme,
                    degraded: resp.degraded,
                    queue_ns: resp.queue_wait.as_nanos() as u64,
                    infer_ns: resp.stage_timings.total().as_nanos() as u64,
                    batch: resp.batch_size.min(u32::MAX as usize) as u32,
                };
            }
            Err(ServeError::Timeout) => {
                break Frame::Error {
                    id,
                    code: WireErrorCode::DeadlineExpired,
                    message: format!("deadline of {budget:?} expired"),
                };
            }
            Err(ServeError::Pipeline(msg)) | Err(ServeError::WorkerPanic(msg)) => {
                // Transient pipeline failure: bounded server-side retry
                // with jittered backoff before the client sees anything.
                if attempt < shared.cfg.max_retries {
                    attempt += 1;
                    shared.metrics.record_retry();
                    std::thread::sleep(jittered_backoff(
                        shared.cfg.retry_backoff,
                        attempt,
                        conn ^ id,
                    ));
                    continue;
                }
                break Frame::Error {
                    id,
                    code: WireErrorCode::Pipeline,
                    message: msg,
                };
            }
            Err(e) => {
                break Frame::Error {
                    id,
                    code: WireErrorCode::Internal,
                    message: e.to_string(),
                };
            }
        }
    };

    let shed = matches!(
        reply,
        Frame::Error {
            code: WireErrorCode::DeadlineExpired,
            ..
        }
    );
    match write_frame(stream, &reply) {
        Ok(()) => {
            if accepted {
                if shed {
                    shared.metrics.record_shed_expired();
                } else {
                    shared.metrics.record_answered();
                }
            }
            RequestEnd::Continue
        }
        Err(_) => {
            if accepted {
                shared.metrics.record_abandoned();
            }
            RequestEnd::Dead
        }
    }
}

/// Why a bounded frame read stopped without a frame.
#[derive(Debug)]
enum ReadEnd {
    /// EOF at a frame boundary: the peer hung up cleanly.
    Closed,
    /// No first byte within the idle bound (or the stop latch tripped
    /// while idle).
    Idle,
    /// First byte arrived but the frame dribbled past the frame timeout.
    SlowLoris,
    /// The codec rejected the bytes.
    Frame(FrameError),
    /// The socket failed.
    Io,
}

/// Tells the peer why its connection is being dropped, best-effort, and
/// counts the failure class.
fn answer_read_failure<S: NetStream>(shared: &ServerShared, stream: &mut S, id: u64, e: &ReadEnd) {
    match e {
        ReadEnd::Frame(err) => {
            shared.metrics.record_frame_error();
            let _ = write_frame(
                stream,
                &Frame::Error {
                    id,
                    code: if matches!(err, FrameError::TooLarge { .. }) {
                        WireErrorCode::TooLarge
                    } else {
                        WireErrorCode::Malformed
                    },
                    message: err.to_string(),
                },
            );
        }
        ReadEnd::SlowLoris => {
            shared.metrics.record_evicted_slow();
        }
        ReadEnd::Idle | ReadEnd::Closed | ReadEnd::Io => {}
    }
}

/// Reads one frame with the full timeout discipline: `idle_bound` for the
/// first byte, then [`NetServerConfig::frame_timeout`] for the rest of the
/// frame (slow-loris eviction), polling at `read_poll` granularity so the
/// stop latch is noticed promptly.
fn read_frame_bounded<S: NetStream>(
    shared: &ServerShared,
    stream: &mut S,
    idle_bound: Duration,
) -> std::result::Result<Frame, ReadEnd> {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_poll));
    // lint-ok(gated-clocks): idle/slow-loris eviction deadlines are the
    // feature of this loop.
    let idle_start = Instant::now();
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    let mut frame_start: Option<Instant> = None;

    // Phase 1: the header, with the idle bound before the first byte and
    // the frame bound after it.
    while filled < HEADER_LEN {
        let (_, rest) = header.split_at_mut(filled);
        match stream.read(rest) {
            Ok(0) => {
                return Err(if filled == 0 {
                    ReadEnd::Closed
                } else {
                    ReadEnd::SlowLoris
                });
            }
            Ok(n) => {
                filled += n;
                if frame_start.is_none() {
                    // lint-ok(gated-clocks): see above.
                    frame_start = Some(Instant::now());
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                match frame_start {
                    None => {
                        // lint-ok(ordering-justified): one-way stop latch.
                        if shared.stopping.load(Ordering::Relaxed)
                            || idle_start.elapsed() >= idle_bound
                        {
                            return Err(ReadEnd::Idle);
                        }
                    }
                    Some(start) => {
                        if start.elapsed() >= shared.cfg.frame_timeout {
                            return Err(ReadEnd::SlowLoris);
                        }
                    }
                }
            }
            Err(_) => return Err(ReadEnd::Io),
        }
    }
    let (kind, payload_len) = decode_header(&header).map_err(ReadEnd::Frame)?;
    if payload_len > shared.cfg.max_frame_bytes {
        return Err(ReadEnd::Frame(FrameError::TooLarge {
            len: payload_len as u64,
            max: shared.cfg.max_frame_bytes as u64,
        }));
    }

    // Phase 2: the payload, entirely under the frame bound.
    let deadline = frame_start.map(|s| s + shared.cfg.frame_timeout);
    let mut payload = vec![0u8; payload_len];
    let mut filled = 0usize;
    while filled < payload_len {
        let (_, rest) = payload.split_at_mut(filled);
        match stream.read(rest) {
            Ok(0) => return Err(ReadEnd::SlowLoris),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // lint-ok(gated-clocks): see above.
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return Err(ReadEnd::SlowLoris);
                }
            }
            Err(_) => return Err(ReadEnd::Io),
        }
    }
    let stored_crc = u32::from_le_bytes([
        *header.get(18).unwrap_or(&0),
        *header.get(19).unwrap_or(&0),
        *header.get(20).unwrap_or(&0),
        *header.get(21).unwrap_or(&0),
    ]);
    Frame::decode_body(kind, &payload, stored_crc).map_err(ReadEnd::Frame)
}

/// Deterministically jittered exponential backoff: base × 2^attempt scaled
/// by a factor in [0.5, 1.5) drawn from a splitmix-style hash of `salt` —
/// no RNG state, no clock, yet retry storms from many connections decohere.
fn jittered_backoff(base: Duration, attempt: usize, salt: u64) -> Duration {
    let mut z = salt
        .wrapping_add(attempt as u64)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    let jitter = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64;
    let scaled = base.saturating_mul(1u32 << attempt.min(10) as u32);
    Duration::from_nanos((scaled.as_nanos() as f64 * jitter) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jittered_backoff_grows_and_stays_bounded() {
        let base = Duration::from_millis(4);
        for attempt in 1..6 {
            for salt in 0..32u64 {
                let d = jittered_backoff(base, attempt, salt);
                let nominal = base * (1u32 << attempt);
                assert!(d >= nominal / 2, "attempt {attempt} salt {salt}: {d:?}");
                assert!(d < nominal * 3 / 2, "attempt {attempt} salt {salt}: {d:?}");
            }
        }
    }

    #[test]
    fn jitter_decoheres_different_salts() {
        let base = Duration::from_millis(10);
        let a = jittered_backoff(base, 1, 1);
        let b = jittered_backoff(base, 1, 2);
        assert_ne!(a, b);
        // Same salt replays the same backoff (determinism for the soak).
        assert_eq!(a, jittered_backoff(base, 1, 1));
    }
}
