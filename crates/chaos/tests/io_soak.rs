//! I/O chaos soak: the artifact store's durability claims under injected
//! torn writes, bit flips, and transient write errors.
//!
//! Two properties are on trial, matching the store's contract:
//!
//! 1. **No undetected corruption.** A load either fails (and quarantines)
//!    or returns bytes that were genuinely saved — never a silent mix.
//! 2. **Convergence under kills.** A journaled computation interrupted at
//!    arbitrary points (simulated kills and injected faults) still ends
//!    with exactly the records an uninterrupted run produces.
//!
//! The fault hook is process-global, so every test that installs one
//! serializes on [`HOOK_LOCK`] and scopes its plan to its own directory.

use adv_chaos::IoFaultPlan;
use adv_store::{install_fault_hook, Journal, StoreError};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

static HOOK_LOCK: Mutex<()> = Mutex::new(());

fn hook_lock() -> MutexGuard<'static, ()> {
    HOOK_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adv_chaos_io_soak_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Drops the installed hook when the test ends, pass or fail.
struct HookGuard;
impl Drop for HookGuard {
    fn drop(&mut self) {
        install_fault_hook(None);
    }
}

#[test]
fn artifact_soak_no_undetected_corruption() {
    let _serial = hook_lock();
    let dir = scratch("artifacts");
    let plan = Arc::new(
        IoFaultPlan::new(0xD15C_FA17)
            .rates(0.15, 0.15, 0.10)
            .under(&dir),
    );
    install_fault_hook(Some(plan.clone()));
    let _guard = HookGuard;

    // Rotate a handful of paths so loads also exercise files whose last
    // write was rounds ago, and remember every payload ever saved per path.
    let mut saved: Vec<HashSet<Vec<u8>>> = vec![HashSet::new(); 4];
    let mut detected = 0u64;
    for round in 0u64..400 {
        let slot = (round % 4) as usize;
        let path = dir.join(format!("artifact_{slot}.bin"));
        let payload: Vec<u8> = (0..64)
            .map(|i| (round as u8).wrapping_mul(31).wrapping_add(i))
            .collect();
        match adv_store::save_artifact(&path, &payload) {
            Ok(()) => {
                // Reported success — though a silent fault may have landed.
                saved[slot].insert(payload);
            }
            Err(StoreError::InjectedWriteFault { .. }) => {}
            Err(e) => panic!("unexpected save error: {e}"),
        }
        match adv_store::load_artifact(&path) {
            Ok(bytes) => assert!(
                saved[slot].contains(&bytes),
                "round {round}: load returned bytes that were never saved"
            ),
            Err(StoreError::Corrupt { .. }) => {
                // Detected — exactly what the envelope is for. The store
                // quarantined the file; the path is free to be rewritten.
                detected += 1;
            }
            Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                // First write to this slot was torn and then quarantined.
            }
            Err(e) => panic!("unexpected load error: {e}"),
        }
    }

    let stats = plan.stats();
    assert!(
        stats.injected() > 30,
        "soak injected too few faults to mean anything: {stats:?}"
    );
    // Every silent fault that survived to a load was caught by validation.
    assert!(
        detected > 0,
        "with {} silent faults injected, some loads must detect corruption",
        stats.torn + stats.bit_flips
    );
}

#[test]
fn journal_soak_converges_despite_kills_and_faults() {
    let _serial = hook_lock();
    let dir = scratch("journal");
    let plan = Arc::new(
        IoFaultPlan::new(0x4B11_5EED)
            .rates(0.08, 0.04, 0.08)
            .under(&dir),
    );
    install_fault_hook(Some(plan.clone()));
    let _guard = HookGuard;

    // The work: 40 deterministic records. The reference is what an
    // uninterrupted, fault-free run would journal.
    const TOTAL: usize = 40;
    let record = |i: usize| -> Vec<u8> { (i as u64 * i as u64).to_le_bytes().to_vec() };
    let path = dir.join("work.jrnl");
    let context = 0x00C0_FFEE;

    let mut finished = false;
    'attempts: for attempt in 0u64..400 {
        // Each attempt is one process life: open (recovering the valid
        // prefix), do some work, then "die" — at an attempt-derived point,
        // or earlier if a transient fault kills an append.
        let mut journal = match Journal::open(&path, context) {
            Ok(j) => j,
            Err(_) => continue,
        };
        if journal.len() >= TOTAL {
            finished = true;
            break;
        }
        let kill_after = 1 + (attempt % 7) as usize;
        for step in 0..kill_after {
            let i = journal.len();
            if i >= TOTAL {
                break;
            }
            if journal.append(&record(i)).is_err() {
                // Transient write error: this life ends here.
                continue 'attempts;
            }
            let _ = step;
        }
    }
    assert!(finished, "journal never reached {TOTAL} records");

    // Final state must be byte-identical to the uninterrupted run.
    let journal = Journal::open(&path, context).unwrap();
    assert_eq!(journal.len(), TOTAL);
    for (i, rec) in journal.records().iter().enumerate() {
        assert_eq!(rec, &record(i), "record {i} diverged");
    }
    assert!(
        plan.stats().injected() > 0,
        "soak ran without injecting any faults: {:?}",
        plan.stats()
    );
}

#[test]
fn checkpointed_training_converges_bit_identically_under_write_faults() {
    let _serial = hook_lock();
    let dir = scratch("training");

    // Reference: an uninterrupted, fault-free training run.
    use adv_nn::optim::Sgd;
    use adv_nn::train::{fit_classifier, TrainConfig};
    use adv_nn::{LayerSpec, Sequential};
    use adv_tensor::{Shape, Tensor};

    let specs = [
        LayerSpec::Dense {
            inputs: 8,
            outputs: 8,
        },
        LayerSpec::Activation(adv_nn::Activation::Relu),
        LayerSpec::Dense {
            inputs: 8,
            outputs: 2,
        },
    ];
    let images = Tensor::from_fn(Shape::new(vec![12, 8]), |i| (i % 9) as f32 / 9.0);
    let labels: Vec<usize> = (0..12).map(|i| i % 2).collect();
    let cfg = |ckpt| TrainConfig {
        epochs: 6,
        batch_size: 4,
        seed: 11,
        label_smoothing: 0.0,
        verbose: false,
        checkpoint: ckpt,
    };
    let mut clean_net = Sequential::from_specs(&specs, 5).unwrap();
    let mut opt = Sgd::new(0.05, 0.0);
    fit_classifier(&mut clean_net, &mut opt, &images, &labels, &cfg(None)).unwrap();

    // Chaos run: checkpoint every epoch while every checkpoint write risks
    // a silent tear or bit flip. Re-run the fit repeatedly (each run
    // resumes from the last checkpoint that survived validation); the final
    // weights must match the fault-free run bit for bit.
    let plan = Arc::new(IoFaultPlan::new(0x7EA2).rates(0.25, 0.15, 0.10).under(&dir));
    install_fault_hook(Some(plan.clone()));
    let _guard = HookGuard;

    let ckpt = adv_nn::CheckpointCfg::every_epoch(dir.join("fit.ckpt"));
    let mut chaos_net = Sequential::from_specs(&specs, 5).unwrap();
    let mut result = None;
    for _attempt in 0..50 {
        let mut net = Sequential::from_specs(&specs, 5).unwrap();
        let mut opt = Sgd::new(0.05, 0.0);
        match fit_classifier(
            &mut net,
            &mut opt,
            &images,
            &labels,
            &cfg(Some(ckpt.clone())),
        ) {
            Ok(_) => {
                chaos_net = net;
                result = Some(());
                break;
            }
            Err(e) => {
                // A transient fault aborted this run mid-fit — like a kill,
                // the next attempt resumes from the last valid checkpoint.
                let _ = e;
            }
        }
    }
    install_fault_hook(None);
    assert!(result.is_some(), "training never completed under chaos");

    for (a, b) in clean_net.params().iter().zip(chaos_net.params()) {
        assert_eq!(
            a.value.as_slice(),
            b.value.as_slice(),
            "weights diverged from the fault-free run"
        );
    }
}
