//! The runtime fault injector.
//!
//! [`FaultInjector::decide`] draws the next deterministic decision for a
//! site; [`FaultInjector::apply`] additionally *executes* it (sleeps the
//! delay, returns the injected error, or panics). Decisions are a pure
//! function of `(seed, site, hit index)`: the per-site hit counter is the
//! only mutable state, so concurrent callers may interleave *which thread*
//! receives a given decision, but the decision sequence per site — and
//! therefore the multiset of injected faults — is fixed by the plan.

use crate::plan::{site_hash, FaultPlan, SiteFaults};
use crate::FaultError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What the injector decided for one hit of a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Proceed normally.
    None,
    /// Stall for the site's configured delay before proceeding.
    Delay(Duration),
    /// Fail with [`FaultError::Injected`].
    Error,
    /// Panic with a [`crate::PANIC_MARKER`]-prefixed payload.
    Panic,
}

/// Counts of what a [`FaultInjector`] has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Total decisions drawn across all sites.
    pub decisions: u64,
    /// Injected delays.
    pub delays: u64,
    /// Injected errors.
    pub errors: u64,
    /// Injected panics.
    pub panics: u64,
}

#[derive(Debug)]
struct SiteState {
    spec: SiteFaults,
    hits: AtomicU64,
    injected: AtomicU64,
}

/// Evaluates a [`FaultPlan`] at runtime. Shared across threads behind an
/// `Arc`; see the module docs for the determinism contract.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    sites: HashMap<String, SiteState>,
    delays: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    decisions: AtomicU64,
}

impl FaultInjector {
    /// Builds an injector from a validated plan.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultError::InvalidPlan`] from [`FaultPlan::validate`].
    pub fn new(plan: FaultPlan) -> Result<FaultInjector, FaultError> {
        plan.validate()?;
        let seed = plan.seed();
        let sites = plan
            .sites()
            .iter()
            .map(|spec| {
                (
                    spec.site().to_string(),
                    SiteState {
                        spec: spec.clone(),
                        hits: AtomicU64::new(0),
                        injected: AtomicU64::new(0),
                    },
                )
            })
            .collect();
        Ok(FaultInjector {
            seed,
            sites,
            delays: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            decisions: AtomicU64::new(0),
        })
    }

    /// The no-fault injector: knows no sites, injects nothing. This is the
    /// serving engine's default — the hot path pays one `Option` branch and
    /// never reaches the injector at all.
    pub fn disabled() -> FaultInjector {
        FaultInjector {
            seed: 0,
            sites: HashMap::new(),
            delays: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            decisions: AtomicU64::new(0),
        }
    }

    /// `true` when no site can ever inject.
    pub fn is_noop(&self) -> bool {
        self.sites.is_empty()
    }

    /// Draws the next decision for `site` and returns it *without* acting
    /// on it. Unknown sites always return [`FaultAction::None`] and draw
    /// nothing.
    pub fn decide(&self, site: &str) -> (FaultAction, u64) {
        let Some(state) = self.sites.get(site) else {
            return (FaultAction::None, 0);
        };
        let hit = state.hits.fetch_add(1, Ordering::Relaxed);
        self.decisions.fetch_add(1, Ordering::Relaxed);
        if let Some(max) = state.spec.max_faults() {
            // The cap check races the increment below under concurrent
            // callers, so a site can briefly overshoot its cap by at most
            // one fault per concurrent thread; single-threaded replays (and
            // the deterministic tests) are exact.
            if state.injected.load(Ordering::Relaxed) >= max {
                return (FaultAction::None, hit);
            }
        }
        let draw = unit(self.seed, site_hash(site), hit);
        let spec = &state.spec;
        let action = if draw < spec.panic_rate() {
            FaultAction::Panic
        } else if draw < spec.panic_rate() + spec.error_rate() {
            FaultAction::Error
        } else if draw < spec.panic_rate() + spec.error_rate() + spec.delay_rate() {
            FaultAction::Delay(spec.delay())
        } else {
            FaultAction::None
        };
        if action != FaultAction::None {
            state.injected.fetch_add(1, Ordering::Relaxed);
            let counter = match action {
                FaultAction::Delay(_) => &self.delays,
                FaultAction::Error => &self.errors,
                _ => &self.panics,
            };
            // lint-ok(ordering-justified): statistics counter, atomicity
            // only.
            counter.fetch_add(1, Ordering::Relaxed);
        }
        (action, hit)
    }

    /// Draws and *executes* the next decision for `site`: sleeps injected
    /// delays, panics injected panics.
    ///
    /// # Errors
    ///
    /// [`FaultError::Injected`] when the decision is [`FaultAction::Error`].
    ///
    /// # Panics
    ///
    /// When the decision is [`FaultAction::Panic`] — that is the point: the
    /// caller's supervision layer is what is under test.
    pub fn apply(&self, site: &str) -> Result<(), FaultError> {
        match self.decide(site) {
            (FaultAction::None, _) => Ok(()),
            (FaultAction::Delay(d), _) => {
                std::thread::sleep(d);
                Ok(())
            }
            (FaultAction::Error, hit) => Err(FaultError::Injected {
                site: site.to_string(),
                hit,
            }),
            (FaultAction::Panic, hit) => {
                // lint-ok(no-panic-lib): deliberate — injecting panics into
                // supervised code is this crate's purpose; the marker lets
                // handlers distinguish planned faults from real bugs.
                panic!("{} at {site} (hit {hit})", crate::PANIC_MARKER)
            }
        }
    }

    /// What has been injected so far.
    pub fn stats(&self) -> FaultStats {
        // lint-ok(ordering-justified): monotone statistics counters read
        // for reporting; a momentarily stale value is acceptable.
        let load = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        FaultStats {
            decisions: load(&self.decisions),
            delays: load(&self.delays),
            errors: load(&self.errors),
            panics: load(&self.panics),
        }
    }
}

/// SplitMix64 finalizer — one multiply-xor avalanche pass.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic unit draw for `(seed, site, n)`, uniform in `[0, 1)`.
pub(crate) fn unit(seed: u64, site: u64, n: u64) -> f64 {
    let mixed = splitmix(seed ^ splitmix(site.wrapping_add(n.wrapping_mul(0x2545_f491_4f6c_dd1d))));
    (mixed >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SiteFaults;

    fn seeded(seed: u64, site: SiteFaults) -> FaultInjector {
        FaultInjector::new(FaultPlan::new(seed).with(site)).unwrap()
    }

    #[test]
    fn disabled_injector_is_noop() {
        let inj = FaultInjector::disabled();
        assert!(inj.is_noop());
        for _ in 0..100 {
            assert_eq!(inj.decide("anything").0, FaultAction::None);
            inj.apply("anything").unwrap();
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn decisions_replay_identically_for_the_same_seed() {
        let spec = SiteFaults::at("s")
            .panics(0.2)
            .errors(0.3)
            .delays(0.2, Duration::from_micros(5));
        let a = seeded(9, spec.clone());
        let b = seeded(9, spec.clone());
        let c = seeded(10, spec);
        let seq = |inj: &FaultInjector| -> Vec<FaultAction> {
            (0..200).map(|_| inj.decide("s").0).collect()
        };
        let sa = seq(&a);
        assert_eq!(sa, seq(&b), "same seed must replay bit-for-bit");
        assert_ne!(sa, seq(&c), "different seed must differ");
        assert!(sa.contains(&FaultAction::Panic));
        assert!(sa.contains(&FaultAction::Error));
        assert!(sa.iter().any(|&x| matches!(x, FaultAction::Delay(_))));
        assert!(sa.contains(&FaultAction::None));
    }

    #[test]
    fn sites_draw_independent_sequences() {
        let plan = FaultPlan::new(4)
            .with(SiteFaults::at("a").errors(0.5))
            .with(SiteFaults::at("b").errors(0.5));
        let inj = FaultInjector::new(plan).unwrap();
        let sa: Vec<FaultAction> = (0..64).map(|_| inj.decide("a").0).collect();
        let sb: Vec<FaultAction> = (0..64).map(|_| inj.decide("b").0).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn rate_one_always_fires_and_limit_caps_it() {
        let inj = seeded(1, SiteFaults::at("s").errors(1.0).limit(3));
        let mut injected = 0;
        for _ in 0..10 {
            if inj.apply("s").is_err() {
                injected += 1;
            }
        }
        assert_eq!(injected, 3, "site must go quiet after its cap");
        assert_eq!(inj.stats().errors, 3);
    }

    #[test]
    fn apply_executes_each_action_kind() {
        let inj = seeded(2, SiteFaults::at("s").errors(1.0));
        assert!(matches!(
            inj.apply("s"),
            Err(FaultError::Injected { hit: 0, .. })
        ));

        let inj = seeded(2, SiteFaults::at("s").panics(1.0));
        let caught = std::panic::catch_unwind(|| inj.apply("s"));
        let payload = caught.unwrap_err();
        let text = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(text.starts_with(crate::PANIC_MARKER), "{text}");
        assert_eq!(inj.stats().panics, 1);

        let inj = seeded(
            2,
            SiteFaults::at("s").delays(1.0, Duration::from_micros(50)),
        );
        inj.apply("s").unwrap();
        assert_eq!(inj.stats().delays, 1);
    }

    #[test]
    fn approximate_rates_converge() {
        let inj = seeded(77, SiteFaults::at("s").errors(0.25));
        let n = 4000;
        let errors = (0..n)
            .filter(|_| inj.decide("s").0 == FaultAction::Error)
            .count();
        let rate = errors as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "observed error rate {rate}");
    }

    #[test]
    fn invalid_plan_is_rejected() {
        let plan = FaultPlan::new(1).with(SiteFaults::at("s").panics(2.0));
        assert!(matches!(
            FaultInjector::new(plan),
            Err(FaultError::InvalidPlan { .. })
        ));
    }
}
