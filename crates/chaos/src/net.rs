//! Seeded network fault plans for the TCP front door.
//!
//! [`NetFaultPlan`] is the wire-level sibling of [`crate::IoFaultPlan`]: a
//! pure decision engine that, for every socket read or write, draws whether
//! the operation proceeds intact, is torn short, has one bit flipped, stalls
//! for a while, or the connection drops mid-operation. The plan knows
//! nothing about sockets — `adv-net` owns the `FaultyStream` wrapper that
//! consumes these decisions — which keeps the dependency arrow pointing one
//! way (`adv-net → adv-chaos`) with no cycle through `adv-serve`.
//!
//! Determinism contract: the decision for connection `conn`'s `n`-th
//! read/write is a pure function of `(seed, direction, conn, n)`. Two runs
//! with the same seed and the same per-connection operation counts replay
//! the same fault schedule regardless of thread interleaving, which is what
//! lets the net-chaos soak pin its seeds in CI.

use crate::plan::site_hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What a [`NetFaultPlan`] decided for one socket operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Proceed normally.
    None,
    /// Write only the first `keep` bytes, then sever the connection — a
    /// torn frame on the peer's wire.
    Torn {
        /// Bytes that still make it out (strictly less than the op length).
        keep: usize,
    },
    /// Flip one bit of the buffer before it goes out.
    BitFlip {
        /// The bit index (into the byte buffer) to flip.
        bit: usize,
    },
    /// Stall the operation before performing it (slow-network / slow-loris
    /// pressure on the peer's timeouts).
    Stall {
        /// How long to stall.
        delay: Duration,
    },
    /// Sever the connection instead of performing the operation.
    Disconnect,
}

/// A snapshot of what a [`NetFaultPlan`] has injected so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetFaultStats {
    /// Socket operations the plan saw.
    pub ops: u64,
    /// Writes torn short.
    pub torn: u64,
    /// Buffers with one bit flipped.
    pub bit_flips: u64,
    /// Stalled operations.
    pub stalls: u64,
    /// Severed connections.
    pub disconnects: u64,
}

impl NetFaultStats {
    /// Total injected faults of any kind.
    pub fn injected(&self) -> u64 {
        self.torn + self.bit_flips + self.stalls + self.disconnects
    }
}

/// A deterministic socket-fault schedule. See the module docs.
#[derive(Debug)]
pub struct NetFaultPlan {
    seed: u64,
    torn_rate: f64,
    flip_rate: f64,
    stall_rate: f64,
    disconnect_rate: f64,
    stall: Duration,
    ops: AtomicU64,
    torn: AtomicU64,
    flips: AtomicU64,
    stalls: AtomicU64,
    disconnects: AtomicU64,
}

impl NetFaultPlan {
    /// A quiet plan under `seed`; add fault rates with
    /// [`rates`](Self::rates).
    pub fn new(seed: u64) -> NetFaultPlan {
        NetFaultPlan {
            seed,
            torn_rate: 0.0,
            flip_rate: 0.0,
            stall_rate: 0.0,
            disconnect_rate: 0.0,
            stall: Duration::from_millis(5),
            ops: AtomicU64::new(0),
            torn: AtomicU64::new(0),
            flips: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
        }
    }

    /// Sets the per-operation probabilities of a torn write, a bit flip, a
    /// stall, and a disconnect. Rates are clamped to `[0, 1]` and their sum
    /// normalized to at most `1`, mirroring [`crate::IoFaultPlan::rates`].
    #[must_use]
    pub fn rates(mut self, torn: f64, flip: f64, stall: f64, disconnect: f64) -> NetFaultPlan {
        let clamp = |r: f64| {
            if r.is_finite() {
                r.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        self.torn_rate = clamp(torn);
        self.flip_rate = clamp(flip);
        self.stall_rate = clamp(stall);
        self.disconnect_rate = clamp(disconnect);
        let total = self.torn_rate + self.flip_rate + self.stall_rate + self.disconnect_rate;
        if total > 1.0 {
            self.torn_rate /= total;
            self.flip_rate /= total;
            self.stall_rate /= total;
            self.disconnect_rate /= total;
        }
        self
    }

    /// Sets the stall duration injected by [`NetFault::Stall`].
    #[must_use]
    pub fn stall_for(mut self, stall: Duration) -> NetFaultPlan {
        self.stall = stall;
        self
    }

    /// A randomized low-rate plan fully derived from `seed`: each fault
    /// kind gets a rate in `[0, 0.03)` and stalls run up to ~20ms. The
    /// net-chaos soak's workhorse — a different seed is a different chaos
    /// schedule, the same seed replays bit-for-bit.
    pub fn randomized(seed: u64) -> NetFaultPlan {
        let mix = |k: u64| crate::inject::unit(seed, site_hash("net/randomized"), k);
        let stall_ms = 2 + (mix(4) * 18.0) as u64;
        NetFaultPlan::new(seed)
            .rates(0.03 * mix(0), 0.03 * mix(1), 0.03 * mix(2), 0.03 * mix(3))
            .stall_for(Duration::from_millis(stall_ms))
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws the decision for connection `conn`'s `op`-th **write** of
    /// `len` bytes. Torn writes keep strictly fewer than `len` bytes; bit
    /// flips land inside the buffer.
    pub fn on_write(&self, conn: u64, op: u64, len: usize) -> NetFault {
        self.draw("net/write", conn, op, len, true)
    }

    /// Draws the decision for connection `conn`'s `op`-th **read**. Reads
    /// cannot tear or flip bytes the peer already framed, so torn/flip
    /// draws degrade to stalls on the read side.
    pub fn on_read(&self, conn: u64, op: u64) -> NetFault {
        self.draw("net/read", conn, op, 0, false)
    }

    fn draw(&self, site: &str, conn: u64, op: u64, len: usize, is_write: bool) -> NetFault {
        self.ops.fetch_add(1, Ordering::Relaxed);
        // Mix the connection id into the seed so connections draw
        // independent sequences; the draw stays a pure function of
        // (seed, site, conn, op).
        let conn_seed = self.seed ^ conn.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let draw = crate::inject::unit(conn_seed, site_hash(site), op);
        let aux = crate::inject::unit(conn_seed, site_hash("net/aux"), op);
        let fault = if draw < self.torn_rate {
            if is_write && len > 0 {
                NetFault::Torn {
                    keep: ((aux * len as f64) as usize).min(len - 1),
                }
            } else {
                NetFault::Stall { delay: self.stall }
            }
        } else if draw < self.torn_rate + self.flip_rate {
            if is_write && len > 0 {
                NetFault::BitFlip {
                    bit: (aux * (len * 8) as f64) as usize,
                }
            } else {
                NetFault::Stall { delay: self.stall }
            }
        } else if draw < self.torn_rate + self.flip_rate + self.stall_rate {
            NetFault::Stall { delay: self.stall }
        } else if draw < self.torn_rate + self.flip_rate + self.stall_rate + self.disconnect_rate {
            NetFault::Disconnect
        } else {
            NetFault::None
        };
        match fault {
            NetFault::None => {}
            NetFault::Torn { .. } => {
                self.torn.fetch_add(1, Ordering::Relaxed);
            }
            NetFault::BitFlip { .. } => {
                self.flips.fetch_add(1, Ordering::Relaxed);
            }
            NetFault::Stall { .. } => {
                self.stalls.fetch_add(1, Ordering::Relaxed);
            }
            NetFault::Disconnect => {
                self.disconnects.fetch_add(1, Ordering::Relaxed);
            }
        }
        fault
    }

    /// What the plan has injected so far.
    pub fn stats(&self) -> NetFaultStats {
        // lint-ok(ordering-justified): monotone statistics counters read
        // for reporting; a momentarily stale value is acceptable.
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        NetFaultStats {
            ops: load(&self.ops),
            torn: load(&self.torn),
            bit_flips: load(&self.flips),
            stalls: load(&self.stalls),
            disconnects: load(&self.disconnects),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(plan: &NetFaultPlan, conn: u64, n: u64) -> Vec<NetFault> {
        (0..n)
            .map(|op| plan.on_write(conn, op, 64))
            .chain((0..n).map(|op| plan.on_read(conn, op)))
            .collect()
    }

    #[test]
    fn schedule_is_seed_deterministic() {
        let mk = || NetFaultPlan::new(11).rates(0.15, 0.15, 0.15, 0.15);
        let a = schedule(&mk(), 3, 200);
        let b = schedule(&mk(), 3, 200);
        assert_eq!(a, b, "same seed + conn must replay bit-for-bit");
        let c = schedule(&NetFaultPlan::new(12).rates(0.15, 0.15, 0.15, 0.15), 3, 200);
        assert_ne!(a, c, "different seed must differ");
    }

    #[test]
    fn connections_draw_independent_sequences() {
        let plan = NetFaultPlan::new(5).rates(0.25, 0.25, 0.25, 0.25);
        let a: Vec<NetFault> = (0..64).map(|op| plan.on_write(1, op, 64)).collect();
        let b: Vec<NetFault> = (0..64).map(|op| plan.on_write(2, op, 64)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn torn_keep_is_strictly_short_and_flip_in_range() {
        let plan = NetFaultPlan::new(9).rates(0.5, 0.5, 0.0, 0.0);
        for op in 0..200 {
            for len in [1usize, 2, 22, 640] {
                match plan.on_write(0, op, len) {
                    NetFault::Torn { keep } => assert!(keep < len, "keep={keep} len={len}"),
                    NetFault::BitFlip { bit } => assert!(bit < len * 8, "bit={bit} len={len}"),
                    NetFault::None => {}
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn reads_degrade_structural_faults_to_stalls() {
        let plan = NetFaultPlan::new(2).rates(0.5, 0.5, 0.0, 0.0);
        for op in 0..200 {
            assert!(matches!(
                plan.on_read(0, op),
                NetFault::None | NetFault::Stall { .. }
            ));
        }
    }

    #[test]
    fn quiet_plan_injects_nothing_and_stats_count() {
        let quiet = NetFaultPlan::new(1);
        for op in 0..50 {
            assert_eq!(quiet.on_write(0, op, 10), NetFault::None);
        }
        assert_eq!(quiet.stats().injected(), 0);
        assert_eq!(quiet.stats().ops, 50);

        let loud = NetFaultPlan::new(1).rates(1.0, 0.0, 0.0, 0.0);
        for op in 0..50 {
            loud.on_write(0, op, 10);
        }
        assert_eq!(loud.stats().torn, 50);
    }

    #[test]
    fn randomized_plans_are_seed_deterministic() {
        let a = schedule(&NetFaultPlan::randomized(42), 0, 400);
        let b = schedule(&NetFaultPlan::randomized(42), 0, 400);
        let c = schedule(&NetFaultPlan::randomized(43), 0, 400);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
