//! adv-chaos: deterministic fault injection for the serving stack.
//!
//! Carlini & Wagner's break of MagNet (arXiv:1711.08478) made the case that
//! a defense's robustness claims are only as good as the adversarial
//! conditions they are tested under. This crate applies the same discipline
//! to the *serving layer*: instead of hoping the engine survives worker
//! panics, pipeline errors, and stalls, we inject them — deterministically,
//! from a seed — and assert the engine's contracts (exactly-once responses,
//! supervised respawn, graceful degradation) under thousands of randomized
//! fault schedules.
//!
//! The crate has three pieces:
//!
//! * [`FaultPlan`] — a seeded, declarative description of *what* to inject
//!   *where*: per named site, a panic/error/delay probability, the delay
//!   duration, and an optional cap on total injected faults.
//! * [`FaultInjector`] — the runtime evaluator. Each call to
//!   [`FaultInjector::decide`] at a site draws the site's next decision;
//!   decisions are a pure function of `(seed, site, hit index)`, so the
//!   multiset of injected faults is reproducible regardless of thread
//!   interleaving. [`FaultInjector::disabled`] is the zero-cost default the
//!   serving engine runs with in production: no sites, no drawing, a single
//!   branch on an `Option`.
//! * [`FaultyDefense`] — an [`adv_magnet::DefensePipeline`] wrapper around
//!   [`adv_magnet::MagnetDefense`] exposing per-stage injection points
//!   (detector scoring, reformer, classifier). With a no-op injector its
//!   verdicts are bit-identical to the unwrapped defense.
//! * [`IoFaultPlan`] — the same discipline for the durable artifact store:
//!   an [`adv_store::IoFaultHook`] injecting torn writes, bit flips, and
//!   transient write errors into `adv-store`'s write paths, scoped to a
//!   directory and fully determined by its seed.
//! * [`NetFaultPlan`] — the wire-level variant for the TCP front door:
//!   per-socket-operation decisions (torn frames, bit flips, stalled reads,
//!   mid-request disconnects) consumed by `adv-net`'s stream wrapper.
//!
//! Injected panics carry the [`PANIC_MARKER`] prefix so supervision code
//! and test assertions can tell a planned fault from a real bug.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod faulty;
mod inject;
mod io;
mod net;
mod plan;

pub use faulty::{FaultyDefense, SITE_CLASSIFY, SITE_DETECT, SITE_REFORM};
pub use inject::{FaultAction, FaultInjector, FaultStats};
pub use io::{IoFaultPlan, IoFaultStats};
pub use net::{NetFault, NetFaultPlan, NetFaultStats};
pub use plan::{FaultPlan, SiteFaults};

/// Prefix of every panic payload this crate injects.
pub const PANIC_MARKER: &str = "adv-chaos: injected panic";

/// Errors surfaced by the fault-injection layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// A deliberately injected fault (the injector's `Error` action).
    Injected {
        /// The site that drew the fault.
        site: String,
        /// The site's 0-based hit index that drew it.
        hit: u64,
    },
    /// A [`FaultPlan`] with out-of-range or over-committed probabilities.
    InvalidPlan {
        /// The offending site.
        site: String,
        /// What is wrong with it.
        message: String,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::Injected { site, hit } => {
                write!(f, "injected fault at {site} (hit {hit})")
            }
            FaultError::InvalidPlan { site, message } => {
                write!(f, "invalid fault plan for site {site}: {message}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FaultError>;
