//! A fault-wrapped defense pipeline.
//!
//! [`FaultyDefense`] decorates a shared [`MagnetDefense`] with per-stage
//! injection points so chaos tests can fail exactly one stage of the
//! pipeline: detector scoring ([`SITE_DETECT`]), the reformer
//! ([`SITE_REFORM`]), or the protected classifier ([`SITE_CLASSIFY`]).
//! The stage structure replicates `MagnetDefense::classify_timed` operation
//! for operation, so with a no-op injector the verdicts are bit-identical
//! to the unwrapped defense (pinned by this module's tests).

use crate::FaultInjector;
use adv_magnet::{
    DefensePipeline, DefenseScheme, MagnetDefense, MagnetError, StageTimings, Verdict,
};
use adv_tensor::Tensor;
use std::sync::Arc;

/// Injection site evaluated before detector scoring.
pub const SITE_DETECT: &str = "magnet/detect";
/// Injection site evaluated before the reformer pass.
pub const SITE_REFORM: &str = "magnet/reform";
/// Injection site evaluated before the classifier forward pass.
pub const SITE_CLASSIFY: &str = "magnet/classify";

/// [`MagnetDefense`] with deterministic faults between its stages.
#[derive(Debug)]
pub struct FaultyDefense {
    inner: Arc<MagnetDefense>,
    injector: Arc<FaultInjector>,
}

impl FaultyDefense {
    /// Wraps `inner` so every pipeline stage consults `injector` first.
    pub fn new(inner: Arc<MagnetDefense>, injector: Arc<FaultInjector>) -> FaultyDefense {
        FaultyDefense { inner, injector }
    }

    /// The wrapped defense.
    pub fn inner(&self) -> &Arc<MagnetDefense> {
        &self.inner
    }

    /// The injector driving this wrapper's stages.
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// Applies the injector at `site`, mapping injected errors into the
    /// defense's error type (panics and delays pass through unchanged).
    fn inject(&self, site: &'static str) -> adv_magnet::Result<()> {
        self.injector.apply(site).map_err(|e| MagnetError::Stage {
            stage: site.to_string(),
            message: e.to_string(),
        })
    }
}

impl DefensePipeline for FaultyDefense {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn classify_batch(
        &self,
        x: &Tensor,
        scheme: DefenseScheme,
    ) -> adv_magnet::Result<(Vec<Verdict>, StageTimings)> {
        let n = x.shape().dim(0);
        let mut timings = StageTimings::default();

        // lint-ok(gated-clocks): StageTimings is part of the pipeline API;
        // the clock read is the feature (same contract as classify_timed).
        let t0 = std::time::Instant::now();
        let detected = match scheme {
            DefenseScheme::DetectorOnly | DefenseScheme::Full => {
                self.inject(SITE_DETECT)?;
                let d = self.inner.detect(x)?;
                timings.detect = t0.elapsed();
                d
            }
            _ => vec![false; n],
        };

        // lint-ok(gated-clocks): see above — the stage timing is the API.
        let t1 = std::time::Instant::now();
        let input = match scheme {
            DefenseScheme::ReformerOnly | DefenseScheme::Full => {
                self.inject(SITE_REFORM)?;
                let r = self.inner.reform(x)?;
                timings.reform = t1.elapsed();
                r
            }
            _ => x.clone(),
        };

        // lint-ok(gated-clocks): see above — the stage timing is the API.
        let t2 = std::time::Instant::now();
        self.inject(SITE_CLASSIFY)?;
        let preds = self.inner.classifier().predict_shared(&input)?;
        timings.classify = t2.elapsed();

        let verdicts = detected
            .into_iter()
            .zip(preds)
            .map(|(d, p)| {
                if d {
                    Verdict::Detected
                } else {
                    Verdict::Classified(p)
                }
            })
            .collect();
        Ok((verdicts, timings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultError, FaultPlan, SiteFaults};
    use adv_magnet::arch::{mnist_ae_two, mnist_classifier};
    use adv_magnet::{Autoencoder, Detector, ReconstructionDetector, ReconstructionNorm};
    use adv_nn::loss::ReconstructionLoss;
    use adv_nn::Sequential;
    use adv_tensor::Shape;

    fn toy_defense() -> Arc<MagnetDefense> {
        let ae = Autoencoder::new(
            &mnist_ae_two(1, 3),
            ReconstructionLoss::MeanSquaredError,
            0.0,
            1,
        )
        .unwrap();
        let classifier = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 2).unwrap();
        let det: Box<dyn Detector> = Box::new(ReconstructionDetector::new(
            ae.clone(),
            ReconstructionNorm::L2,
        ));
        let mut d = MagnetDefense::new("chaos-toy", vec![det], ae, classifier);
        d.calibrate_detectors(&batch(64), 0.05).unwrap();
        Arc::new(d)
    }

    fn batch(n: usize) -> Tensor {
        Tensor::from_fn(Shape::nchw(n, 1, 8, 8), |i| ((i * 7) % 11) as f32 / 11.0)
    }

    #[test]
    fn noop_injector_is_bit_identical_to_unwrapped_defense() {
        let defense = toy_defense();
        let faulty = FaultyDefense::new(defense.clone(), Arc::new(FaultInjector::disabled()));
        let x = batch(10);
        for scheme in DefenseScheme::ALL {
            let serial = defense.classify(&x, scheme).unwrap();
            let (wrapped, _) = faulty.classify_batch(&x, scheme).unwrap();
            assert_eq!(wrapped, serial, "{scheme:?}");
        }
    }

    #[test]
    fn injected_stage_error_surfaces_as_stage_error() {
        let defense = toy_defense();
        let plan = FaultPlan::new(3).with(SiteFaults::at(SITE_REFORM).errors(1.0));
        let faulty = FaultyDefense::new(defense, Arc::new(FaultInjector::new(plan).unwrap()));
        let err = faulty
            .classify_batch(&batch(2), DefenseScheme::Full)
            .unwrap_err();
        match err {
            MagnetError::Stage { stage, .. } => assert_eq!(stage, SITE_REFORM),
            other => panic!("expected Stage error, got {other}"),
        }
    }

    #[test]
    fn faults_on_skipped_stages_do_not_fire() {
        let defense = toy_defense();
        let plan = FaultPlan::new(3).with(SiteFaults::at(SITE_REFORM).errors(1.0));
        let faulty =
            FaultyDefense::new(defense.clone(), Arc::new(FaultInjector::new(plan).unwrap()));
        // DetectorOnly never runs the reformer, so the reform site is never
        // consulted and the verdicts match the clean pipeline.
        let x = batch(4);
        let (got, _) = faulty
            .classify_batch(&x, DefenseScheme::DetectorOnly)
            .unwrap();
        assert_eq!(
            got,
            defense.classify(&x, DefenseScheme::DetectorOnly).unwrap()
        );
        assert_eq!(faulty.injector().stats().errors, 0);
    }

    #[test]
    fn injected_panic_carries_the_marker() {
        let defense = toy_defense();
        let plan = FaultPlan::new(5).with(SiteFaults::at(SITE_CLASSIFY).panics(1.0).limit(1));
        let faulty = FaultyDefense::new(defense, Arc::new(FaultInjector::new(plan).unwrap()));
        let x = batch(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            faulty.classify_batch(&x, DefenseScheme::None)
        }));
        let payload = caught.unwrap_err();
        let text = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(text.starts_with(crate::PANIC_MARKER), "{text}");
        // The cap is spent: the next batch goes through cleanly.
        faulty.classify_batch(&x, DefenseScheme::None).unwrap();
    }

    #[test]
    fn injected_error_display_names_site_and_hit() {
        let e = FaultError::Injected {
            site: "magnet/reform".into(),
            hit: 7,
        };
        assert!(e.to_string().contains("magnet/reform"));
        assert!(e.to_string().contains('7'));
    }
}
