//! Seeded, declarative fault plans.
//!
//! A [`FaultPlan`] names the injection sites and, per site, the probability
//! of each fault kind. Probabilities are evaluated deterministically by the
//! injector (see [`crate::FaultInjector`]): the decision for a site's `n`-th
//! hit is a pure function of `(seed, site name, n)`, so the same plan
//! replays the same fault schedule on every run.

use crate::FaultError;
use std::time::Duration;

/// Fault configuration for one named injection site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteFaults {
    site: String,
    panic_rate: f64,
    error_rate: f64,
    delay_rate: f64,
    delay: Duration,
    max_faults: Option<u64>,
}

impl SiteFaults {
    /// A quiet site configuration for `site` (all rates zero).
    pub fn at(site: impl Into<String>) -> SiteFaults {
        SiteFaults {
            site: site.into(),
            panic_rate: 0.0,
            error_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::ZERO,
            max_faults: None,
        }
    }

    /// Sets the probability that a hit panics.
    #[must_use]
    pub fn panics(mut self, rate: f64) -> SiteFaults {
        self.panic_rate = rate;
        self
    }

    /// Sets the probability that a hit fails with an injected error.
    #[must_use]
    pub fn errors(mut self, rate: f64) -> SiteFaults {
        self.error_rate = rate;
        self
    }

    /// Sets the probability that a hit is delayed by `delay`.
    #[must_use]
    pub fn delays(mut self, rate: f64, delay: Duration) -> SiteFaults {
        self.delay_rate = rate;
        self.delay = delay;
        self
    }

    /// Caps the total number of faults this site may inject; after the cap
    /// the site goes quiet. Useful for deterministic "fail exactly once,
    /// then recover" scenarios.
    #[must_use]
    pub fn limit(mut self, max_faults: u64) -> SiteFaults {
        self.max_faults = Some(max_faults);
        self
    }

    /// The site name.
    pub fn site(&self) -> &str {
        &self.site
    }

    pub(crate) fn panic_rate(&self) -> f64 {
        self.panic_rate
    }

    pub(crate) fn error_rate(&self) -> f64 {
        self.error_rate
    }

    pub(crate) fn delay_rate(&self) -> f64 {
        self.delay_rate
    }

    pub(crate) fn delay(&self) -> Duration {
        self.delay
    }

    pub(crate) fn max_faults(&self) -> Option<u64> {
        self.max_faults
    }

    fn validate(&self) -> Result<(), FaultError> {
        let rates = [
            ("panic", self.panic_rate),
            ("error", self.error_rate),
            ("delay", self.delay_rate),
        ];
        for (kind, rate) in rates {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(FaultError::InvalidPlan {
                    site: self.site.clone(),
                    message: format!("{kind} rate {rate} outside [0, 1]"),
                });
            }
        }
        let total = self.panic_rate + self.error_rate + self.delay_rate;
        if total > 1.0 {
            return Err(FaultError::InvalidPlan {
                site: self.site.clone(),
                message: format!("rates sum to {total} > 1"),
            });
        }
        Ok(())
    }
}

/// A seeded set of [`SiteFaults`]; the input to [`crate::FaultInjector`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    sites: Vec<SiteFaults>,
}

impl FaultPlan {
    /// An empty plan under `seed`; add sites with [`with`](Self::with).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            sites: Vec::new(),
        }
    }

    /// Adds (or replaces, by name) one site's fault configuration.
    #[must_use]
    pub fn with(mut self, site: SiteFaults) -> FaultPlan {
        self.sites.retain(|s| s.site != site.site);
        self.sites.push(site);
        self
    }

    /// A randomized low-rate plan over `sites`, fully derived from `seed`:
    /// every site gets panic/error/delay rates in `[0, 0.04)` and a delay up
    /// to ~200µs. This is the soak test's workhorse — a different seed is a
    /// different chaos schedule, the same seed replays bit-for-bit.
    pub fn randomized(seed: u64, sites: &[&str]) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        for (i, site) in sites.iter().enumerate() {
            let mix = |k: u64| crate::inject::unit(seed, site_hash(site), i as u64 * 8 + k);
            let delay_us = 20 + (mix(3) * 180.0) as u64;
            plan = plan.with(
                SiteFaults::at(*site)
                    .panics(0.04 * mix(0))
                    .errors(0.04 * mix(1))
                    .delays(0.04 * mix(2), Duration::from_micros(delay_us)),
            );
        }
        plan
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured sites.
    pub fn sites(&self) -> &[SiteFaults] {
        &self.sites
    }

    /// Checks every site's probabilities.
    ///
    /// # Errors
    ///
    /// [`FaultError::InvalidPlan`] for a rate outside `[0, 1]` or a site
    /// whose rates sum past `1`.
    pub fn validate(&self) -> Result<(), FaultError> {
        for site in &self.sites {
            site.validate()?;
        }
        Ok(())
    }
}

/// FNV-1a hash of a site name; mixed into the per-hit decision stream so
/// sites draw independent sequences from the same seed.
pub(crate) fn site_hash(site: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_rates() {
        let s = SiteFaults::at("x")
            .panics(0.1)
            .errors(0.2)
            .delays(0.3, Duration::from_millis(1))
            .limit(5);
        assert_eq!(s.site(), "x");
        assert_eq!(s.panic_rate(), 0.1);
        assert_eq!(s.error_rate(), 0.2);
        assert_eq!(s.delay_rate(), 0.3);
        assert_eq!(s.delay(), Duration::from_millis(1));
        assert_eq!(s.max_faults(), Some(5));
    }

    #[test]
    fn out_of_range_rates_fail_validation() {
        for bad in [
            SiteFaults::at("x").panics(-0.1),
            SiteFaults::at("x").errors(1.5),
            SiteFaults::at("x").delays(f64::NAN, Duration::ZERO),
            SiteFaults::at("x").panics(0.6).errors(0.6),
        ] {
            let plan = FaultPlan::new(1).with(bad);
            assert!(matches!(
                plan.validate(),
                Err(FaultError::InvalidPlan { .. })
            ));
        }
    }

    #[test]
    fn with_replaces_same_site() {
        let plan = FaultPlan::new(1)
            .with(SiteFaults::at("a").panics(0.5))
            .with(SiteFaults::at("a").panics(0.1));
        assert_eq!(plan.sites().len(), 1);
        assert_eq!(plan.sites()[0].panic_rate(), 0.1);
    }

    #[test]
    fn randomized_plans_are_seed_deterministic_and_valid() {
        let sites = ["magnet/detect", "magnet/reform", "serve/batch"];
        let a = FaultPlan::randomized(42, &sites);
        let b = FaultPlan::randomized(42, &sites);
        let c = FaultPlan::randomized(43, &sites);
        assert_eq!(a, b);
        assert_ne!(a, c);
        a.validate().unwrap();
        c.validate().unwrap();
    }

    #[test]
    fn site_hash_distinguishes_names() {
        assert_ne!(site_hash("magnet/detect"), site_hash("magnet/reform"));
        assert_eq!(site_hash("x"), site_hash("x"));
    }
}
