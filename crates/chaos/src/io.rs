//! Seeded I/O fault plans for the durable artifact store.
//!
//! [`IoFaultPlan`] implements [`adv_store::IoFaultHook`]: installed via
//! [`adv_store::install_fault_hook`], it decides for every store write
//! whether the bytes land intact, torn at a byte offset, with one bit
//! flipped, or not at all (a transient write error the caller sees). As
//! with the serving-side [`crate::FaultInjector`], every decision is a pure
//! function of `(seed, hit index)`, so a seed replays the exact same fault
//! schedule — the soak test's requirement for byte-identical reruns.
//!
//! A plan can be scoped with [`IoFaultPlan::under`] so only writes beneath
//! one directory are faulted; everything else (unrelated tests sharing the
//! process, the OS tempdir) passes through untouched.

use crate::plan::site_hash;
use adv_store::{IoFaultHook, WriteFault};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of what an [`IoFaultPlan`] has injected so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoFaultStats {
    /// Writes the plan saw (inside its root filter).
    pub writes: u64,
    /// Writes torn at a byte offset.
    pub torn: u64,
    /// Writes with one bit flipped.
    pub bit_flips: u64,
    /// Writes failed with a transient error.
    pub transient_errors: u64,
}

impl IoFaultStats {
    /// Total injected faults of any kind.
    pub fn injected(&self) -> u64 {
        self.torn + self.bit_flips + self.transient_errors
    }
}

/// A deterministic write-fault schedule. See the module docs.
#[derive(Debug)]
pub struct IoFaultPlan {
    seed: u64,
    torn_rate: f64,
    flip_rate: f64,
    error_rate: f64,
    root: Option<PathBuf>,
    hits: AtomicU64,
    torn: AtomicU64,
    flips: AtomicU64,
    errors: AtomicU64,
}

impl IoFaultPlan {
    /// A quiet plan under `seed`; add fault rates with
    /// [`rates`](Self::rates).
    pub fn new(seed: u64) -> IoFaultPlan {
        IoFaultPlan {
            seed,
            torn_rate: 0.0,
            flip_rate: 0.0,
            error_rate: 0.0,
            root: None,
            hits: AtomicU64::new(0),
            torn: AtomicU64::new(0),
            flips: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// Sets the per-write probabilities of a torn write, a bit flip, and a
    /// transient error. Rates are clamped to `[0, 1]` and their sum to `1`.
    #[must_use]
    pub fn rates(mut self, torn: f64, flip: f64, error: f64) -> IoFaultPlan {
        let clamp = |r: f64| {
            if r.is_finite() {
                r.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        self.torn_rate = clamp(torn);
        self.flip_rate = clamp(flip);
        self.error_rate = clamp(error);
        let total = self.torn_rate + self.flip_rate + self.error_rate;
        if total > 1.0 {
            self.torn_rate /= total;
            self.flip_rate /= total;
            self.error_rate /= total;
        }
        self
    }

    /// Restricts the plan to writes under `root`; other paths pass through
    /// unfaulted (and uncounted).
    #[must_use]
    pub fn under(mut self, root: impl Into<PathBuf>) -> IoFaultPlan {
        self.root = Some(root.into());
        self
    }

    /// What the plan has injected so far.
    pub fn stats(&self) -> IoFaultStats {
        let (writes, torn, bit_flips, transient_errors) = (
            self.hits.load(Ordering::Relaxed),
            self.torn.load(Ordering::Relaxed),
            self.flips.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
        );
        IoFaultStats {
            writes,
            torn,
            bit_flips,
            transient_errors,
        }
    }
}

impl IoFaultHook for IoFaultPlan {
    fn on_write(&self, path: &Path, len: usize) -> WriteFault {
        if let Some(root) = &self.root {
            if !path.starts_with(root) {
                return WriteFault::None;
            }
        }
        let n = self.hits.fetch_add(1, Ordering::Relaxed);
        let draw = crate::inject::unit(self.seed, site_hash("store/write"), n);
        let aux = crate::inject::unit(self.seed, site_hash("store/write-aux"), n);
        if draw < self.torn_rate {
            self.torn.fetch_add(1, Ordering::Relaxed);
            // Tear strictly inside the image so something is always missing.
            let k = (aux * len as f64) as usize;
            WriteFault::TornWrite(k.min(len.saturating_sub(1)))
        } else if draw < self.torn_rate + self.flip_rate {
            self.flips.fetch_add(1, Ordering::Relaxed);
            WriteFault::BitFlip((aux * (len.max(1) * 8) as f64) as usize)
        } else if draw < self.torn_rate + self.flip_rate + self.error_rate {
            self.errors.fetch_add(1, Ordering::Relaxed);
            WriteFault::TransientError
        } else {
            WriteFault::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_seed_deterministic() {
        let mk = || IoFaultPlan::new(99).rates(0.2, 0.2, 0.2);
        let a = mk();
        let b = mk();
        let faults_a: Vec<WriteFault> = (0..200)
            .map(|_| a.on_write(Path::new("/x/file"), 64))
            .collect();
        let faults_b: Vec<WriteFault> = (0..200)
            .map(|_| b.on_write(Path::new("/x/file"), 64))
            .collect();
        assert_eq!(faults_a, faults_b);
        assert!(a.stats().injected() > 0, "rates of 0.6 must inject");
        assert_eq!(a.stats().writes, 200);
    }

    #[test]
    fn root_filter_passes_unrelated_paths() {
        let plan = IoFaultPlan::new(1).rates(1.0, 0.0, 0.0).under("/inside");
        assert_eq!(plan.on_write(Path::new("/outside/f"), 10), WriteFault::None);
        assert_eq!(plan.stats().writes, 0);
        assert!(matches!(
            plan.on_write(Path::new("/inside/f"), 10),
            WriteFault::TornWrite(_)
        ));
        assert_eq!(plan.stats().torn, 1);
    }

    #[test]
    fn torn_offset_is_strictly_short() {
        let plan = IoFaultPlan::new(7).rates(1.0, 0.0, 0.0);
        for len in [1usize, 2, 24, 1000] {
            match plan.on_write(Path::new("/f"), len) {
                WriteFault::TornWrite(k) => assert!(k < len, "k={k} len={len}"),
                other => panic!("expected torn write, got {other:?}"),
            }
        }
    }

    #[test]
    fn rates_are_normalized() {
        let plan = IoFaultPlan::new(3).rates(2.0, 1.0, 1.0);
        // Every write faults, split between the three kinds.
        for _ in 0..100 {
            assert_ne!(plan.on_write(Path::new("/f"), 32), WriteFault::None);
        }
        let s = plan.stats();
        assert_eq!(s.injected(), 100);
        assert!(s.torn > 0 && (s.bit_flips > 0 || s.transient_errors > 0));
    }
}
