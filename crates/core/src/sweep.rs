//! Confidence (κ) sweeps with attack-result caching.
//!
//! A key property of the oblivious setting is that the crafted adversarial
//! examples depend only on the *attack configuration and the undefended
//! classifier* — never on the defense. One attack run per (attack, κ) is
//! therefore shared by every defense variant, every scheme ablation and
//! every table row, and the [`SweepRunner`] caches those runs on disk.

use crate::cache::{attack_cache_path, load_outcome, store_outcome};
use crate::config::Scale;
use crate::experiment::{evaluate_defense, select_attack_set, AttackSet, DefenseEvaluation};
use crate::zoo::{Scenario, Zoo};
use crate::Result;
use adv_attacks::{
    Attack, AttackOutcome, CarliniWagnerL2, CwConfig, DecisionRule, EadConfig, ElasticNetAttack,
};
use adv_magnet::{DefenseScheme, MagnetDefense};
use adv_nn::Sequential;
use adv_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// An attack family to sweep (κ is supplied per point).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackKind {
    /// C&W L2 (EAD with β = 0).
    Cw,
    /// EAD with a decision rule and β.
    Ead {
        /// Decision rule for the reported example.
        rule: DecisionRule,
        /// L1 regularization strength.
        beta: f32,
    },
}

impl AttackKind {
    /// The EAD grid the paper sweeps: both rules × β ∈ {1e-3, 1e-2, 5e-2, 1e-1}.
    pub fn ead_grid() -> Vec<AttackKind> {
        let mut kinds = Vec::new();
        for rule in [DecisionRule::ElasticNet, DecisionRule::L1] {
            for beta in [1e-3f32, 1e-2, 5e-2, 1e-1] {
                kinds.push(AttackKind::Ead { rule, beta });
            }
        }
        kinds
    }

    /// The three attacks plotted in Figures 2–3: C&W plus EAD-L1/EAD-EN at
    /// β = 0.1.
    pub fn figure_trio() -> Vec<AttackKind> {
        vec![
            AttackKind::Cw,
            AttackKind::Ead {
                rule: DecisionRule::L1,
                beta: 0.1,
            },
            AttackKind::Ead {
                rule: DecisionRule::ElasticNet,
                beta: 0.1,
            },
        ]
    }

    /// Legend label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            AttackKind::Cw => "C&W L2 attack".to_string(),
            AttackKind::Ead { rule, beta } => {
                format!("EAD-{} beta={beta}", rule.label())
            }
        }
    }

    /// Builds the concrete attack at a given κ and scale.
    ///
    /// # Errors
    ///
    /// Propagates attack config validation errors.
    pub fn build(&self, kappa: f32, scale: &Scale) -> Result<Box<dyn Attack>> {
        Ok(match self {
            AttackKind::Cw => Box::new(CarliniWagnerL2::new(CwConfig {
                kappa,
                iterations: scale.attack_iterations,
                binary_search_steps: scale.binary_search_steps,
                initial_c: scale.initial_c,
                learning_rate: scale.attack_lr,
            })?),
            AttackKind::Ead { rule, beta } => Box::new(ElasticNetAttack::new(EadConfig {
                kappa,
                beta: *beta,
                rule: *rule,
                iterations: scale.attack_iterations,
                binary_search_steps: scale.binary_search_steps,
                initial_c: scale.initial_c,
                learning_rate: scale.attack_lr,
                ..EadConfig::default()
            })?),
        })
    }
}

/// One point of an accuracy-vs-confidence curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Attack confidence κ.
    pub kappa: f32,
    /// Defense classification accuracy (`0..=1`).
    pub accuracy: f32,
}

/// A labelled accuracy-vs-confidence series (one line of a paper figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Curve {
    /// Legend label.
    pub label: String,
    /// Points in κ order.
    pub points: Vec<CurvePoint>,
}

/// Runs attacks against one scenario's undefended classifier, caching the
/// adversarial examples on disk, and evaluates them against defenses.
#[derive(Debug)]
pub struct SweepRunner {
    scenario: Scenario,
    scale: Scale,
    cache_dir: std::path::PathBuf,
    classifier: Sequential,
    set: AttackSet,
}

impl SweepRunner {
    /// Builds the runner: loads/trains the classifier and selects the attack
    /// set.
    ///
    /// # Errors
    ///
    /// Propagates training errors; fails when the classifier has no correct
    /// predictions to attack.
    pub fn new(zoo: &Zoo, scenario: Scenario) -> Result<Self> {
        let mut classifier = zoo.classifier(scenario)?;
        let data = zoo.data(scenario);
        let set = select_attack_set(
            &mut classifier,
            &data.test,
            zoo.scale().attack_count,
            zoo.scale().seed ^ 0xA77AC4,
        )?;
        Ok(SweepRunner {
            scenario,
            scale: *zoo.scale(),
            cache_dir: zoo.dir().join("attacks"),
            classifier,
            set,
        })
    }

    /// The images under attack.
    pub fn attack_set(&self) -> &AttackSet {
        &self.set
    }

    /// The undefended classifier.
    pub fn classifier_mut(&mut self) -> &mut Sequential {
        &mut self.classifier
    }

    /// The conversion factor from paper-κ to this substrate's logit units.
    pub fn kappa_unit(&self) -> f32 {
        match self.scenario {
            Scenario::Mnist => self.scale.kappa_unit_mnist,
            Scenario::Cifar => self.scale.kappa_unit_cifar,
        }
    }

    /// Runs (or loads from cache) one attack at one paper-κ.
    ///
    /// The κ passed to the attack is `kappa × kappa_unit` — curves stay
    /// labelled with the paper's axis while the confidence requirement is
    /// expressed in this victim's logit scale (see `Scale::kappa_unit_*`).
    ///
    /// # Errors
    ///
    /// Propagates attack errors and cache I/O errors.
    pub fn outcome(&mut self, kind: &AttackKind, kappa: f32) -> Result<AttackOutcome> {
        let attack = kind.build(kappa * self.kappa_unit(), &self.scale)?;
        let path = attack_cache_path(
            &self.cache_dir,
            self.scenario.name(),
            &attack.name(),
            self.set.labels.len(),
            self.scale.attack_iterations,
            self.scale.binary_search_steps,
            self.scale.initial_c,
            self.scale.attack_lr,
            self.scale.seed,
            crate::cache::content_fingerprint(&self.set.images),
        );
        if let Some(outcome) = load_outcome(&path, &self.set.images) {
            return Ok(outcome);
        }
        let outcome = self.craft_journaled(&*attack, &path)?;
        store_outcome(&path, &outcome)?;
        Ok(outcome)
    }

    /// Crafts the attack set one sample at a time, appending each finished
    /// sample to an on-disk journal next to the cache entry. A run killed
    /// mid-sweep replays the journal on the next call and recrafts only the
    /// samples that never reached disk; the journal is deleted once the
    /// assembled outcome lands in the durable `.atk` cache.
    fn craft_journaled(
        &mut self,
        attack: &dyn Attack,
        cache_path: &std::path::Path,
    ) -> Result<AttackOutcome> {
        let n = self.set.labels.len();
        let item = self.set.images.shape().volume() / n.max(1);
        let record_len = 4 + 1 + item * 4;
        let jpath = cache_path.with_extension("atk.journal");
        let context = crate::cache::content_fingerprint(&self.set.images);
        let mut journal = adv_store::Journal::open(&jpath, context)?;

        let mut adversarial = self.set.images.clone();
        let mut success = vec![false; n];
        let mut done = 0usize;
        let mut stale = false;
        for rec in journal.records() {
            let idx_ok = rec.len() == record_len
                && done < n
                && u32::from_le_bytes(rec[..4].try_into().unwrap_or([0; 4])) as usize == done;
            if !idx_ok {
                stale = true;
                break;
            }
            success[done] = rec[4] != 0;
            let dst = &mut adversarial.as_mut_slice()[done * item..(done + 1) * item];
            for (v, chunk) in dst.iter_mut().zip(rec[5..].chunks_exact(4)) {
                *v = f32::from_le_bytes(chunk.try_into().unwrap_or([0; 4]));
            }
            done += 1;
        }
        if stale {
            // Out-of-sequence or malformed payload: the journal predates a
            // format/logic change. Drop it and craft from scratch.
            done = 0;
            adversarial = self.set.images.clone();
            success = vec![false; n];
            journal = adv_store::Journal::open_fresh(&jpath, context)?;
        }
        if done > 0 && done < n {
            adv_store::bump_counter(adv_store::metric_names::RESUMES);
            eprintln!("sweep: resuming {} at sample {done}/{n}", jpath.display());
        }

        let mut sample_dims: Vec<usize> = self.set.images.shape().dims().to_vec();
        if let Some(first) = sample_dims.first_mut() {
            *first = 1;
        }
        for (i, succ) in success.iter_mut().enumerate().skip(done) {
            let xs = &self.set.images.as_slice()[i * item..(i + 1) * item];
            let xi = Tensor::from_vec(xs.to_vec(), Shape::new(sample_dims.clone()))?;
            let out = attack.run(&mut self.classifier, &xi, &[self.set.labels[i]])?;
            *succ = out.success.first().copied().unwrap_or(false);
            let dst = &mut adversarial.as_mut_slice()[i * item..(i + 1) * item];
            dst.copy_from_slice(out.adversarial.as_slice());

            let mut rec = Vec::with_capacity(record_len);
            rec.extend_from_slice(&(i as u32).to_le_bytes());
            rec.push(*succ as u8);
            for &v in out.adversarial.as_slice() {
                rec.extend_from_slice(&v.to_le_bytes());
            }
            journal.append(&rec)?;
        }

        let outcome = AttackOutcome::from_images(&self.set.images, adversarial, success)?;
        journal.remove()?;
        Ok(outcome)
    }

    /// Evaluates one (attack, κ) against one defense under all schemes.
    ///
    /// # Errors
    ///
    /// Propagates attack and defense errors.
    pub fn evaluate(
        &mut self,
        kind: &AttackKind,
        kappa: f32,
        defense: &mut MagnetDefense,
    ) -> Result<DefenseEvaluation> {
        let outcome = self.outcome(kind, kappa)?;
        evaluate_defense(defense, &outcome, &self.set.labels)
    }

    /// The accuracy-vs-κ curve of one attack against one defense under one
    /// scheme (a single line of Figures 2–13).
    ///
    /// # Errors
    ///
    /// Propagates attack and defense errors.
    pub fn curve(
        &mut self,
        kind: &AttackKind,
        kappas: &[f32],
        defense: &mut MagnetDefense,
        scheme: DefenseScheme,
    ) -> Result<Curve> {
        let mut points = Vec::with_capacity(kappas.len());
        for &kappa in kappas {
            let eval = self.evaluate(kind, kappa, defense)?;
            points.push(CurvePoint {
                kappa,
                accuracy: eval.accuracy_for(scheme),
            });
        }
        Ok(Curve {
            label: kind.label(),
            points,
        })
    }

    /// All four scheme-ablation curves for one attack (one panel of the
    /// supplementary figures).
    ///
    /// # Errors
    ///
    /// Propagates attack and defense errors.
    pub fn scheme_curves(
        &mut self,
        kind: &AttackKind,
        kappas: &[f32],
        defense: &mut MagnetDefense,
    ) -> Result<Vec<Curve>> {
        let mut per_scheme: Vec<Curve> = DefenseScheme::ALL
            .iter()
            .map(|s| Curve {
                label: s.label().to_string(),
                points: Vec::with_capacity(kappas.len()),
            })
            .collect();
        for &kappa in kappas {
            let eval = self.evaluate(kind, kappa, defense)?;
            for (curve, scheme) in per_scheme.iter_mut().zip(DefenseScheme::ALL) {
                curve.points.push(CurvePoint {
                    kappa,
                    accuracy: eval.accuracy_for(scheme),
                });
            }
        }
        Ok(per_scheme)
    }

    /// The best (maximum) defended ASR over a κ grid — the statistic of
    /// Tables IV and VII.
    ///
    /// # Errors
    ///
    /// Propagates attack and defense errors.
    pub fn best_asr(
        &mut self,
        kind: &AttackKind,
        kappas: &[f32],
        defense: &mut MagnetDefense,
    ) -> Result<f32> {
        let mut best = 0.0f32;
        for &kappa in kappas {
            let eval = self.evaluate(kind, kappa, defense)?;
            best = best.max(eval.defended_asr());
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ead_grid_covers_paper_table() {
        let grid = AttackKind::ead_grid();
        assert_eq!(grid.len(), 8);
        assert!(grid.iter().any(|k| matches!(
            k,
            AttackKind::Ead {
                rule: DecisionRule::L1,
                beta
            } if (*beta - 0.05).abs() < 1e-9
        )));
    }

    #[test]
    fn figure_trio_labels() {
        let trio = AttackKind::figure_trio();
        assert_eq!(trio[0].label(), "C&W L2 attack");
        assert_eq!(trio[1].label(), "EAD-L1 beta=0.1");
        assert_eq!(trio[2].label(), "EAD-EN beta=0.1");
    }

    #[test]
    fn kinds_build_attacks_with_kappa() {
        let scale = Scale::smoke();
        let cw = AttackKind::Cw.build(15.0, &scale).unwrap();
        assert!(cw.name().contains("kappa=15"));
        let ead = AttackKind::Ead {
            rule: DecisionRule::ElasticNet,
            beta: 0.01,
        }
        .build(20.0, &scale)
        .unwrap();
        assert!(ead.name().contains("kappa=20"));
        assert!(ead.name().contains("beta=0.01"));
    }

    #[test]
    fn attack_kind_serde_roundtrip() {
        // AttackKind is part of saved experiment configs; it must round-trip.
        for kind in AttackKind::ead_grid().into_iter().chain([AttackKind::Cw]) {
            let json = serde_json_like(&kind);
            assert!(!json.is_empty());
        }
    }

    /// Poor-man's serde check without serde_json: serialize to the debug
    /// representation and ensure each grid member is distinct (the cache
    /// keys depend on distinct attack names).
    fn serde_json_like(kind: &AttackKind) -> String {
        format!("{kind:?}")
    }

    #[test]
    fn grid_members_have_distinct_labels() {
        let mut labels: Vec<String> = AttackKind::ead_grid().iter().map(|k| k.label()).collect();
        labels.push(AttackKind::Cw.label());
        let before = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), before, "duplicate attack labels");
    }

    #[test]
    fn journaled_crafting_resumes_mid_sweep() {
        let dir = std::env::temp_dir().join("adv_eval_sweep_resume");
        std::fs::remove_dir_all(&dir).ok();
        let zoo = Zoo::new(&dir, Scale::smoke());
        let mut runner = SweepRunner::new(&zoo, Scenario::Mnist).unwrap();
        let kind = AttackKind::Cw;
        let full = runner.outcome(&kind, 0.0).unwrap();

        // Simulate a kill after half the samples: drop the cache entry and
        // plant a journal holding only the first k crafted samples.
        let attack = kind.build(0.0, &runner.scale).unwrap();
        let n = runner.set.labels.len();
        let item = runner.set.images.shape().volume() / n;
        let path = attack_cache_path(
            &runner.cache_dir,
            runner.scenario.name(),
            &attack.name(),
            n,
            runner.scale.attack_iterations,
            runner.scale.binary_search_steps,
            runner.scale.initial_c,
            runner.scale.attack_lr,
            runner.scale.seed,
            crate::cache::content_fingerprint(&runner.set.images),
        );
        std::fs::remove_file(&path).unwrap();
        let jpath = path.with_extension("atk.journal");
        let fp = crate::cache::content_fingerprint(&runner.set.images);
        let k = n / 2;
        let mut journal = adv_store::Journal::open(&jpath, fp).unwrap();
        for i in 0..k {
            let mut rec = Vec::new();
            rec.extend_from_slice(&(i as u32).to_le_bytes());
            rec.push(full.success[i] as u8);
            for &v in &full.adversarial.as_slice()[i * item..(i + 1) * item] {
                rec.extend_from_slice(&v.to_le_bytes());
            }
            journal.append(&rec).unwrap();
        }
        drop(journal);

        // The rerun must replay the journal, recraft only the tail, and end
        // bit-identical to the uninterrupted run.
        let resumed = runner.outcome(&kind, 0.0).unwrap();
        assert_eq!(resumed.adversarial, full.adversarial);
        assert_eq!(resumed.success, full.success);
        assert!(!jpath.exists(), "journal must be deleted after commit");
        assert!(path.exists(), "cache entry must be rebuilt");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn smoke_sweep_end_to_end() {
        // Full pipeline at smoke scale: zoo → runner → cached attack →
        // defense evaluation. This is the most important integration path.
        let dir = std::env::temp_dir().join("adv_eval_sweep_smoke");
        std::fs::remove_dir_all(&dir).ok();
        let zoo = Zoo::new(&dir, Scale::smoke());
        let mut runner = SweepRunner::new(&zoo, Scenario::Mnist).unwrap();
        let mut defense = zoo
            .defense(Scenario::Mnist, crate::zoo::Variant::Default)
            .unwrap();

        let kind = AttackKind::Ead {
            rule: DecisionRule::ElasticNet,
            beta: 0.01,
        };
        let eval = runner.evaluate(&kind, 0.0, &mut defense).unwrap();
        assert!((0.0..=1.0).contains(&eval.undefended_asr));

        // Second call must hit the cache (same result).
        let eval2 = runner.evaluate(&kind, 0.0, &mut defense).unwrap();
        assert_eq!(eval.undefended_asr, eval2.undefended_asr);

        let curves = runner.scheme_curves(&kind, &[0.0], &mut defense).unwrap();
        assert_eq!(curves.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
