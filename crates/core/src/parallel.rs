//! A small scoped-thread parallel map built on `std::thread::scope`.
//!
//! The κ sweeps are embarrassingly parallel across attack configurations —
//! each worker needs only a clone of the (cheaply cloneable) classifier.
//! On a single-core host this degrades gracefully to sequential execution;
//! on multi-core machines it cuts sweep wall-clock near-linearly.

use std::sync::Mutex;

/// Applies `f` to every item, using up to `workers` OS threads, and returns
/// results in input order. `workers == 1` (or one item) short-circuits to a
/// plain sequential map with no thread overhead.
///
/// # Panics
///
/// Propagates panics from `f` (a panicking worker poisons the shared state
/// and the panic is re-raised after all threads join).
pub fn par_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let n = items.len();
    let work: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = work.lock().expect("worker panicked").pop();
                let Some((idx, item)) = job else { break };
                let out = f(item);
                results.lock().expect("worker panicked")[idx] = Some(out);
            });
        }
    });

    results
        .into_inner()
        .expect("worker panicked")
        .into_iter()
        .map(|r| r.expect("every index was processed"))
        .collect()
}

/// The number of workers to use by default: all available cores.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect(), 4, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        let seq = par_map((0..10).collect(), 1, |x: i32| x + 1);
        let par = par_map((0..10).collect(), 8, |x: i32| x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = par_map((0..50).collect(), 3, |x: usize| {
            counter.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(counter.load(Ordering::SeqCst), 50);
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn more_workers_than_items() {
        let out = par_map(vec![1, 2], 16, |x: i32| x * 10);
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
