//! Evaluation harness reproducing the paper's experiments.
//!
//! This crate orchestrates everything the paper's §III does:
//!
//! 1. [`zoo`] trains (and caches to disk) the victim classifiers, the MagNet
//!    auto-encoders for every defense variant, and assembles calibrated
//!    defenses.
//! 2. [`experiment`] implements the **oblivious attack protocol**: pick test
//!    images the undefended classifier gets right, craft adversarial
//!    examples against the *undefended* model, then measure each defense
//!    variant's classification accuracy (= detected ∨ correctly classified)
//!    on the successfully crafted examples.
//! 3. [`sweep`] runs confidence sweeps and β sweeps, caching attack results
//!    on disk ([`cache`]) so that every table and figure that shares an
//!    attack configuration reuses the same adversarial examples.
//! 4. [`tables`] and [`figures`] format the paper's Tables I/III/IV/VI/VII
//!    and the series behind Figures 2–13; [`render`] writes the Figure 1
//!    image grids (PGM/PPM + ASCII).
//!
//! Every experiment binary in `src/bin/` is a thin driver over these
//! modules; `reproduce_all` regenerates the whole evaluation at the
//! configured scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod cache;
pub mod config;
pub mod experiment;
pub mod figures;
pub mod obs;
pub mod parallel;
pub mod plot;
pub mod render;
pub mod report;
pub mod sweep;
pub mod tables;
pub mod zoo;

pub use config::Scale;
pub use error::EvalError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EvalError>;
