//! Result output helpers: aligned text tables for the terminal and CSV
//! files for downstream plotting.

use crate::Result;
use std::path::Path;

/// Renders rows as an aligned text table with a header rule.
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let mut out = String::new();
    out.push_str(&render_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

/// Writes a CSV file (creating parent directories). Cells containing commas
/// or quotes are quoted.
///
/// # Errors
///
/// Returns filesystem errors.
pub fn write_csv(path: impl AsRef<Path>, headers: &[&str], rows: &[Vec<String>]) -> Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let quote = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    std::fs::write(path, out)?;
    Ok(())
}

/// Formats a fraction as a percentage with one decimal ("87.5").
pub fn pct(fraction: f32) -> String {
    format!("{:.1}", fraction * 100.0)
}

/// Formats an optional statistic with three decimals, "-" when absent.
pub fn opt3(v: Option<f32>) -> String {
    v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_aligns_columns() {
        let t = text_table(
            &["name", "v"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_quotes_special_cells() {
        let dir = std::env::temp_dir().join("adv_eval_report_test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], &[vec!["x,y".into(), "plain".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"x,y\""));
        assert!(content.contains("plain"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.875), "87.5");
        assert_eq!(opt3(Some(1.23456)), "1.235");
        assert_eq!(opt3(None), "-");
    }
}
