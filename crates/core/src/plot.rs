//! Minimal SVG line-chart rendering for the paper's figures.
//!
//! Each [`Panel`](crate::figures::Panel) becomes a self-contained SVG with
//! the paper's axes: confidence κ on x, classification accuracy (0–100%) on
//! y, one polyline per curve, and a legend. No external dependencies — the
//! SVG is assembled by hand.

use crate::figures::Panel;
use crate::Result;
use std::fmt::Write as _;
use std::path::Path;

const WIDTH: f32 = 480.0;
const HEIGHT: f32 = 360.0;
const MARGIN_L: f32 = 56.0;
const MARGIN_R: f32 = 16.0;
const MARGIN_T: f32 = 40.0;
const MARGIN_B: f32 = 48.0;

/// A qualitative palette (color-blind friendly).
const COLORS: &[&str] = &[
    "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#000000",
];

fn x_pos(kappa: f32, kmin: f32, kmax: f32) -> f32 {
    let span = (kmax - kmin).max(1e-6);
    MARGIN_L + (kappa - kmin) / span * (WIDTH - MARGIN_L - MARGIN_R)
}

fn y_pos(accuracy: f32) -> f32 {
    // y grows downward; accuracy 1.0 at the top.
    MARGIN_T + (1.0 - accuracy.clamp(0.0, 1.0)) * (HEIGHT - MARGIN_T - MARGIN_B)
}

/// Renders one panel as an SVG document string.
pub fn panel_to_svg(panel: &Panel) -> String {
    let kmin = panel
        .curves
        .iter()
        .flat_map(|c| c.points.iter().map(|p| p.kappa))
        .fold(f32::INFINITY, f32::min);
    let kmax = panel
        .curves
        .iter()
        .flat_map(|c| c.points.iter().map(|p| p.kappa))
        .fold(f32::NEG_INFINITY, f32::max);
    let (kmin, kmax) = if kmin.is_finite() && kmax.is_finite() {
        (kmin, kmax)
    } else {
        (0.0, 1.0)
    };

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    // Title.
    let _ = write!(
        svg,
        r#"<text x="{}" y="22" font-family="sans-serif" font-size="14" text-anchor="middle">{}</text>"#,
        WIDTH / 2.0,
        escape(&panel.title)
    );
    // Axes.
    let x0 = MARGIN_L;
    let x1 = WIDTH - MARGIN_R;
    let y0 = HEIGHT - MARGIN_B;
    let y1 = MARGIN_T;
    let _ = write!(
        svg,
        r#"<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/><line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="black"/>"#
    );
    // Y grid + labels every 20%.
    for i in 0..=5 {
        let acc = i as f32 / 5.0;
        let y = y_pos(acc);
        let _ = write!(
            svg,
            r##"<line x1="{x0}" y1="{y}" x2="{x1}" y2="{y}" stroke="#dddddd"/><text x="{}" y="{}" font-family="sans-serif" font-size="10" text-anchor="end">{}%</text>"##,
            x0 - 6.0,
            y + 3.0,
            (acc * 100.0) as i32
        );
    }
    // X ticks at every distinct κ of the first curve.
    if let Some(first) = panel.curves.first() {
        for p in &first.points {
            let x = x_pos(p.kappa, kmin, kmax);
            let _ = write!(
                svg,
                r#"<line x1="{x}" y1="{y0}" x2="{x}" y2="{}" stroke="black"/><text x="{x}" y="{}" font-family="sans-serif" font-size="10" text-anchor="middle">{}</text>"#,
                y0 + 4.0,
                y0 + 18.0,
                p.kappa
            );
        }
    }
    // Axis titles.
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" font-family="sans-serif" font-size="12" text-anchor="middle">Confidence</text>"#,
        (x0 + x1) / 2.0,
        HEIGHT - 10.0
    );
    let _ = write!(
        svg,
        r#"<text x="14" y="{}" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 {})">Classification accuracy</text>"#,
        (y0 + y1) / 2.0,
        (y0 + y1) / 2.0
    );
    // Curves.
    for (i, curve) in panel.curves.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let points: Vec<String> = curve
            .points
            .iter()
            .map(|p| format!("{:.1},{:.1}", x_pos(p.kappa, kmin, kmax), y_pos(p.accuracy)))
            .collect();
        let _ = write!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            points.join(" ")
        );
        for p in &curve.points {
            let _ = write!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                x_pos(p.kappa, kmin, kmax),
                y_pos(p.accuracy)
            );
        }
        // Legend entry.
        let ly = MARGIN_T + 8.0 + i as f32 * 14.0;
        let _ = write!(
            svg,
            r#"<line x1="{}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{}" y="{}" font-family="sans-serif" font-size="10">{}</text>"#,
            x0 + 8.0,
            x0 + 28.0,
            x0 + 32.0,
            ly + 3.0,
            escape(&curve.label)
        );
    }
    svg.push_str("</svg>");
    svg
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Writes every panel of a figure as `<stem>_<index>.svg` under `dir`.
///
/// # Errors
///
/// Returns filesystem errors.
pub fn write_panels_svg(
    panels: &[Panel],
    dir: impl AsRef<Path>,
    stem: &str,
) -> Result<Vec<String>> {
    std::fs::create_dir_all(dir.as_ref())?;
    let mut written = Vec::with_capacity(panels.len());
    for (i, panel) in panels.iter().enumerate() {
        let name = format!("{stem}_{}.svg", (b'a' + (i as u8 % 26)) as char);
        let path = dir.as_ref().join(&name);
        std::fs::write(&path, panel_to_svg(panel))?;
        written.push(name);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{Curve, CurvePoint};

    fn sample_panel() -> Panel {
        Panel {
            title: "Default (D)".into(),
            curves: vec![
                Curve {
                    label: "C&W L2 attack".into(),
                    points: vec![
                        CurvePoint {
                            kappa: 0.0,
                            accuracy: 0.97,
                        },
                        CurvePoint {
                            kappa: 20.0,
                            accuracy: 0.9,
                        },
                        CurvePoint {
                            kappa: 40.0,
                            accuracy: 0.7,
                        },
                    ],
                },
                Curve {
                    label: "EAD-EN beta=0.1".into(),
                    points: vec![
                        CurvePoint {
                            kappa: 0.0,
                            accuracy: 0.95,
                        },
                        CurvePoint {
                            kappa: 20.0,
                            accuracy: 0.6,
                        },
                        CurvePoint {
                            kappa: 40.0,
                            accuracy: 0.75,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn svg_contains_curves_and_labels() {
        let svg = panel_to_svg(&sample_panel());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("C&amp;W L2 attack"));
        assert!(svg.contains("Default (D)"));
        assert!(svg.contains("Classification accuracy"));
    }

    #[test]
    fn accuracy_one_maps_to_top_of_plot_area() {
        assert!((y_pos(1.0) - MARGIN_T).abs() < 1e-5);
        assert!((y_pos(0.0) - (HEIGHT - MARGIN_B)).abs() < 1e-5);
        assert!(y_pos(0.5) > y_pos(1.0) && y_pos(0.5) < y_pos(0.0));
    }

    #[test]
    fn kappa_positions_are_monotone() {
        let a = x_pos(0.0, 0.0, 40.0);
        let b = x_pos(20.0, 0.0, 40.0);
        let c = x_pos(40.0, 0.0, 40.0);
        assert!(a < b && b < c);
        assert!((c - (WIDTH - MARGIN_R)).abs() < 1e-4);
    }

    #[test]
    fn writes_one_file_per_panel() {
        let dir = std::env::temp_dir().join("adv_eval_plot_test");
        std::fs::remove_dir_all(&dir).ok();
        let names = write_panels_svg(&[sample_panel(), sample_panel()], &dir, "fig2").unwrap();
        assert_eq!(names, vec!["fig2_a.svg", "fig2_b.svg"]);
        assert!(dir.join("fig2_a.svg").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_panel_is_valid_svg() {
        let svg = panel_to_svg(&Panel {
            title: "empty".into(),
            curves: vec![],
        });
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
    }
}
