//! Experiment scale configuration.
//!
//! The paper ran on a TITAN Xp with 1000 test images, 1000 attack iterations
//! and 9 binary-search steps. This reproduction runs on whatever CPU is at
//! hand, so every knob lives in [`Scale`] with three presets:
//!
//! - [`Scale::smoke`] — seconds; CI and unit tests.
//! - [`Scale::quick`] — minutes on one core; the default for the
//!   experiment binaries.
//! - [`Scale::paper`] — the paper's own settings (hours on CPU; use when
//!   you have the budget).
//!
//! Binaries accept `--scale smoke|quick|paper` plus individual overrides.

use crate::error::EvalError;
use serde::{Deserialize, Serialize};

/// All experiment-size knobs in one place.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Training-set size per scenario.
    pub train_size: usize,
    /// Validation-set size (detector calibration).
    pub valid_size: usize,
    /// Test-set size (clean accuracy, attack pool).
    pub test_size: usize,
    /// Number of correctly-classified test images to attack.
    pub attack_count: usize,
    /// Victim classifier training epochs.
    pub classifier_epochs: usize,
    /// Auto-encoder training epochs.
    pub ae_epochs: usize,
    /// Attack iterations per binary-search step.
    pub attack_iterations: usize,
    /// Binary-search steps over `c`.
    pub binary_search_steps: usize,
    /// Filter width of the default auto-encoders (paper: 3).
    pub default_filters: usize,
    /// Filter width of the "robust" auto-encoders (paper: 256; scaled down
    /// here — see DESIGN.md).
    pub robust_filters: usize,
    /// Starting `c` for the attacks' binary search. The paper uses 0.001
    /// with 9 binary-search steps; with fewer steps the search cannot climb
    /// far enough, so the reduced scales start at 0.1.
    pub initial_c: f32,
    /// Attack step size. The paper uses 0.01 with 1000 iterations; with far
    /// fewer iterations a larger step is needed to cover the same distance.
    pub attack_lr: f32,
    /// Label-smoothing ε for victim training. The synthetic tasks are easy
    /// enough that an unsmoothed victim becomes wildly over-confident, which
    /// inflates the distortion needed at a given κ and collapses the paper's
    /// mid-κ regime; smoothing restores realistic margins. The paper scale
    /// uses 0 (the original models were trained without it).
    pub label_smoothing: f32,
    /// Per-detector false-positive budget on MNIST (MagNet used ~0.001).
    pub fpr_mnist: f32,
    /// Per-detector false-positive budget on CIFAR (the original used a
    /// looser budget on the harder dataset).
    pub fpr_cifar: f32,
    /// Gaussian input-corruption σ when training the MNIST auto-encoders.
    pub ae_noise_mnist: f32,
    /// Gaussian input-corruption σ when training the CIFAR auto-encoders.
    pub ae_noise_cifar: f32,
    /// σ of an additional *smooth low-frequency* corruption field for the
    /// CIFAR auto-encoders. Teaching the auto-encoder to remove spread-out
    /// deviations is what lets the reformer and detectors react to dense
    /// C&W perturbations while sparse EAD spikes pass through — the paper's
    /// central asymmetry.
    pub ae_smooth_noise_cifar: f32,
    /// Conversion from the paper's κ axis to this substrate's logit scale
    /// (MNIST). The paper's victim earns logit margins up to ≈40; the
    /// scaled-down victim here has a smaller logit range, so a paper-κ of
    /// 40 maps to `40 × kappa_unit_mnist` in our logits. Curves are still
    /// labelled with the paper's κ values.
    pub kappa_unit_mnist: f32,
    /// Conversion from the paper's κ axis (0..100) for CIFAR.
    pub kappa_unit_cifar: f32,
    /// κ grid step for MNIST sweeps (paper: 5 on 0..40).
    pub mnist_kappa_step: usize,
    /// κ grid step for CIFAR sweeps (paper: 5 on 0..100).
    pub cifar_kappa_step: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Tiny settings for unit tests and CI — seconds of wall-clock.
    pub fn smoke() -> Self {
        Scale {
            train_size: 500,
            valid_size: 80,
            test_size: 100,
            attack_count: 8,
            classifier_epochs: 3,
            ae_epochs: 2,
            attack_iterations: 30,
            binary_search_steps: 2,
            default_filters: 3,
            robust_filters: 6,
            initial_c: 0.5,
            attack_lr: 0.02,
            label_smoothing: 0.0,
            fpr_mnist: 0.01,
            fpr_cifar: 0.05,
            ae_noise_mnist: 0.1,
            ae_noise_cifar: 0.1,
            ae_smooth_noise_cifar: 0.15,
            kappa_unit_mnist: 0.25,
            kappa_unit_cifar: 0.06,
            mnist_kappa_step: 20,
            cifar_kappa_step: 50,
            seed: 2018,
        }
    }

    /// The default single-core scale: minutes per experiment.
    pub fn quick() -> Self {
        Scale {
            train_size: 3000,
            valid_size: 500,
            test_size: 800,
            attack_count: 32,
            classifier_epochs: 4,
            ae_epochs: 4,
            attack_iterations: 60,
            binary_search_steps: 4,
            default_filters: 3,
            robust_filters: 8,
            initial_c: 0.1,
            attack_lr: 0.02,
            label_smoothing: 0.0,
            fpr_mnist: 0.002,
            fpr_cifar: 0.05,
            ae_noise_mnist: 0.1,
            ae_noise_cifar: 0.1,
            ae_smooth_noise_cifar: 0.3,
            kappa_unit_mnist: 0.25,
            kappa_unit_cifar: 0.06,
            mnist_kappa_step: 10,
            cifar_kappa_step: 25,
            seed: 2018,
        }
    }

    /// The paper's own settings. Expect hours-to-days on CPU.
    pub fn paper() -> Self {
        Scale {
            train_size: 60_000,
            valid_size: 5_000,
            test_size: 10_000,
            attack_count: 1000,
            classifier_epochs: 20,
            ae_epochs: 100,
            attack_iterations: 1000,
            binary_search_steps: 9,
            default_filters: 3,
            robust_filters: 256,
            initial_c: 1e-3,
            attack_lr: 0.01,
            label_smoothing: 0.0,
            fpr_mnist: 0.001,
            fpr_cifar: 0.005,
            ae_noise_mnist: 0.1,
            ae_noise_cifar: 0.1,
            ae_smooth_noise_cifar: 0.0,
            kappa_unit_mnist: 1.0,
            kappa_unit_cifar: 1.0,
            mnist_kappa_step: 5,
            cifar_kappa_step: 5,
            seed: 2018,
        }
    }

    /// Parses `"smoke"`, `"quick"` or `"paper"`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Self::smoke()),
            "quick" => Some(Self::quick()),
            "paper" => Some(Self::paper()),
            _ => None,
        }
    }

    /// MNIST κ grid `0..=40` at this scale's step.
    pub fn mnist_kappas(&self) -> Vec<f32> {
        (0..=40)
            .step_by(self.mnist_kappa_step.max(1))
            .map(|k| k as f32)
            .collect()
    }

    /// CIFAR κ grid `0..=100` at this scale's step.
    pub fn cifar_kappas(&self) -> Vec<f32> {
        (0..=100)
            .step_by(self.cifar_kappa_step.max(1))
            .map(|k| k as f32)
            .collect()
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::quick()
    }
}

/// Parses the common CLI arguments of the experiment binaries.
///
/// Recognized: `--scale <name>`, `--n <attack_count>`, `--iters <n>`,
/// `--seed <n>`, `--fine` (paper κ grids), `--models <dir>`, `--out <dir>`,
/// `--obs <dir>` (dump telemetry artifacts; see [`crate::obs::ObsSession`]).
#[derive(Debug, Clone)]
pub struct CliArgs {
    /// Resolved scale.
    pub scale: Scale,
    /// Model cache directory.
    pub models_dir: String,
    /// Result output directory.
    pub out_dir: String,
    /// Observability artifact directory (`--obs`); `None` leaves telemetry
    /// at whatever `ADV_OBS` selects (off by default).
    pub obs_dir: Option<String>,
}

impl CliArgs {
    /// Parses `std::env::args`-style strings.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidConfig`] for unknown flags or scales and
    /// malformed numbers.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<CliArgs, EvalError> {
        let mut scale = Scale::quick();
        let mut models_dir = "models".to_string();
        let mut out_dir = "results".to_string();
        let mut obs_dir = None;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut next = |flag: &str| {
                it.next()
                    .ok_or_else(|| EvalError::InvalidConfig(format!("{flag} requires a value")))
            };
            match arg.as_str() {
                "--scale" => {
                    let name = next("--scale")?;
                    scale = Scale::from_name(&name).ok_or_else(|| {
                        EvalError::InvalidConfig(format!(
                            "unknown scale '{name}' (smoke|quick|paper)"
                        ))
                    })?;
                }
                "--n" => {
                    scale.attack_count = next("--n")?
                        .parse()
                        .map_err(|e| EvalError::InvalidConfig(format!("--n: {e}")))?;
                }
                "--iters" => {
                    scale.attack_iterations = next("--iters")?
                        .parse()
                        .map_err(|e| EvalError::InvalidConfig(format!("--iters: {e}")))?;
                }
                "--seed" => {
                    scale.seed = next("--seed")?
                        .parse()
                        .map_err(|e| EvalError::InvalidConfig(format!("--seed: {e}")))?;
                }
                "--fine" => {
                    scale.mnist_kappa_step = 5;
                    scale.cifar_kappa_step = 5;
                }
                "--models" => models_dir = next("--models")?,
                "--out" => out_dir = next("--out")?,
                "--obs" => obs_dir = Some(next("--obs")?),
                other => {
                    return Err(EvalError::InvalidConfig(format!(
                        "unknown argument '{other}'"
                    )))
                }
            }
        }
        Ok(CliArgs {
            scale,
            models_dir,
            out_dir,
            obs_dir,
        })
    }

    /// Parses the current process arguments (skipping argv\[0\]), exiting with
    /// a usage message on error.
    pub fn from_env() -> CliArgs {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: [--scale smoke|quick|paper] [--n N] [--iters N] [--seed N] [--fine] [--models DIR] [--out DIR] [--obs DIR]"
                );
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let (s, q, p) = (Scale::smoke(), Scale::quick(), Scale::paper());
        assert!(s.train_size < q.train_size && q.train_size < p.train_size);
        assert!(s.attack_iterations < q.attack_iterations);
        assert!(p.attack_iterations == 1000 && p.binary_search_steps == 9);
    }

    #[test]
    fn kappa_grids_match_paper_ranges() {
        let p = Scale::paper();
        let mk = p.mnist_kappas();
        assert_eq!(mk.first(), Some(&0.0));
        assert_eq!(mk.last(), Some(&40.0));
        assert_eq!(mk.len(), 9);
        let ck = p.cifar_kappas();
        assert_eq!(ck.last(), Some(&100.0));
        assert_eq!(ck.len(), 21);
    }

    #[test]
    fn from_name_roundtrip() {
        assert_eq!(Scale::from_name("smoke"), Some(Scale::smoke()));
        assert_eq!(Scale::from_name("paper"), Some(Scale::paper()));
        assert_eq!(Scale::from_name("bogus"), None);
    }

    #[test]
    fn cli_parsing() {
        let args = CliArgs::parse(
            [
                "--scale", "smoke", "--n", "5", "--seed", "7", "--out", "o", "--obs", "obs_out",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(args.scale.attack_count, 5);
        assert_eq!(args.scale.seed, 7);
        assert_eq!(args.out_dir, "o");
        assert_eq!(args.obs_dir.as_deref(), Some("obs_out"));
        assert!(CliArgs::parse(std::iter::empty())
            .unwrap()
            .obs_dir
            .is_none());
        assert!(CliArgs::parse(["--scale".to_string()]).is_err());
        assert!(CliArgs::parse(["--obs".to_string()]).is_err());
        assert!(CliArgs::parse(["--bogus".to_string()]).is_err());
        assert!(CliArgs::parse(["--scale".to_string(), "huge".to_string()]).is_err());
    }

    #[test]
    fn fine_flag_restores_paper_grid() {
        let args = CliArgs::parse(["--fine".to_string()]).unwrap();
        assert_eq!(args.scale.mnist_kappa_step, 5);
        assert_eq!(args.scale.cifar_kappa_step, 5);
    }
}
