//! Profiling probe: drives a served adversarial corpus through the batched
//! `adv-serve` engine with the `adv-profile` kernel profiler on, then
//! answers the question continuous profiling exists for: **where did the
//! wall time go?**
//!
//! The probe:
//!
//! 1. builds the paper's C&W-L2 / EAD-L1 corpus and serves it through a
//!    single-worker engine (one worker so the serving wall clock is the
//!    attribution denominator);
//! 2. prints the per-kernel accounting table and writes the collapsed
//!    -stack dump (flamegraph folded format) plus a JSON report under
//!    `<out>/profile/`;
//! 3. renders the slowest latency-bucket exemplar's causal trace — queue
//!    wait, batch stages, kernels — as an indented span tree;
//! 4. **fails (exit 1)** when less than `--min-attribution` (default 0.80)
//!    of the serving wall time is attributed to named kernel scopes — the
//!    CI guard that instrumentation coverage never rots.
//!
//! Usage: `profile_probe [--scale smoke|quick|paper] [--models <dir>]
//! [--out <dir>] …`; `PROFILE_REQUESTS` overrides the request volume
//! (default 4000) and `PROFILE_MIN_ATTRIBUTION` the gate floor.

use adv_eval::config::CliArgs;
use adv_eval::sweep::{AttackKind, SweepRunner};
use adv_eval::zoo::{Scenario, Variant, Zoo};
use adv_magnet::{DefenseScheme, MagnetDefense};
use adv_profile::TraceId;
use adv_serve::{RequestTag, ServeConfig, ServeEngine};
use adv_tensor::Tensor;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Adversarial corpus size per attack (two attacks).
const PER_ATTACK: usize = 32;
/// Default request volume.
const DEFAULT_REQUESTS: usize = 4_000;
/// Concurrent in-flight submissions per wave.
const WAVE: usize = 256;
/// Default attribution floor: ≥80% of serving wall time must land in
/// named kernel scopes.
const DEFAULT_MIN_ATTRIBUTION: f64 = 0.80;

struct Sample {
    input: Tensor,
    attack: u32,
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(default)
        .max(1)
}

/// The `i`-th request: corpus sample `i % len` with a small per-request
/// brightness jitter, so the elementwise prep kernels see real work too.
fn request_input(corpus: &[Sample], i: usize, total: usize) -> (Tensor, u32) {
    let s = &corpus[i % corpus.len()];
    let shift = 0.05 * (i as f32 / total.max(1) as f32);
    (s.input.add_scalar(shift).clamp(0.0, 1.0), s.attack)
}

fn start_engine(defense: Arc<MagnetDefense>) -> Result<ServeEngine, Box<dyn std::error::Error>> {
    Ok(ServeEngine::start(
        defense,
        ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(1),
            queue_capacity: WAVE * 2,
            workers: 1,
            scheme: DefenseScheme::Full,
            observer: None,
            ..ServeConfig::default()
        },
    )?)
}

/// Submits `total` requests in bounded waves; returns the wall-clock
/// serving time and the trace id of the slowest observed response.
fn drive(
    engine: &ServeEngine,
    corpus: &[Sample],
    total: usize,
) -> Result<(Duration, TraceId), Box<dyn std::error::Error>> {
    // lint-ok(gated-clocks): end-to-end request latency is what the probe reports
    let started = Instant::now();
    let mut slowest = (Duration::ZERO, TraceId::NONE);
    let mut next = 0usize;
    while next < total {
        let wave = WAVE.min(total - next);
        let pending: Vec<_> = (0..wave)
            .map(|k| {
                let i = next + k;
                let (input, attack) = request_input(corpus, i, total);
                engine.submit_tagged(input, RequestTag::new(1, attack, i as u32))
            })
            .collect::<Result<_, _>>()?;
        for p in pending {
            let response = p.wait()?;
            if response.latency > slowest.0 {
                slowest = (response.latency, response.trace);
            }
        }
        next += wave;
    }
    Ok((started.elapsed(), slowest.1))
}

fn kernel_json(r: &adv_profile::KernelReport) -> String {
    format!(
        "{{\"kernel\":\"{}\",\"calls\":{},\"wall_ns\":{},\"self_ns\":{},\"gflops\":{:.4},\"gbytes_per_s\":{:.4}}}",
        r.kind.name(),
        r.calls,
        r.wall_ns,
        r.self_ns,
        r.gflops(),
        r.gbytes_per_s(),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = CliArgs::from_env();
    let obs = adv_eval::obs::ObsSession::from_args(&args);
    args.scale.attack_count = PER_ATTACK;
    let total = env_usize("PROFILE_REQUESTS", DEFAULT_REQUESTS);
    let min_attribution = env_f64("PROFILE_MIN_ATTRIBUTION", DEFAULT_MIN_ATTRIBUTION);

    // Corpus construction runs unprofiled: the gate is about the serving
    // path, and attack generation would drown it in the report.
    let zoo = Zoo::new(&args.models_dir, args.scale);
    let mut runner = SweepRunner::new(&zoo, Scenario::Mnist)?;
    let defense = Arc::new(zoo.defense(Scenario::Mnist, Variant::DefaultJsd)?);
    let mut corpus = Vec::new();
    for (attack_idx, kind) in AttackKind::figure_trio().into_iter().take(2).enumerate() {
        let outcome = runner.outcome(&kind, 0.0)?;
        for i in 0..outcome.adversarial.shape().dims()[0] {
            corpus.push(Sample {
                input: outcome.adversarial.index_axis0(i)?,
                attack: attack_idx as u32,
            });
        }
    }
    println!(
        "profile_probe: {} | corpus {} | {total} requests in waves of {WAVE} | floor {:.0}%",
        defense.name(),
        corpus.len(),
        min_attribution * 100.0
    );

    adv_profile::set_enabled(true);
    adv_profile::reset();
    let engine = start_engine(defense)?;
    let (elapsed, slow_trace) = drive(&engine, &corpus, total)?;
    engine.shutdown();
    adv_profile::flush_current_thread();

    let wall_ns = elapsed.as_nanos() as u64;
    let self_ns = adv_profile::total_kernel_self_ns();
    // Kernel self time accumulates across every profiled thread (the
    // worker plus the submitting main thread), so with overlap the ratio
    // can legitimately exceed 1.0; the gate only cares about the floor.
    let attribution = self_ns as f64 / wall_ns.max(1) as f64;
    println!(
        "\nserved {total} requests in {elapsed:.2?} ({:.0} req/s)",
        total as f64 / elapsed.as_secs_f64()
    );
    println!("\n{}", adv_profile::kernel_table());
    println!(
        "attribution: {self_ns} kernel-self ns / {wall_ns} wall ns = {:.1}%",
        attribution * 100.0
    );

    // Causal drill-down: the slowest latency bucket's exemplar, falling
    // back to the slowest response this run observed directly.
    let exemplar = adv_profile::latency_exemplars()
        .into_iter()
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .map(|(_, id)| TraceId::from_u64(id))
        .filter(|t| !t.is_none())
        .unwrap_or(slow_trace);
    if !exemplar.is_none() {
        let rendered = adv_profile::render_trace(exemplar);
        let mut lines = rendered.lines();
        println!("\nslowest-bucket exemplar:");
        for line in lines.by_ref().take(24) {
            println!("{line}");
        }
        if lines.next().is_some() {
            println!("  …");
        }
    }

    // Artifacts: collapsed stacks + JSON report under <out>/profile/.
    let profile_dir = std::path::Path::new(&args.out_dir).join("profile");
    std::fs::create_dir_all(&profile_dir)?;
    let folded_path = profile_dir.join("profile_collapsed.folded");
    std::fs::write(&folded_path, adv_profile::collapsed())?;
    let report = format!(
        "{{\n  \"requests\": {total},\n  \"elapsed_s\": {:.4},\n  \"wall_ns\": {wall_ns},\n  \"kernel_self_ns\": {self_ns},\n  \"attribution\": {attribution:.4},\n  \"min_attribution\": {min_attribution:.4},\n  \"dropped_stacks\": {},\n  \"dropped_spans\": {},\n  \"kernels\": [\n    {}\n  ]\n}}\n",
        elapsed.as_secs_f64(),
        adv_profile::dropped_stacks(),
        adv_profile::dropped_spans(),
        adv_profile::kernel_reports()
            .iter()
            .map(kernel_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    let report_path = profile_dir.join("profile_report.json");
    std::fs::write(&report_path, report)?;
    println!(
        "\nartifacts: {} and {}",
        folded_path.display(),
        report_path.display()
    );

    if let Some(obs) = obs {
        obs.finish()?;
    }
    if attribution < min_attribution {
        eprintln!(
            "FAIL: only {:.1}% of serving wall time attributed to named kernel scopes (floor {:.1}%)",
            attribution * 100.0,
            min_attribution * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "PASS: {:.1}% ≥ {:.1}% of wall time attributed to named kernels",
        attribution * 100.0,
        min_attribution * 100.0
    );
    Ok(())
}
