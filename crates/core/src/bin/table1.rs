//! Reproduces **Table I**: comparison of C&W and EAD (both rules, four β
//! values) against the *default* MagNet on MNIST and CIFAR — best defended
//! ASR over the κ grid plus mean L1/L2 distortions of successful examples.

use adv_eval::config::CliArgs;
use adv_eval::report::write_csv;
use adv_eval::tables::{format_table1, table1};
use adv_eval::zoo::{Scenario, Zoo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliArgs::from_env();
    let zoo = Zoo::new(&args.models_dir, args.scale);

    for scenario in [Scenario::Mnist, Scenario::Cifar] {
        println!("\n=== Table I ({}) ===", scenario.name());
        let rows = table1(&zoo, scenario)?;
        println!("{}", format_table1(&rows));
        let csv_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.attack.clone(),
                    r.beta.map(|b| b.to_string()).unwrap_or_else(|| "NA".into()),
                    r.kappa.to_string(),
                    format!("{:.4}", r.asr),
                    r.l1.map(|v| format!("{v:.4}"))
                        .unwrap_or_else(|| "-".into()),
                    r.l2.map(|v| format!("{v:.4}"))
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        write_csv(
            format!("{}/table1_{}.csv", args.out_dir, scenario.name()),
            &["attack", "beta", "kappa", "asr", "mean_l1", "mean_l2"],
            &csv_rows,
        )?;
    }
    println!("\nCSV written to {}/table1_*.csv", args.out_dir);
    Ok(())
}
