//! Extension experiment (beyond the paper's tables): oblivious vs gray-box
//! threat models.
//!
//! The paper's §I contrasts its *oblivious* setting with Carlini & Wagner's
//! gray-box break of MagNet (arXiv:1711.08478), where the attacker knows an
//! auto-encoder shields the classifier and attacks the composition
//! `F(AE(x))`. This binary runs the same attacks both ways and reports how
//! much the extra knowledge buys against the full defense.

use adv_eval::config::CliArgs;
use adv_eval::experiment::{evaluate_defense, select_attack_set};
use adv_eval::report::{pct, text_table, write_csv};
use adv_eval::sweep::AttackKind;
use adv_eval::zoo::{Scenario, Variant, Zoo};
use adv_magnet::graybox::ReformedModel;
use adv_magnet::DefenseScheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliArgs::from_env();
    let zoo = Zoo::new(&args.models_dir, args.scale);

    let mut rows = Vec::new();
    for scenario in [Scenario::Mnist, Scenario::Cifar] {
        let mut classifier = zoo.classifier(scenario)?;
        let data = zoo.data(scenario);
        let set = select_attack_set(
            &mut classifier,
            &data.test,
            zoo.scale().attack_count,
            zoo.scale().seed ^ 0x64AB,
        )?;
        let mut defense = zoo.defense(scenario, Variant::Default)?;

        // Gray-box target: classifier composed with the *actual* reformer.
        let reformer = match scenario {
            Scenario::Mnist => {
                zoo.mnist_autoencoders(
                    zoo.scale().default_filters,
                    adv_nn::loss::ReconstructionLoss::MeanSquaredError,
                )?
                .ae_one
            }
            Scenario::Cifar => zoo.cifar_autoencoder(
                zoo.scale().default_filters,
                adv_nn::loss::ReconstructionLoss::MeanSquaredError,
            )?,
        };
        let mut graybox_target = ReformedModel::new(reformer, classifier.clone());

        let unit = match scenario {
            Scenario::Mnist => zoo.scale().kappa_unit_mnist,
            Scenario::Cifar => zoo.scale().kappa_unit_cifar,
        };
        let kappa = match scenario {
            Scenario::Mnist => 10.0,
            Scenario::Cifar => 25.0,
        };
        for kind in AttackKind::figure_trio() {
            let attack = kind.build(kappa * unit, zoo.scale())?;
            // Oblivious: craft on the plain classifier.
            let oblivious = attack.run(&mut classifier, &set.images, &set.labels)?;
            let ob_eval = evaluate_defense(&mut defense, &oblivious, &set.labels)?;
            // Gray-box: craft through the reformer composition.
            let gray = attack.run(&mut graybox_target, &set.images, &set.labels)?;
            let gb_eval = evaluate_defense(&mut defense, &gray, &set.labels)?;
            rows.push(vec![
                scenario.name().to_string(),
                kind.label(),
                format!("{kappa}"),
                pct(ob_eval.undefended_asr),
                pct(1.0 - ob_eval.accuracy_for(DefenseScheme::Full)),
                pct(gb_eval.undefended_asr),
                pct(1.0 - gb_eval.accuracy_for(DefenseScheme::Full)),
            ]);
        }
    }

    println!("=== Oblivious vs gray-box threat models (extension) ===\n");
    println!(
        "{}",
        text_table(
            &[
                "scenario",
                "attack",
                "kappa",
                "oblivious crafted %",
                "oblivious defended-ASR %",
                "graybox crafted %",
                "graybox defended-ASR %",
            ],
            &rows
        )
    );
    write_csv(
        format!("{}/graybox_extension.csv", args.out_dir),
        &[
            "scenario",
            "attack",
            "kappa",
            "oblivious_crafted",
            "oblivious_asr",
            "graybox_crafted",
            "graybox_asr",
        ],
        &rows,
    )?;
    println!(
        "Gray-box crafting optimizes through the reformer, so its examples\n\
         survive reforming by construction — the stronger threat model the\n\
         paper argues is unnecessary for breaking MagNet with L1 attacks."
    );
    Ok(())
}
