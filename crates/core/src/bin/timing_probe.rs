//! Developer utility: measures the cost of the building blocks (classifier
//! training, AE training, one attack run) at the configured scale, so the
//! default `quick` constants stay honest on the target machine.

use adv_eval::config::CliArgs;
use adv_eval::obs::ObsSession;
use adv_eval::sweep::{AttackKind, SweepRunner};
use adv_eval::zoo::{Scenario, Variant, Zoo};
use adv_obs::Span;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliArgs::from_env();
    let obs = ObsSession::from_args(&args);
    let zoo = Zoo::new(&args.models_dir, args.scale);
    println!("scale: {:?}", zoo.scale());

    for scenario in [Scenario::Mnist, Scenario::Cifar] {
        // lint-ok(gated-clocks): wall-clock measurement is this probe's purpose
        let t0 = Instant::now();
        let bundle = {
            let _span = Span::enter("probe/bundle");
            zoo.bundle(scenario)?
        };
        println!(
            "{}: classifier ready in {:.1?}; clean accuracy {:.1}%",
            scenario.name(),
            t0.elapsed(),
            bundle.clean_accuracy * 100.0
        );

        // lint-ok(gated-clocks): wall-clock measurement is this probe's purpose
        let t0 = Instant::now();
        {
            let _span = Span::enter("probe/defense");
            let _defense = zoo.defense(scenario, Variant::Default)?;
        }
        println!(
            "{}: default defense in {:.1?}",
            scenario.name(),
            t0.elapsed()
        );

        // lint-ok(gated-clocks): wall-clock measurement is this probe's purpose
        let t0 = Instant::now();
        let mut runner = SweepRunner::new(&zoo, scenario)?;
        let kind = AttackKind::Ead {
            rule: adv_attacks::DecisionRule::ElasticNet,
            beta: 0.01,
        };
        let outcome = {
            let _span = Span::enter("probe/ead");
            runner.outcome(&kind, 10.0)?
        };
        println!(
            "{}: one EAD run ({} images) in {:.1?}; undefended ASR {:.1}%",
            scenario.name(),
            outcome.success.len(),
            t0.elapsed(),
            outcome.success_rate() * 100.0
        );

        // lint-ok(gated-clocks): wall-clock measurement is this probe's purpose
        let t0 = Instant::now();
        let cw = {
            let _span = Span::enter("probe/cw");
            runner.outcome(&AttackKind::Cw, 10.0)?
        };
        println!(
            "{}: one C&W run in {:.1?}; undefended ASR {:.1}%",
            scenario.name(),
            t0.elapsed(),
            cw.success_rate() * 100.0
        );
    }
    if let Some(obs) = obs {
        obs.finish()?;
    }
    Ok(())
}
