//! Developer utility: detailed breakdown of one attack-vs-defense matchup —
//! undefended ASR, distortion, detection rate, reformer correction rate.

use adv_eval::config::CliArgs;
use adv_eval::experiment::successful_examples;
use adv_eval::obs::ObsSession;
use adv_eval::sweep::{AttackKind, SweepRunner};
use adv_eval::zoo::{Scenario, Variant, Zoo};
use adv_magnet::DefenseScheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliArgs::from_env();
    let obs = ObsSession::from_args(&args);
    let zoo = Zoo::new(&args.models_dir, args.scale);
    for scenario in [Scenario::Mnist, Scenario::Cifar] {
        println!("\n########## {} ##########", scenario.name());
        let kappas: Vec<f32> = match scenario {
            Scenario::Mnist => vec![0.0, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0],
            Scenario::Cifar => vec![0.0, 10.0, 25.0, 50.0, 75.0, 100.0],
        };
        let mut runner = SweepRunner::new(&zoo, scenario)?;
        let mut defense = zoo.defense(scenario, Variant::Default)?;
        for kind in AttackKind::figure_trio() {
            println!("\n--- {} ---", kind.label());
            for &kappa in &kappas {
                let outcome = runner.outcome(&kind, kappa)?;
                let labels = runner.attack_set().labels.clone();
                let eval = adv_eval::experiment::evaluate_defense(&mut defense, &outcome, &labels)?;
                let detect_rate = if let Some((adv, _)) = successful_examples(&outcome, &labels)? {
                    let flags = defense.detect(&adv)?;
                    flags.iter().filter(|&&f| f).count() as f32 / flags.len() as f32
                } else {
                    f32::NAN
                };
                println!(
                    "kappa {kappa:>5}: undef-ASR {:>5.1}% | L1 {:>7} L2 {:>6} | det {:>5.1}% | acc none {:>5.1}% det {:>5.1}% ref {:>5.1}% full {:>5.1}%",
                    eval.undefended_asr * 100.0,
                    eval.mean_l1.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into()),
                    eval.mean_l2.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into()),
                    detect_rate * 100.0,
                    eval.accuracy_for(DefenseScheme::None) * 100.0,
                    eval.accuracy_for(DefenseScheme::DetectorOnly) * 100.0,
                    eval.accuracy_for(DefenseScheme::ReformerOnly) * 100.0,
                    eval.accuracy_for(DefenseScheme::Full) * 100.0,
                );
            }
        }
    }
    if let Some(obs) = obs {
        obs.finish()?;
    }
    Ok(())
}
