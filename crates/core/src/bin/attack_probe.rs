//! Developer utility: inspects why/whether attacks succeed on the victim —
//! logit margins, and ASR across initial_c / iteration settings.

use adv_attacks::{Attack, DecisionRule, EadConfig, ElasticNetAttack};
use adv_eval::config::CliArgs;
use adv_eval::experiment::select_attack_set;
use adv_eval::obs::ObsSession;
use adv_eval::zoo::{Scenario, Zoo};
use adv_nn::Mode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliArgs::from_env();
    let obs = ObsSession::from_args(&args);
    let zoo = Zoo::new(&args.models_dir, args.scale);
    for scenario in [Scenario::Mnist, Scenario::Cifar] {
        let mut clf = zoo.classifier(scenario)?;
        let data = zoo.data(scenario);
        let set = select_attack_set(&mut clf, &data.test, 16, 1)?;
        let logits = clf.forward(&set.images, Mode::Eval)?;
        let margins = adv_attacks::loss::adversarial_margins(&logits, &set.labels)?;
        let mean_margin: f32 = margins.iter().sum::<f32>() / margins.len() as f32;
        println!(
            "{}: logit margin mean {:.2}, min {:.2}, max {:.2}",
            scenario.name(),
            mean_margin,
            margins.iter().cloned().fold(f32::INFINITY, f32::min),
            margins.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
        );
        for (c0, iters, bs) in [
            (1e-3f32, 60, 4),
            (0.1, 60, 4),
            (1.0, 100, 4),
            (10.0, 100, 4),
            (1.0, 200, 6),
        ] {
            let attack = ElasticNetAttack::new(EadConfig {
                kappa: 10.0,
                beta: 0.01,
                iterations: iters,
                binary_search_steps: bs,
                initial_c: c0,
                learning_rate: 0.01,
                rule: DecisionRule::ElasticNet,
                fista: false,
            })?;
            // lint-ok(gated-clocks): attack wall-clock is the probe's output
            let t0 = std::time::Instant::now();
            let o = attack.run(&mut clf, &set.images, &set.labels)?;
            println!(
                "  c0={c0:<6} iters={iters:<4} bs={bs}: ASR {:>5.1}%  L1 {:?}  L2 {:?}  ({:.1?})",
                o.success_rate() * 100.0,
                o.mean_l1_successful().map(|v| (v * 100.0).round() / 100.0),
                o.mean_l2_successful().map(|v| (v * 100.0).round() / 100.0),
                t0.elapsed()
            );
        }
    }
    if let Some(obs) = obs {
        obs.finish()?;
    }
    Ok(())
}
