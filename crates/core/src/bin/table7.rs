//! Reproduces **Table VII**: best EAD attack success rate on CIFAR against
//! the Default and D+256 MagNet variants.

use adv_eval::config::CliArgs;
use adv_eval::report::write_csv;
use adv_eval::tables::{best_asr_table, format_best_asr_table};
use adv_eval::zoo::{Scenario, Variant, Zoo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliArgs::from_env();
    let zoo = Zoo::new(&args.models_dir, args.scale);
    println!("=== Table VII (best EAD ASR % on CIFAR) ===");
    let rows = best_asr_table(&zoo, Scenario::Cifar)?;
    println!("{}", format_best_asr_table(&rows, Scenario::Cifar));
    let variants = Variant::for_scenario(Scenario::Cifar);
    let mut headers: Vec<String> = vec!["rule".into(), "beta".into()];
    headers.extend(variants.iter().map(|v| v.label().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.rule.label().to_string(), r.beta.to_string()];
            row.extend(r.asr.iter().map(|a| format!("{a:.4}")));
            row
        })
        .collect();
    write_csv(
        format!("{}/table7_cifar.csv", args.out_dir),
        &header_refs,
        &csv_rows,
    )?;
    Ok(())
}
