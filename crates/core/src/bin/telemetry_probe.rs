//! Telemetry probe: drives ≥10k tagged requests through the batched
//! `adv-serve` engine with an `adv-telemetry` recorder tapped in, then
//! answers the two questions the telemetry store exists for:
//!
//! 1. **Drift** — windowed detector-score quantiles (p50/p90) and degraded
//!    rate over the recorded tick range, straight off the sealed chunks.
//! 2. **Replay A/B** — the recorded time range replayed through the same
//!    defense under `Full` vs `DetectorOnly`, reporting verdict flips and
//!    the attack success rate delta.
//!
//! It also times an observer-on vs observer-off pass over the same corpus
//! and reports the recording overhead ratio, and writes the whole report as
//! JSON to `<out>/telemetry_report.json`.
//!
//! Usage: `telemetry_probe [--scale smoke|quick|paper] [--models <dir>]
//! [--out <dir>] …`; `TELEMETRY_REQUESTS` overrides the request count
//! (default 12000, floor 1).

use adv_eval::config::CliArgs;
use adv_eval::sweep::{AttackKind, SweepRunner};
use adv_eval::zoo::{Scenario, Variant, Zoo};
use adv_magnet::{DefenseScheme, MagnetDefense};
use adv_serve::{RequestTag, ResponseObserver, ServeConfig, ServeEngine};
use adv_telemetry::{
    drift_windows, replay_range, ChunkReader, RecorderConfig, ReplayReport, RowFilter,
    TelemetryRecorder, VecSamples, WindowAggregate,
};
use adv_tensor::Tensor;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Adversarial corpus size per attack (two attacks).
const PER_ATTACK: usize = 64;
/// Default request volume (≥10k per the probe's contract).
const DEFAULT_REQUESTS: usize = 12_000;
/// Concurrent in-flight submissions per wave.
const WAVE: usize = 512;
/// Drift windows reported.
const WINDOWS: usize = 8;

struct Sample {
    input: Tensor,
    label: usize,
    attack: u32,
}

fn requests_from_env() -> usize {
    std::env::var("TELEMETRY_REQUESTS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(DEFAULT_REQUESTS)
        .max(1)
}

/// The `i`-th request: corpus sample `i % len` plus a slowly growing
/// brightness drift, so detector scores move across the recorded range and
/// the drift windows have something to show.
fn request_input(corpus: &[Sample], i: usize, total: usize) -> (Tensor, u32, usize) {
    let s = &corpus[i % corpus.len()];
    let progress = i as f32 / total.max(1) as f32;
    let shift = 0.08 * progress * (1.0 + ((i % 7) as f32) / 14.0);
    let input = s.input.add_scalar(shift).clamp(0.0, 1.0);
    (input, s.attack, s.label)
}

fn start_engine(
    defense: Arc<MagnetDefense>,
    observer: Option<Arc<dyn ResponseObserver>>,
) -> Result<ServeEngine, Box<dyn std::error::Error>> {
    Ok(ServeEngine::start(
        defense,
        ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(1),
            queue_capacity: WAVE * 2,
            workers: 2,
            scheme: DefenseScheme::Full,
            observer,
            ..ServeConfig::default()
        },
    )?)
}

/// Replay fodder kept from a driven pass: each submitted input with its
/// ground-truth label, in submission (= sample id) order.
type SubmittedInputs = Vec<(Tensor, Option<usize>)>;

/// Submits `total` tagged requests in bounded waves; returns the submitted
/// inputs with labels (replay fodder) and the wall-clock serving time.
fn drive(
    engine: &ServeEngine,
    corpus: &[Sample],
    total: usize,
    keep: bool,
) -> Result<(SubmittedInputs, Duration), Box<dyn std::error::Error>> {
    let mut submitted = Vec::with_capacity(if keep { total } else { 0 });
    // lint-ok(gated-clocks): submission wall-clock feeds the probe's throughput figure
    let started = Instant::now();
    let mut next = 0usize;
    while next < total {
        let wave = WAVE.min(total - next);
        let pending: Vec<_> = (0..wave)
            .map(|k| {
                let i = next + k;
                let (input, attack, label) = request_input(corpus, i, total);
                if keep {
                    submitted.push((input.clone(), Some(label)));
                }
                engine.submit_tagged(input, RequestTag::new(1, attack, i as u32))
            })
            .collect::<Result<_, _>>()?;
        for p in pending {
            p.wait()?;
        }
        next += wave;
    }
    Ok((submitted, started.elapsed()))
}

fn window_json(w: &WindowAggregate) -> String {
    let sketch = w.sketches.first();
    let q = |q: f64| {
        sketch
            .and_then(|s| s.quantile(q))
            .map_or("null".to_string(), |v| format!("{v:.6}"))
    };
    format!(
        "{{\"start_tick\":{},\"end_tick\":{},\"rows\":{},\"detected_rate\":{:.6},\"degraded_rate\":{:.6},\"score_p50\":{},\"score_p90\":{}}}",
        w.start_tick,
        w.end_tick,
        w.rows,
        w.detected_rate(),
        w.degraded_rate(),
        q(0.50),
        q(0.90),
    )
}

fn replay_json(r: &ReplayReport) -> String {
    let scheme = |o: &adv_telemetry::SchemeOutcome| {
        format!(
            "{{\"scheme\":\"{:?}\",\"detected\":{},\"defended\":{},\"detected_rate\":{:.6},\"attack_success_rate\":{:.6}}}",
            o.scheme, o.detected, o.defended, o.detected_rate, o.attack_success_rate
        )
    };
    format!(
        "{{\"rows\":{},\"unresolved\":{},\"with_truth\":{},\"verdict_flips\":{},\"a\":{},\"b\":{}}}",
        r.rows,
        r.unresolved,
        r.with_truth,
        r.verdict_flips,
        scheme(&r.a),
        scheme(&r.b),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = CliArgs::from_env();
    let obs = adv_eval::obs::ObsSession::from_args(&args);
    args.scale.attack_count = PER_ATTACK;
    let total = requests_from_env();
    let zoo = Zoo::new(&args.models_dir, args.scale);
    let mut runner = SweepRunner::new(&zoo, Scenario::Mnist)?;
    let defense = Arc::new(zoo.defense(Scenario::Mnist, Variant::DefaultJsd)?);

    // Adversarial corpus: the paper's C&W-L2 vs EAD-L1 contrast pair.
    let labels = runner.attack_set().labels.clone();
    let mut corpus = Vec::new();
    for (attack_idx, kind) in AttackKind::figure_trio().into_iter().take(2).enumerate() {
        let outcome = runner.outcome(&kind, 0.0)?;
        for (i, &label) in labels.iter().enumerate() {
            corpus.push(Sample {
                input: outcome.adversarial.index_axis0(i)?,
                label,
                attack: attack_idx as u32,
            });
        }
    }
    println!(
        "telemetry_probe: {} | corpus {} | {total} requests in waves of {WAVE}",
        defense.name(),
        corpus.len()
    );

    // Recorded pass: engine with the telemetry sink tapped in.
    let tele_dir = std::path::Path::new(&args.out_dir).join("telemetry");
    std::fs::remove_dir_all(&tele_dir).ok();
    let recorder = TelemetryRecorder::start(RecorderConfig {
        buffer: 8192,
        ..RecorderConfig::new(&tele_dir)
    })?;
    let engine = start_engine(defense.clone(), Some(Arc::new(recorder.sink())))?;
    let (submitted, recorded_elapsed) = drive(&engine, &corpus, total, true)?;
    engine.shutdown();
    recorder.flush()?;
    let dropped = recorder.sink().dropped();
    recorder.shutdown()?;
    println!(
        "recorded pass: {total} requests in {recorded_elapsed:.2?} ({:.0} req/s), {dropped} rows dropped",
        total as f64 / recorded_elapsed.as_secs_f64()
    );

    // Drift: windowed score quantiles + degraded rate over the full range.
    let reader = ChunkReader::open(&tele_dir)?;
    assert!(!reader.entries().is_empty(), "no sealed chunks recorded");
    let recorded_rows: u64 = reader
        .entries()
        .iter()
        .map(|e| u64::from(e.stats.rows))
        .sum();
    assert!(
        recorded_rows as usize + dropped as usize >= total,
        "rows lost untracked: {recorded_rows} recorded + {dropped} dropped < {total}"
    );
    let t0 = reader
        .entries()
        .iter()
        .map(|e| e.stats.tick_min)
        .min()
        .unwrap_or(0);
    let t1 = reader
        .entries()
        .iter()
        .map(|e| e.stats.tick_max)
        .max()
        .unwrap_or(0)
        + 1;
    let windows = drift_windows(&reader, t0..t1, WINDOWS, &RowFilter::default())?;
    assert!(
        windows.iter().any(|w| w.rows > 0),
        "drift windows are all empty"
    );
    println!("\ndrift windows ({WINDOWS} over ticks {t0}..{t1}):");
    for (i, w) in windows.iter().enumerate() {
        let p50 = w.sketches.first().and_then(|s| s.quantile(0.50));
        let p90 = w.sketches.first().and_then(|s| s.quantile(0.90));
        println!(
            "  w{i}: {:>6} rows | det0 p50 {:>9.5} p90 {:>9.5} | detected {:>5.1}% degraded {:>4.1}%",
            w.rows,
            p50.unwrap_or(f32::NAN),
            p90.unwrap_or(f32::NAN),
            w.detected_rate() * 100.0,
            w.degraded_rate() * 100.0,
        );
    }

    // Replay A/B: same rows, Full vs DetectorOnly, verdict flips + ASR.
    let provider = VecSamples::new(submitted);
    let replay = replay_range(
        &reader,
        &provider,
        defense.as_ref(),
        t0..t1,
        &RowFilter::default(),
        DefenseScheme::Full,
        DefenseScheme::DetectorOnly,
        32,
    )?;
    println!(
        "\nreplay A/B over {} rows ({} labelled, {} unresolved):",
        replay.rows, replay.with_truth, replay.unresolved
    );
    for o in [&replay.a, &replay.b] {
        println!(
            "  {:>12?}: detected {:>5.1}% | ASR {:>5.1}%",
            o.scheme,
            o.detected_rate * 100.0,
            o.attack_success_rate * 100.0
        );
    }
    println!("  verdict flips: {}", replay.verdict_flips);

    // Overhead: observer-on vs observer-off over a smaller timed slice.
    let probe_n = total.min(2_000);
    let bare = start_engine(defense.clone(), None)?;
    let (_, off_elapsed) = drive(&bare, &corpus, probe_n, false)?;
    bare.shutdown();
    let overhead_dir = std::path::Path::new(&args.out_dir).join("telemetry_overhead");
    std::fs::remove_dir_all(&overhead_dir).ok();
    let rec2 = TelemetryRecorder::start(RecorderConfig {
        buffer: 8192,
        ..RecorderConfig::new(&overhead_dir)
    })?;
    let tapped = start_engine(defense.clone(), Some(Arc::new(rec2.sink())))?;
    let (_, on_elapsed) = drive(&tapped, &corpus, probe_n, false)?;
    tapped.shutdown();
    rec2.shutdown()?;
    std::fs::remove_dir_all(&overhead_dir).ok();
    let overhead = on_elapsed.as_secs_f64() / off_elapsed.as_secs_f64();
    println!(
        "\noverhead: {probe_n} requests, observer off {off_elapsed:.2?} vs on {on_elapsed:.2?} ({:+.2}%)",
        (overhead - 1.0) * 100.0
    );

    // JSON report.
    let report = format!(
        "{{\n  \"requests\": {total},\n  \"recorded_rows\": {recorded_rows},\n  \"dropped_rows\": {dropped},\n  \"elapsed_s\": {:.3},\n  \"overhead_ratio\": {overhead:.4},\n  \"drift_windows\": [\n    {}\n  ],\n  \"replay\": {}\n}}\n",
        recorded_elapsed.as_secs_f64(),
        windows.iter().map(window_json).collect::<Vec<_>>().join(",\n    "),
        replay_json(&replay),
    );
    std::fs::create_dir_all(&args.out_dir)?;
    let report_path = std::path::Path::new(&args.out_dir).join("telemetry_report.json");
    std::fs::write(&report_path, report)?;
    println!("report written to {}", report_path.display());

    if let Some(obs) = obs {
        obs.finish()?;
    }
    Ok(())
}
