//! Reproduces **Figure 11**: EAD grid vs the four defense schemes on CIFAR,
//! against the D+256 MagNet (wide auto-encoders).

use adv_eval::config::CliArgs;
use adv_eval::figures::{format_panel, panels_to_csv_rows, scheme_ablation_grid};
use adv_eval::report::write_csv;
use adv_eval::zoo::{Scenario, Variant, Zoo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliArgs::from_env();
    let zoo = Zoo::new(&args.models_dir, args.scale);
    println!("=== Figure 11 (CIFAR: EAD grid vs schemes, D+256 MagNet) ===\n");
    let panels = scheme_ablation_grid(&zoo, Scenario::Cifar, Variant::Robust)?;
    for panel in &panels {
        println!("{}", format_panel(panel));
    }
    write_csv(
        format!("{}/fig11_cifar_256.csv", args.out_dir),
        &["panel", "curve", "kappa", "accuracy"],
        &panels_to_csv_rows(&panels),
    )?;
    let svgs = adv_eval::plot::write_panels_svg(&panels, format!("{}/svg", args.out_dir), "fig11")?;
    println!("SVG panels written: {svgs:?} under {}/svg/", args.out_dir);
    Ok(())
}
