//! Reproduces **Figure 1**: grids of adversarial examples from C&W and EAD
//! against the default MagNet, written as PGM/PPM files plus ASCII pairs on
//! the terminal, with per-example bypass status.

use adv_eval::config::CliArgs;
use adv_eval::experiment::successful_examples;
use adv_eval::render::{ascii_pair, write_pgm, write_ppm};
use adv_eval::sweep::{AttackKind, SweepRunner};
use adv_eval::zoo::{Scenario, Variant, Zoo};
use adv_magnet::{DefenseScheme, Verdict};
use adv_nn::train::gather0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliArgs::from_env();
    let zoo = Zoo::new(&args.models_dir, args.scale);

    for scenario in [Scenario::Mnist, Scenario::Cifar] {
        println!("\n=== Figure 1 ({}) ===", scenario.name());
        let kappa = match scenario {
            Scenario::Mnist => 15.0,
            Scenario::Cifar => 20.0,
        };
        let mut runner = SweepRunner::new(&zoo, scenario)?;
        let defense = zoo.defense(scenario, Variant::Default)?;

        for kind in [
            AttackKind::Cw,
            AttackKind::Ead {
                rule: adv_attacks::DecisionRule::ElasticNet,
                beta: 0.1,
            },
        ] {
            let outcome = runner.outcome(&kind, kappa)?;
            let labels = runner.attack_set().labels.clone();
            let originals = runner.attack_set().images.clone();
            let Some((adv, adv_labels)) = successful_examples(&outcome, &labels)? else {
                println!("{}: no successful examples", kind.label());
                continue;
            };
            let verdicts = defense.classify(&adv, DefenseScheme::Full)?;

            let show = adv_labels.len().min(4);
            println!("\n--- {} (kappa={kappa}) ---", kind.label());
            for i in 0..show {
                // Match the adversarial example back to its original.
                let orig_idx = outcome
                    .success
                    .iter()
                    .enumerate()
                    .filter(|(_, &s)| s)
                    .map(|(j, _)| j)
                    .nth(i)
                    .expect("success index exists");
                let orig = gather0(&originals, &[orig_idx])?;
                let one = gather0(&adv, &[i])?;
                let status = match verdicts[i] {
                    Verdict::Detected => "DETECTED by MagNet ✗".to_string(),
                    Verdict::Classified(p) if p == adv_labels[i] => {
                        format!("reformed to correct class {p} ✗")
                    }
                    Verdict::Classified(p) => {
                        format!("BYPASSES MagNet → class {p} ✓")
                    }
                };
                let header = format!(
                    "true label {} | original (left) vs adversarial (right) | {status}",
                    adv_labels[i]
                );
                println!("{}", ascii_pair(&orig, &one, &header)?);

                let base = format!(
                    "{}/fig1/{}_{}_{i}",
                    args.out_dir,
                    scenario.name(),
                    adv_eval::cache::slug(&kind.label())
                );
                match scenario {
                    Scenario::Mnist => {
                        write_pgm(&orig, format!("{base}_orig.pgm"))?;
                        write_pgm(&one, format!("{base}_adv.pgm"))?;
                    }
                    Scenario::Cifar => {
                        write_ppm(&orig, format!("{base}_orig.ppm"))?;
                        write_ppm(&one, format!("{base}_adv.ppm"))?;
                    }
                }
            }
        }
    }
    println!("\nImages written under {}/fig1/", args.out_dir);
    Ok(())
}
