//! Extension analysis: which detector family catches which attack.
//!
//! The paper argues MagNet's detectors respond to the L2-style statistical
//! footprint of C&W examples but miss EAD's sparse L1 perturbations. This
//! binary attributes detections per detector (reconstruction-L1/L2, JSD
//! T=10/40) for both attacks at a medium confidence — the evidence behind
//! that claim on this substrate.

use adv_eval::config::CliArgs;
use adv_eval::experiment::successful_examples;
use adv_eval::report::{text_table, write_csv};
use adv_eval::sweep::{AttackKind, SweepRunner};
use adv_eval::zoo::{Scenario, Variant, Zoo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliArgs::from_env();
    let zoo = Zoo::new(&args.models_dir, args.scale);
    let mut rows = Vec::new();

    for scenario in [Scenario::Mnist, Scenario::Cifar] {
        let kappa = match scenario {
            Scenario::Mnist => 15.0,
            Scenario::Cifar => 50.0,
        };
        let mut runner = SweepRunner::new(&zoo, scenario)?;
        // Use the JSD-equipped variant so all four detector families appear.
        let variant = match scenario {
            Scenario::Mnist => Variant::DefaultJsd,
            Scenario::Cifar => Variant::Default,
        };
        let defense = zoo.defense(scenario, variant)?;
        let labels = runner.attack_set().labels.clone();

        for kind in [
            AttackKind::Cw,
            AttackKind::Ead {
                rule: adv_attacks::DecisionRule::ElasticNet,
                beta: 0.1,
            },
        ] {
            let outcome = runner.outcome(&kind, kappa)?;
            let Some((adv, _)) = successful_examples(&outcome, &labels)? else {
                continue;
            };
            let n = adv.shape().dim(0) as f32;
            for (detector, flags) in defense.detect_breakdown(&adv)? {
                let rate = flags.iter().filter(|&&f| f).count() as f32 / n;
                rows.push(vec![
                    scenario.name().to_string(),
                    kind.label(),
                    format!("{kappa}"),
                    detector,
                    format!("{:.1}", rate * 100.0),
                ]);
            }
        }
    }

    println!("=== Per-detector detection rates (extension) ===\n");
    println!(
        "{}",
        text_table(
            &["scenario", "attack", "kappa", "detector", "detection %"],
            &rows
        )
    );
    write_csv(
        format!("{}/detector_breakdown.csv", args.out_dir),
        &["scenario", "attack", "kappa", "detector", "detection_rate"],
        &rows,
    )?;
    println!(
        "The paper's mechanism shows as higher detection rates for C&W than\n\
         for EAD within the same detector row."
    );
    Ok(())
}
