//! Regenerates every table and figure of the paper at the configured scale
//! and writes a summary of all outputs under the results directory.
//!
//! ```text
//! cargo run --release -p adv-eval --bin reproduce_all [--scale quick|paper] [--fine]
//! ```
//!
//! The run is resumable: each table/figure stage is recorded in a
//! `run.manifest` journal under the output directory as it completes, and a
//! rerun after a crash or kill skips the recorded stages. The manifest is
//! keyed by a fingerprint of the scale and directories, so changing the
//! configuration starts a fresh run; it is deleted once every stage is done.

use adv_eval::config::CliArgs;
use adv_eval::figures::{
    defense_comparison, format_panel, loss_ablation, panels_to_csv_rows, scheme_ablation,
    scheme_ablation_grid,
};
use adv_eval::report::write_csv;
use adv_eval::tables::{
    accuracy_table, arch_tables, best_asr_table, format_accuracy_table, format_best_asr_table,
    format_table1, table1,
};
use adv_eval::zoo::{Scenario, Variant, Zoo};
use std::time::Instant;

type AnyError = Box<dyn std::error::Error>;

/// Fingerprints the run configuration: a manifest recorded under one scale
/// or directory layout must never satisfy a rerun under another.
fn run_context(args: &CliArgs) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let key = format!("{:?}|{}|{}", args.scale, args.models_dir, args.out_dir);
    for b in key.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn main() -> Result<(), AnyError> {
    let args = CliArgs::from_env();
    let obs = adv_eval::obs::ObsSession::from_args(&args);
    let zoo = Zoo::new(&args.models_dir, args.scale);
    let out = args.out_dir.clone();
    let out = out.as_str();
    // lint-ok(gated-clocks): total reproduction wall-clock is printed in the final summary
    let t_total = Instant::now();
    let headers = ["panel", "curve", "kappa", "accuracy"];

    println!(
        "Reproducing all tables and figures at scale {:?}\n",
        args.scale
    );

    std::fs::create_dir_all(out)?;
    let mut manifest =
        adv_store::RunManifest::open(format!("{out}/run.manifest"), run_context(&args))?;
    if manifest.completed() > 0 {
        println!(
            "Resuming interrupted run: {} stage(s) already complete\n",
            manifest.completed()
        );
    }

    // --- Architecture tables (II, V) -------------------------------------
    let stage = "tables_2_and_5";
    let skipped = manifest.run_stage(stage, || -> Result<(), AnyError> {
        let arch = arch_tables(args.scale.robust_filters);
        println!("{arch}");
        std::fs::write(format!("{out}/tables_2_and_5.txt"), &arch)?;
        Ok(())
    })?;
    if skipped {
        println!("[{stage} already complete — skipped]\n");
    }

    // --- Tables III / VI: clean accuracy ----------------------------------
    for (scenario, name) in [(Scenario::Mnist, "table3"), (Scenario::Cifar, "table6")] {
        let stage = format!("{name}_{}", scenario.name());
        let skipped = manifest.run_stage(&stage, || -> Result<(), AnyError> {
            // lint-ok(gated-clocks): per-stage wall-clock is part of the reproduction report
            let t0 = Instant::now();
            println!("=== {} (clean accuracy, {}) ===", name, scenario.name());
            let rows = accuracy_table(&zoo, scenario)?;
            println!("{}", format_accuracy_table(&rows));
            let csv: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.variant.label().into(),
                        format!("{:.4}", r.without),
                        format!("{:.4}", r.with),
                    ]
                })
                .collect();
            write_csv(
                format!("{out}/{name}_{}.csv", scenario.name()),
                &["variant", "without_magnet", "with_magnet"],
                &csv,
            )?;
            println!("[{name} done in {:.1?}]\n", t0.elapsed());
            Ok(())
        })?;
        if skipped {
            println!("[{stage} already complete — skipped]\n");
        }
    }

    // --- Table I -----------------------------------------------------------
    for scenario in [Scenario::Mnist, Scenario::Cifar] {
        let stage = format!("table1_{}", scenario.name());
        let skipped = manifest.run_stage(&stage, || -> Result<(), AnyError> {
            // lint-ok(gated-clocks): per-stage wall-clock is part of the reproduction report
            let t0 = Instant::now();
            println!("=== Table I ({}) ===", scenario.name());
            let rows = table1(&zoo, scenario)?;
            println!("{}", format_table1(&rows));
            let csv: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.attack.clone(),
                        r.beta.map(|b| b.to_string()).unwrap_or_else(|| "NA".into()),
                        r.kappa.to_string(),
                        format!("{:.4}", r.asr),
                        r.l1.map(|v| format!("{v:.4}"))
                            .unwrap_or_else(|| "-".into()),
                        r.l2.map(|v| format!("{v:.4}"))
                            .unwrap_or_else(|| "-".into()),
                    ]
                })
                .collect();
            write_csv(
                format!("{out}/table1_{}.csv", scenario.name()),
                &["attack", "beta", "kappa", "asr", "mean_l1", "mean_l2"],
                &csv,
            )?;
            println!(
                "[table1 {} done in {:.1?}]\n",
                scenario.name(),
                t0.elapsed()
            );
            Ok(())
        })?;
        if skipped {
            println!("[{stage} already complete — skipped]\n");
        }
    }

    // --- Tables IV / VII ----------------------------------------------------
    for (scenario, name) in [(Scenario::Mnist, "table4"), (Scenario::Cifar, "table7")] {
        let stage = format!("{name}_{}", scenario.name());
        let skipped = manifest.run_stage(&stage, || -> Result<(), AnyError> {
            // lint-ok(gated-clocks): per-stage wall-clock is part of the reproduction report
            let t0 = Instant::now();
            println!("=== {} (best EAD ASR, {}) ===", name, scenario.name());
            let rows = best_asr_table(&zoo, scenario)?;
            println!("{}", format_best_asr_table(&rows, scenario));
            let variants = Variant::for_scenario(scenario);
            let mut hdr: Vec<String> = vec!["rule".into(), "beta".into()];
            hdr.extend(variants.iter().map(|v| v.label().to_string()));
            let hdr_refs: Vec<&str> = hdr.iter().map(String::as_str).collect();
            let csv: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    let mut row = vec![r.rule.label().to_string(), r.beta.to_string()];
                    row.extend(r.asr.iter().map(|a| format!("{a:.4}")));
                    row
                })
                .collect();
            write_csv(
                format!("{out}/{name}_{}.csv", scenario.name()),
                &hdr_refs,
                &csv,
            )?;
            println!("[{name} done in {:.1?}]\n", t0.elapsed());
            Ok(())
        })?;
        if skipped {
            println!("[{stage} already complete — skipped]\n");
        }
    }

    // --- Figures 2 / 3 -------------------------------------------------------
    for (scenario, name) in [(Scenario::Mnist, "fig2"), (Scenario::Cifar, "fig3")] {
        let stage = format!("{name}_{}", scenario.name());
        let skipped = manifest.run_stage(&stage, || -> Result<(), AnyError> {
            // lint-ok(gated-clocks): per-stage wall-clock is part of the reproduction report
            let t0 = Instant::now();
            println!("=== {} ({}) ===", name, scenario.name());
            let panels = defense_comparison(&zoo, scenario)?;
            for p in &panels {
                println!("{}", format_panel(p));
            }
            write_csv(
                format!("{out}/{name}_{}.csv", scenario.name()),
                &headers,
                &panels_to_csv_rows(&panels),
            )?;
            adv_eval::plot::write_panels_svg(&panels, format!("{out}/svg"), name)?;
            println!("[{name} done in {:.1?}]\n", t0.elapsed());
            Ok(())
        })?;
        if skipped {
            println!("[{stage} already complete — skipped]\n");
        }
    }

    // --- Figures 4 / 5 --------------------------------------------------------
    for (scenario, name) in [(Scenario::Mnist, "fig4"), (Scenario::Cifar, "fig5")] {
        let stage = format!("{name}_{}", scenario.name());
        let skipped = manifest.run_stage(&stage, || -> Result<(), AnyError> {
            // lint-ok(gated-clocks): per-stage wall-clock is part of the reproduction report
            let t0 = Instant::now();
            println!(
                "=== {} (C&W scheme ablation, {}) ===",
                name,
                scenario.name()
            );
            let panels = scheme_ablation(&zoo, scenario)?;
            for p in &panels {
                println!("{}", format_panel(p));
            }
            write_csv(
                format!("{out}/{name}_{}.csv", scenario.name()),
                &headers,
                &panels_to_csv_rows(&panels),
            )?;
            adv_eval::plot::write_panels_svg(&panels, format!("{out}/svg"), name)?;
            println!("[{name} done in {:.1?}]\n", t0.elapsed());
            Ok(())
        })?;
        if skipped {
            println!("[{stage} already complete — skipped]\n");
        }
    }

    // --- Figures 6–11 -----------------------------------------------------------
    let grid_jobs = [
        (Scenario::Mnist, Variant::Default, "fig6"),
        (Scenario::Cifar, Variant::Default, "fig7"),
        (Scenario::Mnist, Variant::DefaultJsd, "fig8"),
        (Scenario::Mnist, Variant::Robust, "fig9"),
        (Scenario::Mnist, Variant::RobustJsd, "fig10"),
        (Scenario::Cifar, Variant::Robust, "fig11"),
    ];
    for (scenario, variant, name) in grid_jobs {
        let stage = format!("{name}_{}", scenario.name());
        let skipped = manifest.run_stage(&stage, || -> Result<(), AnyError> {
            // lint-ok(gated-clocks): per-stage wall-clock is part of the reproduction report
            let t0 = Instant::now();
            println!(
                "=== {} (EAD grid vs schemes, {} {}) ===",
                name,
                scenario.name(),
                variant.label()
            );
            let panels = scheme_ablation_grid(&zoo, scenario, variant)?;
            for p in &panels {
                println!("{}", format_panel(p));
            }
            write_csv(
                format!("{out}/{name}_{}.csv", scenario.name()),
                &headers,
                &panels_to_csv_rows(&panels),
            )?;
            adv_eval::plot::write_panels_svg(&panels, format!("{out}/svg"), name)?;
            println!("[{name} done in {:.1?}]\n", t0.elapsed());
            Ok(())
        })?;
        if skipped {
            println!("[{stage} already complete — skipped]\n");
        }
    }

    // --- Figures 12 / 13 -----------------------------------------------------
    for (scenario, name) in [(Scenario::Mnist, "fig12"), (Scenario::Cifar, "fig13")] {
        let stage = format!("{name}_{}", scenario.name());
        let skipped = manifest.run_stage(&stage, || -> Result<(), AnyError> {
            // lint-ok(gated-clocks): per-stage wall-clock is part of the reproduction report
            let t0 = Instant::now();
            println!("=== {} (MSE vs MAE, {}) ===", name, scenario.name());
            let panels = loss_ablation(&zoo, scenario)?;
            for p in &panels {
                println!("{}", format_panel(p));
            }
            write_csv(
                format!("{out}/{name}_{}.csv", scenario.name()),
                &headers,
                &panels_to_csv_rows(&panels),
            )?;
            adv_eval::plot::write_panels_svg(&panels, format!("{out}/svg"), name)?;
            println!("[{name} done in {:.1?}]\n", t0.elapsed());
            Ok(())
        })?;
        if skipped {
            println!("[{stage} already complete — skipped]\n");
        }
    }

    // Every stage is recorded; the manifest has nothing left to resume.
    manifest.remove()?;

    println!(
        "All tables and figures regenerated in {:.1?}. CSVs in {out}/.",
        t_total.elapsed()
    );
    if let Some(obs) = obs {
        obs.finish()?;
    }
    Ok(())
}
