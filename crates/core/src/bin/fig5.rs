//! Reproduces **Figure 5**: C&W L2 attack vs the four defense schemes for
//! the Default and D+256 MagNet variants on CIFAR.

use adv_eval::config::CliArgs;
use adv_eval::figures::{format_panel, panels_to_csv_rows, scheme_ablation};
use adv_eval::report::write_csv;
use adv_eval::zoo::{Scenario, Zoo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliArgs::from_env();
    let zoo = Zoo::new(&args.models_dir, args.scale);
    println!("=== Figure 5 (CIFAR: C&W vs defense schemes, per variant) ===\n");
    let panels = scheme_ablation(&zoo, Scenario::Cifar)?;
    for panel in &panels {
        println!("{}", format_panel(panel));
    }
    write_csv(
        format!("{}/fig5_cifar.csv", args.out_dir),
        &["panel", "curve", "kappa", "accuracy"],
        &panels_to_csv_rows(&panels),
    )?;
    let svgs = adv_eval::plot::write_panels_svg(&panels, format!("{}/svg", args.out_dir), "fig5")?;
    println!("SVG panels written: {svgs:?} under {}/svg/", args.out_dir);
    Ok(())
}
