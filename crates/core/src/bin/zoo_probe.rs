//! Model-zoo crash-recovery probe: the process half of the CI hot-swap
//! soak. Each invocation opens (or creates) a zoo under `--root`, runs one
//! subcommand, prints a single JSON line to stdout, and exits — so a shell
//! driver can `kill -9` it mid-promotion (via `--abort-after`, which calls
//! `std::process::abort()` at the named journal stage, indistinguishable
//! from an external kill) and then assert, from a fresh process, that
//! recovery resumed past the commit point or cleanly aborted.
//!
//! Subcommands:
//!
//! * `init --root R` — create the zoo, publish+promote v1 of the probe
//!   variant.
//! * `promote --root R --version N [--seed S] [--abort-after STAGE]
//!   [--fault-site SITE]` — publish and promote version `N`; with
//!   `--abort-after staged|warming|live|retired` the process aborts right
//!   after journaling that stage; with `--fault-site zoo/stage|zoo/warm|
//!   zoo/flip` a seeded chaos fault fires at that site instead.
//! * `status --root R [--expect-version N] [--expect-parity M]` — reopen,
//!   report live version, recovery counters, and a served-verdict parity
//!   check against the in-process pipeline; exits nonzero if an
//!   `--expect-*` assertion fails.
//!
//! The pipeline is a deterministic byte-driven stub (verdict = pure
//! function of blob seed and input), so parity across kill/recover cycles
//! is exact and needs no model files.

use adv_chaos::{FaultInjector, FaultPlan, SiteFaults};
use adv_magnet::{DefensePipeline, DefenseScheme, StageTimings, Verdict};
use adv_serve::{RequestTag, ServeConfig, VariantRouter};
use adv_tensor::{Shape, Tensor};
use adv_zoo::{ModelZoo, PipelineLoader, PromotionStage, WeightBlob, ZooConfig, ZooError};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const VARIANT: u32 = 1;

/// Deterministic stub pipeline: verdict is a pure function of the blob's
/// seed byte and the input bytes (mirrors the adv-zoo test fixtures).
#[derive(Debug)]
struct SeededPipeline {
    seed: u8,
}

fn seeded_verdict(seed: u8, item: &[f32]) -> Verdict {
    let sum: f32 = item.iter().sum();
    let q = (sum.abs() * 16.0) as usize + seed as usize;
    if q.is_multiple_of(7) {
        Verdict::Detected
    } else {
        Verdict::Classified(q % 10)
    }
}

impl DefensePipeline for SeededPipeline {
    fn name(&self) -> &str {
        "zoo-probe-stub"
    }

    fn classify_batch(
        &self,
        x: &Tensor,
        _scheme: DefenseScheme,
    ) -> adv_magnet::Result<(Vec<Verdict>, StageTimings)> {
        let n = x.shape().dims().first().copied().unwrap_or(0);
        let data = x.as_slice();
        let item_len = data.len() / n.max(1);
        let verdicts = (0..n)
            .map(|i| seeded_verdict(self.seed, &data[i * item_len..(i + 1) * item_len]))
            .collect();
        Ok((verdicts, StageTimings::default()))
    }
}

#[derive(Debug)]
struct SeededLoader;

impl PipelineLoader for SeededLoader {
    fn build(&self, blob: &WeightBlob) -> Result<Arc<dyn DefensePipeline>, String> {
        let seed = blob.bytes().first().copied().unwrap_or(0);
        Ok(Arc::new(SeededPipeline { seed }))
    }
}

fn probe_item(offset: usize) -> Tensor {
    Tensor::from_fn(Shape::new(vec![1, 8, 8]), |i| {
        (((i + offset * 131) * 7) % 23) as f32 / 23.0
    })
}

fn parse_stage(s: &str) -> Result<PromotionStage, String> {
    match s {
        "staged" => Ok(PromotionStage::Staged),
        "warming" => Ok(PromotionStage::Warming),
        "live" => Ok(PromotionStage::Live),
        "retired" => Ok(PromotionStage::Retired),
        other => Err(format!("unknown stage {other:?}")),
    }
}

struct Args {
    command: String,
    root: PathBuf,
    version: u32,
    seed: u8,
    abort_after: Option<PromotionStage>,
    fault_site: Option<String>,
    expect_version: Option<u32>,
    expect_parity: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv
        .next()
        .ok_or("usage: zoo_probe <init|promote|status>")?;
    let mut args = Args {
        command,
        root: PathBuf::from("zoo_probe_state"),
        version: 2,
        seed: 7,
        abort_after: None,
        fault_site: None,
        expect_version: None,
        expect_parity: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> Result<String, String> {
            argv.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--version" => {
                args.version = value("--version")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--abort-after" => args.abort_after = Some(parse_stage(&value("--abort-after")?)?),
            "--fault-site" => args.fault_site = Some(value("--fault-site")?),
            "--expect-version" => {
                args.expect_version = Some(
                    value("--expect-version")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                );
            }
            "--expect-parity" => {
                args.expect_parity = Some(
                    value("--expect-parity")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                );
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn open_zoo(args: &Args) -> Result<ModelZoo, Box<dyn std::error::Error>> {
    let mut cfg = ZooConfig::new(&args.root);
    cfg.shard = ServeConfig {
        workers: 1,
        max_batch: 4,
        max_wait: Duration::from_micros(500),
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    cfg.warmup = (0..6).map(probe_item).collect();
    cfg.abort_after = args.abort_after;
    if let Some(site) = &args.fault_site {
        let plan = FaultPlan::new(u64::from(args.seed) | 0x5EED_0000)
            .with(SiteFaults::at(site).errors(1.0).limit(1));
        cfg.injector = Some(Arc::new(FaultInjector::new(plan)?));
    }
    Ok(ModelZoo::open(Arc::new(SeededLoader), cfg)?)
}

/// Served-vs-in-process parity over `n` probe items; returns mismatches.
fn parity_mismatches(
    zoo: &ModelZoo,
    seed: u8,
    n: usize,
) -> Result<usize, Box<dyn std::error::Error>> {
    let mut mismatches = 0;
    for i in 0..n {
        let input = probe_item(i);
        let expected = seeded_verdict(seed, input.as_slice());
        let got = zoo
            .submit_routed(
                VARIANT,
                input,
                RequestTag::default().with_variant(VARIANT),
                Duration::from_secs(10),
            )?
            .wait_timeout(Duration::from_secs(10))?
            .verdict;
        if got != expected {
            mismatches += 1;
        }
    }
    Ok(mismatches)
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("zoo_probe: {e}");
            std::process::exit(2);
        }
    }
}

fn run() -> Result<i32, Box<dyn std::error::Error>> {
    let args = parse_args()?;
    match args.command.as_str() {
        "init" => {
            let zoo = open_zoo(&args)?;
            zoo.publish(VARIANT, 1, &[args.seed])?;
            let report = zoo.promote(VARIANT, 1)?;
            println!(
                "{{\"command\":\"init\",\"live_version\":1,\"epoch\":{}}}",
                report.epoch
            );
            Ok(0)
        }
        "promote" => {
            let zoo = open_zoo(&args)?;
            zoo.publish(VARIANT, args.version, &[args.seed])?;
            // With --abort-after the process dies inside promote(); any
            // return at all means the abort stage was never reached.
            match zoo.promote(VARIANT, args.version) {
                Ok(report) => {
                    println!(
                        "{{\"command\":\"promote\",\"outcome\":\"live\",\"live_version\":{},\
                         \"epoch\":{},\"retired\":{}}}",
                        report.version,
                        report.epoch,
                        report
                            .retired_version
                            .map_or("null".into(), |v| v.to_string()),
                    );
                    Ok(0)
                }
                Err(ZooError::RolledBack { reason, .. }) => {
                    println!(
                        "{{\"command\":\"promote\",\"outcome\":\"rolled_back\",\
                         \"reason\":\"{reason}\",\"live_version\":{}}}",
                        zoo.live_version(VARIANT)
                            .map_or("null".into(), |v| v.to_string()),
                    );
                    Ok(0)
                }
                Err(e) => Err(e.into()),
            }
        }
        "status" => {
            let zoo = open_zoo(&args)?;
            let stats = zoo.stats();
            let live = zoo.live_version(VARIANT);
            let mismatches = match live {
                Some(_) => parity_mismatches(&zoo, args.seed, 12)?,
                None => 0,
            };
            println!(
                "{{\"command\":\"status\",\"live_version\":{},\"resumed_aborts\":{},\
                 \"resumed_retires\":{},\"blob_rejects\":{},\"parity_mismatches\":{}}}",
                live.map_or("null".into(), |v| v.to_string()),
                stats.resumed_aborts,
                stats.resumed_retires,
                stats.blob_rejects,
                mismatches,
            );
            let mut failed = false;
            if let Some(expect) = args.expect_version {
                if live != Some(expect) {
                    eprintln!("EXPECT FAILED: live_version {live:?} != {expect}");
                    failed = true;
                }
            }
            if let Some(limit) = args.expect_parity {
                if mismatches > limit {
                    eprintln!("EXPECT FAILED: parity_mismatches {mismatches} > {limit}");
                    failed = true;
                }
            }
            Ok(i32::from(failed))
        }
        other => Err(format!("unknown command {other:?}").into()),
    }
}
