//! Ablation (extension): ISTA (paper eq. 4) vs FISTA (the EAD reference
//! implementation) at equal iteration budgets, and the effect of the
//! binary-search depth on attack quality.
//!
//! Reports ASR and mean distortions on the MNIST victim so the design choice
//! documented in DESIGN.md ("plain ISTA by default") is backed by numbers.

use adv_attacks::{Attack, DecisionRule, EadConfig, ElasticNetAttack};
use adv_eval::config::CliArgs;
use adv_eval::experiment::select_attack_set;
use adv_eval::report::{opt3, pct, text_table, write_csv};
use adv_eval::zoo::{Scenario, Zoo};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliArgs::from_env();
    let zoo = Zoo::new(&args.models_dir, args.scale);
    let mut classifier = zoo.classifier(Scenario::Mnist)?;
    let data = zoo.data(Scenario::Mnist);
    let set = select_attack_set(
        &mut classifier,
        &data.test,
        zoo.scale().attack_count,
        zoo.scale().seed ^ 0xAB1A,
    )?;

    let kappa = 10.0 * zoo.scale().kappa_unit_mnist;
    let mut rows = Vec::new();
    for (label, fista, iters, bs) in [
        (
            "ISTA",
            false,
            zoo.scale().attack_iterations,
            zoo.scale().binary_search_steps,
        ),
        (
            "FISTA",
            true,
            zoo.scale().attack_iterations,
            zoo.scale().binary_search_steps,
        ),
        ("ISTA, 1 bs step", false, zoo.scale().attack_iterations, 1),
        (
            "ISTA, half iters",
            false,
            zoo.scale().attack_iterations / 2,
            zoo.scale().binary_search_steps,
        ),
    ] {
        let attack = ElasticNetAttack::new(EadConfig {
            kappa,
            beta: 0.01,
            iterations: iters.max(1),
            binary_search_steps: bs,
            initial_c: zoo.scale().initial_c,
            learning_rate: zoo.scale().attack_lr,
            rule: DecisionRule::ElasticNet,
            fista,
        })?;
        // lint-ok(gated-clocks): attack wall-clock per ISTA configuration is the probe's output
        let t0 = Instant::now();
        let outcome = attack.run(&mut classifier, &set.images, &set.labels)?;
        rows.push(vec![
            label.to_string(),
            format!("{iters}x{bs}"),
            pct(outcome.success_rate()),
            opt3(outcome.mean_l1_successful()),
            opt3(outcome.mean_l2_successful()),
            format!("{:.1}s", t0.elapsed().as_secs_f32()),
        ]);
    }

    println!("=== EAD optimizer / search-depth ablation (MNIST, paper-kappa 10) ===\n");
    println!(
        "{}",
        text_table(
            &[
                "variant",
                "iters x bs",
                "ASR %",
                "mean L1",
                "mean L2",
                "wall"
            ],
            &rows
        )
    );
    write_csv(
        format!("{}/ablation_ista.csv", args.out_dir),
        &["variant", "budget", "asr", "mean_l1", "mean_l2", "wall"],
        &rows,
    )?;
    Ok(())
}
