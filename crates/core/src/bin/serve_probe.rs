//! Serving-engine probe: replays an adversarial corpus (C&W L2 vs EAD L1)
//! against the MNIST D+JSD defense through both evaluation paths — the
//! serial one-`classify`-per-sample loop the experiment binaries use, and
//! the batched `adv-serve` engine — and reports throughput, latency
//! percentiles, and attack success rate for each.
//!
//! The two paths must agree verdict-for-verdict (the engine's fused batch
//! pass is bit-identical to serial classification), so the printed ASR and
//! accuracy are asserted equal before the speedup is reported. Both paths
//! run on one worker/thread; the engine's advantage is batching plus fused
//! deduplication of MagNet's shared sub-computations, not parallelism.
//!
//! Usage: `serve_probe [--scale smoke|quick|paper] [--models <dir>] …`; the
//! corpus is 128 samples per attack (256 total) when the test pool at the
//! chosen scale is large enough.

use adv_eval::config::CliArgs;
use adv_eval::sweep::{AttackKind, SweepRunner};
use adv_eval::zoo::{Scenario, Variant, Zoo};
use adv_magnet::{DefenseScheme, MagnetDefense, Verdict};
use adv_serve::{RequestTag, ServeConfig, ServeEngine, VariantRouter, DEFAULT_VARIANT};
use adv_tensor::Tensor;
use adv_zoo::{ModelZoo, NullLoader, ZooConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-attack corpus size (two attacks → 256 total at full strength).
const PER_ATTACK: usize = 128;
const MAX_BATCH: usize = 32;

/// One replayed request: the adversarial image and its true label.
struct Sample {
    input: Tensor,
    label: usize,
}

/// Nearest-rank quantile of an ascending-sorted latency sample.
fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Fraction of verdicts that fail to defend the true label.
fn asr(verdicts: &[Verdict], samples: &[Sample]) -> f32 {
    if verdicts.is_empty() {
        return 0.0;
    }
    let beaten = verdicts
        .iter()
        .zip(samples)
        .filter(|(v, s)| !v.defends(s.label))
        .count();
    beaten as f32 / verdicts.len() as f32
}

struct PathReport {
    verdicts: Vec<Verdict>,
    elapsed: Duration,
    p50: Duration,
    p99: Duration,
}

impl PathReport {
    fn print(&self, name: &str, samples: &[Sample]) {
        let n = self.verdicts.len() as f64;
        println!(
            "  {name:<8} {:>8.1} samples/s | p50 {:>8.2?} p99 {:>8.2?} | ASR {:>5.1}%",
            n / self.elapsed.as_secs_f64(),
            self.p50,
            self.p99,
            asr(&self.verdicts, samples) * 100.0,
        );
    }
}

/// The pre-`adv-serve` evaluation pattern: one `classify` call per sample.
fn run_serial(
    defense: &MagnetDefense,
    samples: &[Sample],
) -> Result<PathReport, Box<dyn std::error::Error>> {
    let mut verdicts = Vec::with_capacity(samples.len());
    let mut latencies = Vec::with_capacity(samples.len());
    // lint-ok(gated-clocks): serving throughput over wall-clock is what the probe measures
    let started = Instant::now();
    for s in samples {
        // lint-ok(gated-clocks): per-request latency is what the probe measures
        let t0 = Instant::now();
        let x = Tensor::stack(std::slice::from_ref(&s.input))?;
        let mut v = defense.classify(&x, DefenseScheme::Full)?;
        latencies.push(t0.elapsed());
        verdicts.push(v.remove(0));
    }
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    Ok(PathReport {
        verdicts,
        elapsed,
        p50: quantile(&latencies, 0.50),
        p99: quantile(&latencies, 0.99),
    })
}

/// The batched path: submit every sample to the engine, then wait.
fn run_served(
    defense: Arc<MagnetDefense>,
    samples: &[Sample],
) -> Result<PathReport, Box<dyn std::error::Error>> {
    let engine = ServeEngine::start(
        defense,
        ServeConfig {
            max_batch: MAX_BATCH,
            max_wait: Duration::from_millis(2),
            queue_capacity: samples.len().max(1),
            workers: 1,
            scheme: DefenseScheme::Full,
            ..ServeConfig::default()
        },
    )?;
    // lint-ok(gated-clocks): serving throughput over wall-clock is what the probe measures
    let started = Instant::now();
    let pending: Vec<_> = samples
        .iter()
        .map(|s| engine.submit(s.input.clone()))
        .collect::<Result<_, _>>()?;
    let verdicts: Vec<Verdict> = pending
        .into_iter()
        .map(|p| p.wait().map(|r| r.verdict))
        .collect::<Result<_, _>>()?;
    let elapsed = started.elapsed();
    let metrics = engine.shutdown();
    Ok(PathReport {
        verdicts,
        elapsed,
        p50: metrics.p50_latency,
        p99: metrics.p99_latency,
    })
}

/// The registry path: the same corpus routed through a `ModelZoo`'s
/// default variant — the seam `adv-net` serves in production. Verdicts
/// must be bit-identical to the serial path (asserted in `main`).
fn run_zoo(
    defense: Arc<MagnetDefense>,
    samples: &[Sample],
) -> Result<PathReport, Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("serve_probe_zoo_{}", std::process::id()));
    let mut cfg = ZooConfig::new(&root);
    cfg.shard = ServeConfig {
        max_batch: MAX_BATCH,
        max_wait: Duration::from_millis(2),
        queue_capacity: samples.len().max(1),
        workers: 1,
        scheme: DefenseScheme::Full,
        ..ServeConfig::default()
    };
    let zoo = ModelZoo::open(Arc::new(NullLoader), cfg)?;
    zoo.install(DEFAULT_VARIANT, defense)?;
    // lint-ok(gated-clocks): serving throughput over wall-clock is what the probe measures
    let started = Instant::now();
    let pending: Vec<_> = samples
        .iter()
        .map(|s| {
            zoo.submit_routed(
                DEFAULT_VARIANT,
                s.input.clone(),
                RequestTag::default(),
                Duration::from_secs(60),
            )
        })
        .collect::<Result<_, _>>()?;
    let verdicts: Vec<Verdict> = pending
        .into_iter()
        .map(|p| p.wait().map(|r| r.verdict))
        .collect::<Result<_, _>>()?;
    let elapsed = started.elapsed();
    let metrics = zoo
        .variant_metrics(DEFAULT_VARIANT)
        .ok_or("default variant vanished from the routing table")?;
    drop(zoo);
    let _ = std::fs::remove_dir_all(&root);
    Ok(PathReport {
        verdicts,
        elapsed,
        p50: metrics.p50_latency,
        p99: metrics.p99_latency,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = CliArgs::from_env();
    let obs = adv_eval::obs::ObsSession::from_args(&args);
    args.scale.attack_count = PER_ATTACK;
    let zoo = Zoo::new(&args.models_dir, args.scale);
    let mut runner = SweepRunner::new(&zoo, Scenario::Mnist)?;
    let defense = zoo.defense(Scenario::Mnist, Variant::DefaultJsd)?;
    println!(
        "serve_probe: MNIST {} | corpus {} per attack | 1 worker, max_batch {MAX_BATCH}",
        defense.name(),
        runner.attack_set().labels.len(),
    );

    // C&W L2 and EAD-L1 — the paper's contrast pair — at κ = 0.
    let labels = runner.attack_set().labels.clone();
    let mut corpora = Vec::new();
    for kind in AttackKind::figure_trio().into_iter().take(2) {
        let outcome = runner.outcome(&kind, 0.0)?;
        let samples: Vec<Sample> = (0..labels.len())
            .map(|i| {
                Ok(Sample {
                    input: outcome.adversarial.index_axis0(i)?,
                    label: labels[i],
                })
            })
            .collect::<Result<_, adv_tensor::TensorError>>()?;
        corpora.push((kind.label(), outcome.success_rate(), samples));
    }

    let defense = Arc::new(defense);
    let mut total = Duration::ZERO;
    let mut total_served = Duration::ZERO;
    for (label, undefended_asr, samples) in &corpora {
        println!(
            "\n{label} ({} samples, undefended ASR {:.1}%)",
            samples.len(),
            undefended_asr * 100.0
        );
        let serial = run_serial(&defense, samples)?;
        let served = run_served(defense.clone(), samples)?;
        let routed = run_zoo(defense.clone(), samples)?;
        serial.print("serial", samples);
        served.print("served", samples);
        routed.print("zoo", samples);
        assert_eq!(
            serial.verdicts, served.verdicts,
            "served verdicts diverged from serial on {label}"
        );
        assert_eq!(
            serial.verdicts, routed.verdicts,
            "zoo-routed verdicts diverged from serial on {label}"
        );
        println!(
            "  verdicts identical (serial = served = zoo); speedup {:.2}x",
            serial.elapsed.as_secs_f64() / served.elapsed.as_secs_f64()
        );
        total += serial.elapsed;
        total_served += served.elapsed;
    }
    println!(
        "\noverall: serial {total:.2?} vs served {total_served:.2?} ({:.2}x)",
        total.as_secs_f64() / total_served.as_secs_f64()
    );
    if let Some(obs) = obs {
        obs.finish()?;
    }
    Ok(())
}
