//! Prints **Tables II and V**: the robust MagNet auto-encoder architectures
//! (encoder + decoder layer lists) for MNIST and CIFAR-10.

use adv_eval::config::CliArgs;
use adv_eval::tables::arch_tables;

fn main() {
    let args = CliArgs::from_env();
    println!("{}", arch_tables(args.scale.robust_filters));
    println!(
        "(The paper's variants use 256 filters; this scale uses {}.)",
        args.scale.robust_filters
    );
}
