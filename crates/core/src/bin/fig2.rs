//! Reproduces **Figure 2**: MNIST defense accuracy vs confidence κ for C&W,
//! EAD-L1 and EAD-EN (β = 0.1), one panel per MagNet variant
//! (Default, D+JSD, D+256, D+256+JSD).

use adv_eval::config::CliArgs;
use adv_eval::figures::{defense_comparison, format_panel, panels_to_csv_rows};
use adv_eval::report::write_csv;
use adv_eval::zoo::{Scenario, Zoo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliArgs::from_env();
    let zoo = Zoo::new(&args.models_dir, args.scale);
    println!("=== Figure 2 (MNIST: accuracy vs kappa, per variant) ===\n");
    let panels = defense_comparison(&zoo, Scenario::Mnist)?;
    for panel in &panels {
        println!("{}", format_panel(panel));
    }
    write_csv(
        format!("{}/fig2_mnist.csv", args.out_dir),
        &["panel", "curve", "kappa", "accuracy"],
        &panels_to_csv_rows(&panels),
    )?;
    let svgs = adv_eval::plot::write_panels_svg(&panels, format!("{}/svg", args.out_dir), "fig2")?;
    println!("SVG panels written: {svgs:?} under {}/svg/", args.out_dir);
    Ok(())
}
