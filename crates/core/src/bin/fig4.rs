//! Reproduces **Figure 4**: C&W L2 attack vs the four defense schemes
//! (none / detector / reformer / both) for each MagNet variant on MNIST.

use adv_eval::config::CliArgs;
use adv_eval::figures::{format_panel, panels_to_csv_rows, scheme_ablation};
use adv_eval::report::write_csv;
use adv_eval::zoo::{Scenario, Zoo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliArgs::from_env();
    let zoo = Zoo::new(&args.models_dir, args.scale);
    println!("=== Figure 4 (MNIST: C&W vs defense schemes, per variant) ===\n");
    let panels = scheme_ablation(&zoo, Scenario::Mnist)?;
    for panel in &panels {
        println!("{}", format_panel(panel));
    }
    write_csv(
        format!("{}/fig4_mnist.csv", args.out_dir),
        &["panel", "curve", "kappa", "accuracy"],
        &panels_to_csv_rows(&panels),
    )?;
    let svgs = adv_eval::plot::write_panels_svg(&panels, format!("{}/svg", args.out_dir), "fig4")?;
    println!("SVG panels written: {svgs:?} under {}/svg/", args.out_dir);
    Ok(())
}
