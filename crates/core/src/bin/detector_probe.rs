//! Developer utility: per-detector score distributions on clean data vs
//! C&W vs EAD adversarial examples — shows which detector separates what,
//! and where the calibrated thresholds sit.

use adv_eval::config::CliArgs;
use adv_eval::experiment::successful_examples;
use adv_eval::sweep::{AttackKind, SweepRunner};
use adv_eval::zoo::{Scenario, Variant, Zoo};
use adv_magnet::variants::{assemble_cifar_defense, assemble_mnist_defense};
use adv_magnet::{Detector, JsdDetector, ReconstructionDetector, ReconstructionNorm};
use adv_nn::loss::ReconstructionLoss;
use adv_nn::train::gather0;
use adv_tensor::stats::{mean, quantile};

fn summarize(name: &str, clean: &[f32], threshold: f32, cw: &[f32], ead: &[f32]) {
    let q = |xs: &[f32], p: f32| quantile(xs, p).unwrap_or(f32::NAN);
    println!(
        "{name:<10} clean mean {:.4} p95 {:.4} | thr {:.4} | CW mean {:.4} (>{:.0}%) | EAD mean {:.4} (>{:.0}%)",
        mean(clean),
        q(clean, 0.95),
        threshold,
        mean(cw),
        100.0 * cw.iter().filter(|&&v| v > threshold).count() as f32 / cw.len().max(1) as f32,
        mean(ead),
        100.0 * ead.iter().filter(|&&v| v > threshold).count() as f32 / ead.len().max(1) as f32,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliArgs::from_env();
    let zoo = Zoo::new(&args.models_dir, args.scale);
    for scenario in [Scenario::Mnist, Scenario::Cifar] {
        println!("\n########## {} ##########", scenario.name());
        let kappa = match scenario {
            Scenario::Mnist => 15.0,
            Scenario::Cifar => 50.0,
        };
        let mut runner = SweepRunner::new(&zoo, scenario)?;
        let labels = runner.attack_set().labels.clone();
        let cw_out = runner.outcome(&AttackKind::Cw, kappa)?;
        let ead_out = runner.outcome(
            &AttackKind::Ead {
                rule: adv_attacks::DecisionRule::ElasticNet,
                beta: 0.1,
            },
            kappa,
        )?;
        let cw_adv = successful_examples(&cw_out, &labels)?.map(|(x, _)| x);
        let ead_adv = successful_examples(&ead_out, &labels)?.map(|(x, _)| x);
        let (Some(cw_adv), Some(ead_adv)) = (cw_adv, ead_adv) else {
            println!("no successful examples at kappa {kappa}");
            continue;
        };
        println!(
            "kappa {kappa}: {} CW examples, {} EAD examples",
            cw_adv.shape().dim(0),
            ead_adv.shape().dim(0)
        );

        let classifier = zoo.classifier(scenario)?;
        let data = zoo.data(scenario);
        let valid = gather0(
            data.valid.images(),
            &(0..data.valid.len()).collect::<Vec<_>>(),
        )?;

        // Build each detector fresh so we can inspect raw scores.
        let mut detectors: Vec<Box<dyn Detector>> = match scenario {
            Scenario::Mnist => {
                let aes = zoo.mnist_autoencoders(
                    zoo.scale().default_filters,
                    ReconstructionLoss::MeanSquaredError,
                )?;
                let _ = assemble_mnist_defense(
                    "probe",
                    &aes,
                    &classifier,
                    &[],
                    &valid,
                    match scenario {
                        Scenario::Mnist => zoo.scale().fpr_mnist,
                        Scenario::Cifar => zoo.scale().fpr_cifar,
                    },
                )?;
                vec![
                    Box::new(ReconstructionDetector::new(
                        aes.ae_one.clone(),
                        ReconstructionNorm::L2,
                    )),
                    Box::new(ReconstructionDetector::new(
                        aes.ae_two.clone(),
                        ReconstructionNorm::L1,
                    )),
                    Box::new(JsdDetector::new(
                        aes.ae_one.clone(),
                        classifier.clone(),
                        10.0,
                    )?),
                    Box::new(JsdDetector::new(
                        aes.ae_one.clone(),
                        classifier.clone(),
                        40.0,
                    )?),
                ]
            }
            Scenario::Cifar => {
                let ae = zoo.cifar_autoencoder(
                    zoo.scale().default_filters,
                    ReconstructionLoss::MeanSquaredError,
                )?;
                let _ = assemble_cifar_defense(
                    "probe",
                    &ae,
                    &classifier,
                    &[10.0, 40.0],
                    &valid,
                    match scenario {
                        Scenario::Mnist => zoo.scale().fpr_mnist,
                        Scenario::Cifar => zoo.scale().fpr_cifar,
                    },
                )?;
                vec![
                    Box::new(ReconstructionDetector::new(
                        ae.clone(),
                        ReconstructionNorm::L1,
                    )),
                    Box::new(ReconstructionDetector::new(
                        ae.clone(),
                        ReconstructionNorm::L2,
                    )),
                    Box::new(JsdDetector::new(ae.clone(), classifier.clone(), 10.0)?),
                    Box::new(JsdDetector::new(ae.clone(), classifier.clone(), 40.0)?),
                ]
            }
        };
        for det in detectors.iter_mut() {
            let threshold = det.calibrate(
                &valid,
                match scenario {
                    Scenario::Mnist => zoo.scale().fpr_mnist,
                    Scenario::Cifar => zoo.scale().fpr_cifar,
                },
            )?;
            let clean_scores = det.scores(&valid)?;
            let cw_scores = det.scores(&cw_adv)?;
            let ead_scores = det.scores(&ead_adv)?;
            summarize(
                &det.name(),
                &clean_scores,
                threshold,
                &cw_scores,
                &ead_scores,
            );
        }
        let _ = Variant::Default;
    }
    Ok(())
}
