//! Developer utility: quick CIFAR classifier learnability check across
//! training sizes/epochs (used to size the integration tests).

use adv_data::synth::cifar_like;
use adv_magnet::arch::cifar_classifier;
use adv_nn::optim::Adam;
use adv_nn::train::{fit_classifier, TrainConfig};
use adv_nn::Sequential;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (n, epochs) in [(600, 3), (600, 6), (1200, 3), (1200, 5)] {
        let train = cifar_like(n, 1);
        let test = cifar_like(150, 2);
        let specs = cifar_classifier(16, 3, 6, 12, 48, 10);
        let mut net = Sequential::from_specs(&specs, 3)?;
        let mut opt = Adam::with_defaults(1e-3);
        let cfg = TrainConfig {
            epochs,
            batch_size: 32,
            seed: 4,
            label_smoothing: 0.0,
            verbose: false,
            checkpoint: None,
        };
        let hist = fit_classifier(&mut net, &mut opt, train.images(), train.labels(), &cfg)?;
        let acc = adv_eval::zoo::classifier_accuracy(&mut net, &test)?;
        println!(
            "n={n} epochs={epochs}: train acc {:.3}, test acc {:.3}",
            hist.last()
                .expect("training history is empty")
                .accuracy
                .unwrap_or(0.0),
            acc
        );
    }
    Ok(())
}
