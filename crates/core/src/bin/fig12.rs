//! Reproduces **Figure 12**: defense comparison on MNIST when the default
//! MagNet's auto-encoders are trained with MSE vs MAE reconstruction loss.

use adv_eval::config::CliArgs;
use adv_eval::figures::{format_panel, loss_ablation, panels_to_csv_rows};
use adv_eval::report::write_csv;
use adv_eval::zoo::{Scenario, Zoo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliArgs::from_env();
    let zoo = Zoo::new(&args.models_dir, args.scale);
    println!("=== Figure 12 (MNIST: MSE vs MAE auto-encoder training) ===\n");
    let panels = loss_ablation(&zoo, Scenario::Mnist)?;
    for panel in &panels {
        println!("{}", format_panel(panel));
    }
    write_csv(
        format!("{}/fig12_mnist_loss.csv", args.out_dir),
        &["panel", "curve", "kappa", "accuracy"],
        &panels_to_csv_rows(&panels),
    )?;
    let svgs = adv_eval::plot::write_panels_svg(&panels, format!("{}/svg", args.out_dir), "fig12")?;
    println!("SVG panels written: {svgs:?} under {}/svg/", args.out_dir);
    Ok(())
}
