//! Multi-tenant load generator for the `adv-net` front door.
//!
//! Replays the paper's C&W-L2 / EAD-L1 adversarial corpus through a real
//! TCP `NetServer` as many simulated tenants (derived-key policy, so tenant
//! count is unbounded) and checks the robustness invariants the front door
//! promises, in two phases:
//!
//! * **Phase A — parity.** Every corpus sample is classified over the wire
//!   at least once, served through a `ModelZoo`'s default variant (the
//!   production routing seam); every wire verdict must equal the
//!   in-process verdict for the same sample, so the attack success rate
//!   cannot diverge between the two paths, and the registry's per-variant
//!   accounting identity must hold at quiescence. Tenant token buckets are
//!   tight enough that a deliberately bursty tenant surfaces `RateLimited`
//!   refusals, which honest retry-after-hint clients absorb without losing
//!   samples.
//! * **Phase B — storm.** The defense is wrapped in a seeded
//!   `FaultyDefense` that fails the reformer stage, so the engine's
//!   breaker degrades the scheme; the degradation must be visible in the
//!   `degraded` flag of wire replies. Simultaneously a connect flood
//!   (more concurrent tenants than the connection cap) must produce
//!   `Overloaded` refusals at the door instead of queue collapse.
//!
//! Both phases assert the wire accounting identity
//! `accepted = answered + shed_expired + abandoned` at quiescence. The
//! outcome is written as JSON (`LOADGEN_REPORT`, default
//! `loadgen_report.json`) and the exit code is nonzero if any invariant
//! fails — CI treats this binary as a gate, not a demo.
//!
//! Knobs: `LOADGEN_TENANTS` (default 1000), `LOADGEN_THREADS` (default
//! 16), `LOADGEN_SEED` (default 7), plus the usual `--scale`/`--models`.

use adv_chaos::{FaultInjector, FaultPlan, FaultyDefense, SiteFaults, SITE_REFORM};
use adv_eval::config::CliArgs;
use adv_eval::sweep::{AttackKind, SweepRunner};
use adv_eval::zoo::{Scenario, Variant, Zoo};
use adv_magnet::{DefensePipeline, DefenseScheme, MagnetDefense, Verdict};
use adv_net::{
    derived_key, BusyReason, ClientConfig, NetClient, NetMetricsSnapshot, NetServer,
    NetServerConfig, Reply, TenantPolicy,
};
use adv_serve::{ServeConfig, ServeEngine, VariantRouter, DEFAULT_VARIANT};
use adv_tensor::Tensor;
use adv_zoo::{ModelZoo, NullLoader, ZooConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

const SECRET: u64 = 0x10AD_6E4E_7E4A_4001;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Sample {
    input: Tensor,
    label: usize,
}

/// Fraction of verdicts that fail to defend the true label.
fn asr(verdicts: &[Verdict], samples: &[Sample]) -> f64 {
    if verdicts.is_empty() {
        return 0.0;
    }
    let beaten = verdicts
        .iter()
        .zip(samples)
        .filter(|(v, s)| !v.defends(s.label))
        .count();
    beaten as f64 / verdicts.len() as f64
}

fn net_json(s: &NetMetricsSnapshot) -> String {
    format!(
        "{{\"connections_accepted\":{},\"connections_refused\":{},\"auth_failures\":{},\
         \"requests\":{},\"accepted\":{},\"answered\":{},\"shed_expired\":{},\"abandoned\":{},\
         \"busy\":{},\"rate_limited\":{},\"retries\":{},\"frame_errors\":{},\"evicted_slow\":{}}}",
        s.connections_accepted,
        s.connections_refused,
        s.auth_failures,
        s.requests,
        s.accepted,
        s.answered,
        s.shed_expired,
        s.abandoned,
        s.busy,
        s.rate_limited,
        s.retries,
        s.frame_errors,
        s.evicted_slow,
    )
}

/// In-process truth: one stacked classify per sample, the same per-sample
/// path the experiment binaries use.
fn in_process_verdicts(
    defense: &MagnetDefense,
    samples: &[Sample],
) -> Result<Vec<Verdict>, Box<dyn std::error::Error>> {
    let mut verdicts = Vec::with_capacity(samples.len());
    for s in samples {
        let x = Tensor::stack(std::slice::from_ref(&s.input))?;
        let mut v = defense.classify(&x, DefenseScheme::Full)?;
        verdicts.push(v.remove(0));
    }
    Ok(verdicts)
}

struct PhaseA {
    delivered: usize,
    missing: usize,
    mismatches: usize,
    net: NetMetricsSnapshot,
    wire_asr: f64,
    zoo_accounting_holds: bool,
    zoo_routing_epoch: u64,
}

/// Phase A: `tenants` sessions spread over `threads` workers, each
/// classifying its round-robin slice of the corpus; a bursty tenant then
/// slams its token bucket to prove rate limiting fires. The corpus is
/// served through a `ModelZoo`'s default variant — the production routing
/// seam — rather than a bare engine, so the parity checks also cover the
/// registry's routing-table hop.
#[allow(clippy::too_many_lines)]
fn phase_a(
    defense: Arc<MagnetDefense>,
    samples: &[Sample],
    expected: &[Verdict],
    tenants: usize,
    threads: usize,
) -> Result<PhaseA, Box<dyn std::error::Error>> {
    let zoo_root = std::env::temp_dir().join(format!("loadgen_zoo_{}", std::process::id()));
    let mut zoo_cfg = ZooConfig::new(&zoo_root);
    zoo_cfg.shard = ServeConfig {
        workers: 2,
        max_batch: 32,
        max_wait: Duration::from_millis(2),
        queue_capacity: 512,
        ..ServeConfig::default()
    };
    let zoo = Arc::new(ModelZoo::open(Arc::new(NullLoader), zoo_cfg)?);
    zoo.install(DEFAULT_VARIANT, defense)?;
    let server = NetServer::start(
        zoo.clone(),
        "127.0.0.1:0",
        NetServerConfig {
            max_connections: threads * 2 + 8,
            tenants: TenantPolicy::Derived {
                secret: SECRET,
                rate_per_sec: 50.0,
                burst: 8.0,
            },
            ..NetServerConfig::default()
        },
    )?;
    let addr = server.addr();

    // Every corpus sample is assigned to ceil(tenants/corpus) tenants, so
    // coverage is complete whenever tenants >= corpus (and striped when
    // not).
    let requests = tenants.max(samples.len());
    let next = Arc::new(AtomicUsize::new(0));
    let results: Arc<Mutex<Vec<Option<Verdict>>>> = Arc::new(Mutex::new(vec![None; samples.len()]));
    let mismatches = Arc::new(AtomicUsize::new(0));
    let inputs: Arc<Vec<Tensor>> = Arc::new(samples.iter().map(|s| s.input.clone()).collect());
    let expected: Arc<Vec<Verdict>> = Arc::new(expected.to_vec());

    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let next = next.clone();
            let results = results.clone();
            let mismatches = mismatches.clone();
            let inputs = inputs.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                loop {
                    // lint-ok(ordering-justified): work-stealing ticket
                    // counter; uniqueness is all that matters.
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= requests {
                        return;
                    }
                    let tenant = (t % u32::MAX as usize) as u32;
                    let sample_idx = t % inputs.len();
                    let key = derived_key(SECRET, tenant);
                    // One session per simulated tenant; rate-limit hints
                    // are honored, transient failures get a fresh session.
                    let mut attempts = 0;
                    'request: while attempts < 64 {
                        attempts += 1;
                        let mut client =
                            match NetClient::connect(addr, tenant, key, ClientConfig::default()) {
                                Ok(c) => c,
                                Err(_) => {
                                    std::thread::sleep(Duration::from_millis(10));
                                    continue 'request;
                                }
                            };
                        match client.classify(&inputs[sample_idx], 1, sample_idx as u32, 0) {
                            Ok(Reply::Verdict { verdict, .. }) => {
                                if verdict != expected[sample_idx] {
                                    // lint-ok(ordering-justified): pure
                                    // statistic, read after join.
                                    mismatches.fetch_add(1, Ordering::Relaxed);
                                }
                                let mut slots = results.lock().unwrap_or_else(|e| e.into_inner());
                                slots[sample_idx] = Some(verdict);
                                let _ = client.bye();
                                break 'request;
                            }
                            Ok(Reply::Busy { retry_after_ms, .. }) => {
                                let _ = client.bye();
                                std::thread::sleep(Duration::from_millis(
                                    u64::from(retry_after_ms).clamp(1, 200),
                                ));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(10)),
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("phase A worker panicked");
    }

    // Bursty tenant: fire a burst past the bucket with no pacing; at least
    // one request must bounce with RateLimited.
    let tenant = 0u32;
    let mut bursty = NetClient::connect(
        addr,
        tenant,
        derived_key(SECRET, tenant),
        ClientConfig::default(),
    )?;
    let mut bounced = 0usize;
    for _ in 0..16 {
        match bursty.classify(&inputs[0], 1, 0, 0) {
            Ok(Reply::Busy {
                reason: BusyReason::RateLimited,
                ..
            }) => bounced += 1,
            Ok(_) => {}
            Err(e) => return Err(format!("bursty tenant hit a hard error: {e}").into()),
        }
    }
    let _ = bursty.bye();
    let _ = bounced; // visible via net.rate_limited below

    let net = server.shutdown();
    let zoo_metrics = zoo
        .variant_metrics(DEFAULT_VARIANT)
        .ok_or("default variant vanished from the routing table")?;
    let zoo_accounting_holds = zoo_metrics.submitted
        == zoo_metrics.completed + zoo_metrics.failed + zoo_metrics.shed_expired;
    let zoo_routing_epoch = zoo.routing_epoch();
    drop(zoo);
    let _ = std::fs::remove_dir_all(&zoo_root);

    let slots = results.lock().unwrap_or_else(|e| e.into_inner());
    let wire: Vec<Verdict> = slots.iter().flatten().cloned().collect();
    let delivered = wire.len();
    let wire_samples: Vec<&Sample> = samples
        .iter()
        .zip(slots.iter())
        .filter(|(_, v)| v.is_some())
        .map(|(s, _)| s)
        .collect();
    let wire_asr = if wire.is_empty() {
        0.0
    } else {
        wire.iter()
            .zip(&wire_samples)
            .filter(|(v, s)| !v.defends(s.label))
            .count() as f64
            / wire.len() as f64
    };
    Ok(PhaseA {
        delivered,
        missing: samples.len() - delivered,
        // lint-ok(ordering-justified): workers joined above; this is the
        // final value.
        mismatches: mismatches.load(Ordering::Relaxed),
        net,
        wire_asr,
        zoo_accounting_holds,
        zoo_routing_epoch,
    })
}

struct PhaseB {
    degraded_replies: usize,
    pipeline_errors: usize,
    refused_connections: usize,
    net: NetMetricsSnapshot,
}

/// Phase B: reformer faults trip the breaker while a connect flood hits
/// the connection cap.
fn phase_b(
    defense: Arc<MagnetDefense>,
    samples: &[Sample],
    seed: u64,
) -> Result<PhaseB, Box<dyn std::error::Error>> {
    let plan = FaultPlan::new(seed).with(SiteFaults::at(SITE_REFORM).errors(1.0).limit(48));
    let injector = Arc::new(FaultInjector::new(plan)?);
    let faulty: Arc<dyn DefensePipeline> = Arc::new(FaultyDefense::new(defense, injector));
    let engine = Arc::new(ServeEngine::start(
        faulty,
        ServeConfig {
            workers: 2,
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            queue_capacity: 256,
            ..ServeConfig::default()
        },
    )?);
    const CAP: usize = 12;
    const STORMERS: usize = 40;
    let server = NetServer::start(
        engine.clone(),
        "127.0.0.1:0",
        NetServerConfig {
            max_connections: CAP,
            tenants: TenantPolicy::Derived {
                secret: SECRET,
                rate_per_sec: 1e6,
                burst: 1e6,
            },
            ..NetServerConfig::default()
        },
    )?;
    let addr = server.addr();
    let barrier = Arc::new(Barrier::new(STORMERS));
    let inputs: Arc<Vec<Tensor>> =
        Arc::new(samples.iter().take(8).map(|s| s.input.clone()).collect());

    let stormers: Vec<_> = (0..STORMERS as u32)
        .map(|tenant| {
            let barrier = barrier.clone();
            let inputs = inputs.clone();
            std::thread::spawn(move || {
                let key = derived_key(SECRET, tenant);
                let mut degraded = 0usize;
                let mut errors = 0usize;
                let mut refused = 0usize;
                barrier.wait();
                // Reconnect pressure: every round is a fresh session, so
                // the door's connection cap stays contended for the whole
                // storm.
                for round in 0..6 {
                    let client = NetClient::connect(addr, tenant, key, ClientConfig::default());
                    let mut client = match client {
                        Ok(c) => c,
                        Err(adv_net::NetError::Refused {
                            reason: BusyReason::Overloaded,
                            ..
                        }) => {
                            refused += 1;
                            std::thread::sleep(Duration::from_millis(20));
                            continue;
                        }
                        Err(_) => {
                            std::thread::sleep(Duration::from_millis(20));
                            continue;
                        }
                    };
                    for (i, input) in inputs.iter().enumerate() {
                        match client.classify(input, 2, (round * 8 + i) as u32, 0) {
                            Ok(Reply::Verdict { degraded: true, .. }) => degraded += 1,
                            Ok(_) => {}
                            Err(_) => {
                                errors += 1;
                                break;
                            }
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    let _ = client.bye();
                }
                (degraded, errors, refused)
            })
        })
        .collect();
    let mut degraded_replies = 0usize;
    let mut pipeline_errors = 0usize;
    let mut refused_connections = 0usize;
    for s in stormers {
        let (d, e, r) = s.join().expect("storm thread panicked");
        degraded_replies += d;
        pipeline_errors += e;
        refused_connections += r;
    }
    let net = server.shutdown();
    drop(engine);
    Ok(PhaseB {
        degraded_replies,
        pipeline_errors,
        refused_connections,
        net,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliArgs::from_env();
    let tenants = env_usize("LOADGEN_TENANTS", 1000);
    let threads = env_usize("LOADGEN_THREADS", 16).max(1);
    let seed = env_usize("LOADGEN_SEED", 7) as u64;
    let report_path =
        std::env::var("LOADGEN_REPORT").unwrap_or_else(|_| "loadgen_report.json".into());

    let zoo = Zoo::new(&args.models_dir, args.scale);
    let mut runner = SweepRunner::new(&zoo, Scenario::Mnist)?;
    let defense = Arc::new(zoo.defense(Scenario::Mnist, Variant::DefaultJsd)?);

    // The C&W-L2 / EAD-L1 contrast pair at κ = 0, as in the paper.
    let labels = runner.attack_set().labels.clone();
    let mut samples = Vec::new();
    for kind in AttackKind::figure_trio().into_iter().take(2) {
        let outcome = runner.outcome(&kind, 0.0)?;
        for (i, &label) in labels.iter().enumerate() {
            samples.push(Sample {
                input: outcome.adversarial.index_axis0(i)?,
                label,
            });
        }
    }
    println!(
        "loadgen: corpus {} samples | {tenants} tenants on {threads} threads | seed {seed}",
        samples.len()
    );

    let expected = in_process_verdicts(&defense, &samples)?;
    let inproc_asr = asr(&expected, &samples);

    let a = phase_a(defense.clone(), &samples, &expected, tenants, threads)?;
    println!(
        "phase A: delivered {}/{} | mismatches {} | rate_limited {} | wire ASR {:.3} vs in-process {:.3}",
        a.delivered,
        samples.len(),
        a.mismatches,
        a.net.rate_limited,
        a.wire_asr,
        inproc_asr,
    );

    let b = phase_b(defense, &samples, seed)?;
    println!(
        "phase B: degraded replies {} | pipeline errors {} | refused connects {} (door count {})",
        b.degraded_replies, b.pipeline_errors, b.refused_connections, b.net.connections_refused,
    );

    let checks: Vec<(&str, bool)> = vec![
        ("corpus_fully_delivered", a.missing == 0),
        ("verdict_parity", a.mismatches == 0),
        ("asr_parity", (a.wire_asr - inproc_asr).abs() < 1e-9),
        ("rate_limit_visible", a.net.rate_limited > 0),
        ("accounting_phase_a", a.net.accounting_holds()),
        ("zoo_accounting", a.zoo_accounting_holds),
        ("zoo_table_stable", a.zoo_routing_epoch == 1),
        ("breaker_degradation_visible", b.degraded_replies > 0),
        ("connect_flood_refused", b.net.connections_refused > 0),
        ("accounting_phase_b", b.net.accounting_holds()),
    ];
    let pass = checks.iter().all(|(_, ok)| *ok);

    let invariants = checks
        .iter()
        .map(|(name, ok)| format!("\"{name}\":{ok}"))
        .collect::<Vec<_>>()
        .join(",");
    let report = format!(
        "{{\n  \"tenants\":{tenants},\n  \"threads\":{threads},\n  \"seed\":{seed},\n  \
         \"corpus\":{},\n  \"inprocess_asr\":{inproc_asr:.6},\n  \"phase_a\":{{\"delivered\":{},\
         \"missing\":{},\"mismatches\":{},\"wire_asr\":{:.6},\"net\":{}}},\n  \
         \"phase_b\":{{\"degraded_replies\":{},\"pipeline_errors\":{},\
         \"refused_connections\":{},\"net\":{}}},\n  \"invariants\":{{{invariants}}},\n  \
         \"pass\":{pass}\n}}\n",
        samples.len(),
        a.delivered,
        a.missing,
        a.mismatches,
        a.wire_asr,
        net_json(&a.net),
        b.degraded_replies,
        b.pipeline_errors,
        b.refused_connections,
        net_json(&b.net),
    );
    std::fs::write(&report_path, &report)?;
    println!("report written to {report_path}");

    if !pass {
        for (name, ok) in &checks {
            if !ok {
                eprintln!("INVARIANT FAILED: {name}");
            }
        }
        std::process::exit(1);
    }
    println!("all invariants hold");
    Ok(())
}
