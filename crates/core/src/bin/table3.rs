//! Reproduces **Table III**: MNIST test accuracy with and without each
//! MagNet variant (Default, D+JSD, D+256, D+256+JSD).

use adv_eval::config::CliArgs;
use adv_eval::report::write_csv;
use adv_eval::tables::{accuracy_table, format_accuracy_table};
use adv_eval::zoo::{Scenario, Zoo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = CliArgs::from_env();
    let zoo = Zoo::new(&args.models_dir, args.scale);
    println!("=== Table III (MNIST test accuracy %) ===");
    let rows = accuracy_table(&zoo, Scenario::Mnist)?;
    println!("{}", format_accuracy_table(&rows));
    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.label().to_string(),
                format!("{:.4}", r.without),
                format!("{:.4}", r.with),
            ]
        })
        .collect();
    write_csv(
        format!("{}/table3_mnist.csv", args.out_dir),
        &["variant", "without_magnet", "with_magnet"],
        &csv_rows,
    )?;
    Ok(())
}
