//! Reproduction of the paper's figures (as data series; CSV + terminal
//! sparklines rather than pixels).
//!
//! | Paper figure | Function |
//! |---|---|
//! | Fig. 2 (a–d) | [`defense_comparison`] (MNIST, one panel per variant) |
//! | Fig. 3 (a–b) | [`defense_comparison`] (CIFAR) |
//! | Fig. 4 / 5 | [`scheme_ablation`] with the C&W attack |
//! | Fig. 6–11 | [`scheme_ablation_grid`] with the EAD β × rule grid |
//! | Fig. 12 / 13 | [`loss_ablation`] (MSE- vs MAE-trained auto-encoders) |

use crate::sweep::{AttackKind, Curve, SweepRunner};
use crate::zoo::{Scenario, Variant, Zoo};
use crate::Result;
use adv_attacks::DecisionRule;
use adv_magnet::DefenseScheme;

/// One figure panel: a titled set of curves over the κ grid.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Panel title (e.g. "Default (D)" or "L1 decision rule beta=0.01").
    pub title: String,
    /// The curves of this panel.
    pub curves: Vec<Curve>,
}

fn kappas_for(zoo: &Zoo, scenario: Scenario) -> Vec<f32> {
    match scenario {
        Scenario::Mnist => zoo.scale().mnist_kappas(),
        Scenario::Cifar => zoo.scale().cifar_kappas(),
    }
}

/// Figures 2 / 3: defense accuracy (full scheme) vs κ for C&W, EAD-L1 and
/// EAD-EN (β = 0.1), one panel per defense variant.
///
/// # Errors
///
/// Propagates model, attack and defense errors.
pub fn defense_comparison(zoo: &Zoo, scenario: Scenario) -> Result<Vec<Panel>> {
    let kappas = kappas_for(zoo, scenario);
    let mut runner = SweepRunner::new(zoo, scenario)?;
    let mut panels = Vec::new();
    for &variant in Variant::for_scenario(scenario) {
        let mut defense = zoo.defense(scenario, variant)?;
        let mut curves = Vec::new();
        for kind in AttackKind::figure_trio() {
            curves.push(runner.curve(&kind, &kappas, &mut defense, DefenseScheme::Full)?);
        }
        panels.push(Panel {
            title: variant.label().to_string(),
            curves,
        });
    }
    Ok(panels)
}

/// Figures 4 / 5: the four-scheme ablation (no defense / detector /
/// reformer / both) under the C&W attack, one panel per variant.
///
/// # Errors
///
/// Propagates model, attack and defense errors.
pub fn scheme_ablation(zoo: &Zoo, scenario: Scenario) -> Result<Vec<Panel>> {
    let kappas = kappas_for(zoo, scenario);
    let mut runner = SweepRunner::new(zoo, scenario)?;
    let mut panels = Vec::new();
    for &variant in Variant::for_scenario(scenario) {
        let mut defense = zoo.defense(scenario, variant)?;
        let curves = runner.scheme_curves(&AttackKind::Cw, &kappas, &mut defense)?;
        panels.push(Panel {
            title: variant.label().to_string(),
            curves,
        });
    }
    Ok(panels)
}

/// Figures 6–11: the four-scheme ablation under every EAD configuration
/// (β × decision rule), against one defense variant.
///
/// # Errors
///
/// Propagates model, attack and defense errors.
pub fn scheme_ablation_grid(zoo: &Zoo, scenario: Scenario, variant: Variant) -> Result<Vec<Panel>> {
    let kappas = kappas_for(zoo, scenario);
    let mut runner = SweepRunner::new(zoo, scenario)?;
    let mut defense = zoo.defense(scenario, variant)?;
    let mut panels = Vec::new();
    for kind in AttackKind::ead_grid() {
        let AttackKind::Ead { rule, beta } = kind else {
            continue;
        };
        let curves = runner.scheme_curves(&kind, &kappas, &mut defense)?;
        panels.push(Panel {
            title: format!("{} decision rule beta={beta}", rule.label()),
            curves,
        });
    }
    Ok(panels)
}

/// Figures 12 / 13: MSE- vs MAE-trained auto-encoders (default MagNet)
/// against C&W and EAD at β ∈ {1e-3, 1e-1} under both rules, full scheme.
/// Returns two panels: "mean squared error" and "mean absolute error".
///
/// # Errors
///
/// Propagates model, attack and defense errors.
pub fn loss_ablation(zoo: &Zoo, scenario: Scenario) -> Result<Vec<Panel>> {
    let kappas = kappas_for(zoo, scenario);
    let mut runner = SweepRunner::new(zoo, scenario)?;
    let kinds: Vec<AttackKind> = {
        let mut v = vec![AttackKind::Cw];
        for rule in [DecisionRule::L1, DecisionRule::ElasticNet] {
            for beta in [1e-3f32, 1e-1] {
                v.push(AttackKind::Ead { rule, beta });
            }
        }
        v
    };
    let mut panels = Vec::new();
    for (title, variant) in [
        ("mean squared error", Variant::Default),
        ("mean absolute error", Variant::MaeDefault),
    ] {
        let mut defense = zoo.defense(scenario, variant)?;
        let mut curves = Vec::new();
        for kind in &kinds {
            curves.push(runner.curve(kind, &kappas, &mut defense, DefenseScheme::Full)?);
        }
        panels.push(Panel {
            title: title.to_string(),
            curves,
        });
    }
    Ok(panels)
}

/// Renders a panel as an ASCII chart: one row per curve with accuracy per κ.
pub fn format_panel(panel: &Panel) -> String {
    let mut out = format!("── {} ──\n", panel.title);
    if let Some(first) = panel.curves.first() {
        out.push_str("kappa:      ");
        for p in &first.points {
            out.push_str(&format!("{:>6}", p.kappa));
        }
        out.push('\n');
    }
    for curve in &panel.curves {
        out.push_str(&format!("{:<28}", curve.label));
        for p in &curve.points {
            out.push_str(&format!("{:>5.1}%", p.accuracy * 100.0));
        }
        out.push('\n');
    }
    out
}

/// Flattens panels into CSV rows: `panel,curve,kappa,accuracy`.
pub fn panels_to_csv_rows(panels: &[Panel]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for panel in panels {
        for curve in &panel.curves {
            for p in &curve.points {
                rows.push(vec![
                    panel.title.clone(),
                    curve.label.clone(),
                    format!("{}", p.kappa),
                    format!("{:.4}", p.accuracy),
                ]);
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::CurvePoint;

    fn sample_panel() -> Panel {
        Panel {
            title: "Default (D)".into(),
            curves: vec![Curve {
                label: "C&W L2 attack".into(),
                points: vec![
                    CurvePoint {
                        kappa: 0.0,
                        accuracy: 0.95,
                    },
                    CurvePoint {
                        kappa: 10.0,
                        accuracy: 0.90,
                    },
                ],
            }],
        }
    }

    #[test]
    fn panel_formatting() {
        let s = format_panel(&sample_panel());
        assert!(s.contains("Default (D)"));
        assert!(s.contains("95.0%"));
        assert!(s.contains("kappa:"));
    }

    #[test]
    fn csv_rows_flatten_everything() {
        let rows = panels_to_csv_rows(&[sample_panel()]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], "Default (D)");
        assert_eq!(rows[1][2], "10");
    }
}
