//! The model zoo: datasets, victim classifiers, defensive auto-encoders and
//! assembled MagNet variants — all trained once and cached on disk.
//!
//! Caching matters because every table and figure shares the same trained
//! models; the first binary to run pays the training cost, the rest load
//! from `models/`. Cache file names encode the scale parameters that affect
//! the artifact, so changing the scale retrains rather than reusing stale
//! models.

use crate::config::Scale;
use crate::Result;
use adv_data::synth::{cifar_like, mnist_like};
use adv_data::Dataset;
use adv_magnet::variants::{
    assemble_cifar_defense, assemble_mnist_defense, train_cifar_autoencoder_checkpointed,
    train_mnist_autoencoders_checkpointed, MnistAutoencoders, TrainSpec,
};
use adv_magnet::{arch, Autoencoder, MagnetDefense};
use adv_nn::checkpoint::clear_checkpoint;
use adv_nn::loss::ReconstructionLoss;
use adv_nn::optim::Adam;
use adv_nn::serialize::{load_model, save_model};
use adv_nn::train::{fit_classifier, gather0, TrainConfig};
use adv_nn::{CheckpointCfg, Sequential};
use std::path::{Path, PathBuf};

/// Loads a cached model, treating *any* failure as a cache miss: a missing
/// file silently, a corrupt/stale one with a log line (the store has already
/// quarantined it to `<name>.corrupt`). The caller then retrains — the zoo
/// never hard-fails on bad cache bytes.
fn try_load_model(path: &Path) -> Option<Sequential> {
    match load_model(path) {
        Ok(net) => Some(net),
        Err(e) => {
            let missing = matches!(&e, adv_nn::NnError::Store(s) if s.is_not_found());
            if !missing {
                eprintln!(
                    "zoo: cached model {} rejected ({e}); retraining",
                    path.display()
                );
            }
            None
        }
    }
}

/// Which of the paper's two evaluation scenarios to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// MNIST-like 28×28 grayscale digits.
    Mnist,
    /// CIFAR-like 16×16 RGB scenes.
    Cifar,
}

impl Scenario {
    /// Lowercase name used in cache files and reports.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Mnist => "mnist",
            Scenario::Cifar => "cifar",
        }
    }

    /// Image channels.
    pub fn channels(self) -> usize {
        match self {
            Scenario::Mnist => 1,
            Scenario::Cifar => 3,
        }
    }

    /// Image side length.
    pub fn side(self) -> usize {
        match self {
            Scenario::Mnist => 28,
            Scenario::Cifar => 16,
        }
    }
}

/// The defense variants evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Default MagNet (D). On MNIST: two reconstruction detectors. On
    /// CIFAR: reconstruction + JSD detectors (the paper's CIFAR default).
    Default,
    /// D plus two JSD detectors (MNIST robust variant, Fig. 2b).
    DefaultJsd,
    /// D with wide auto-encoders ("D+256", Fig. 2c / 3b).
    Robust,
    /// Wide auto-encoders plus JSD detectors ("D+256+JSD", Fig. 2d).
    RobustJsd,
    /// Default architecture but MAE-trained auto-encoders (Figs. 12–13).
    MaeDefault,
}

impl Variant {
    /// The paper's display name.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Default => "Default (D)",
            Variant::DefaultJsd => "D+JSD",
            Variant::Robust => "D+256",
            Variant::RobustJsd => "D+256+JSD",
            Variant::MaeDefault => "D (MAE loss)",
        }
    }

    /// The variants evaluated per scenario in the paper (Tables III/IV vs
    /// VI/VII).
    pub fn for_scenario(scenario: Scenario) -> &'static [Variant] {
        match scenario {
            Scenario::Mnist => &[
                Variant::Default,
                Variant::DefaultJsd,
                Variant::Robust,
                Variant::RobustJsd,
            ],
            Scenario::Cifar => &[Variant::Default, Variant::Robust],
        }
    }
}

/// Train/validation/test splits for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioData {
    /// Training split (classifier and auto-encoders).
    pub train: Dataset,
    /// Validation split (detector calibration).
    pub valid: Dataset,
    /// Test split (clean accuracy, attack pool).
    pub test: Dataset,
}

/// A ready-to-attack bundle: the victim classifier plus data and its clean
/// test accuracy.
#[derive(Debug)]
pub struct Bundle {
    /// The trained undefended classifier.
    pub classifier: Sequential,
    /// The scenario's datasets.
    pub data: ScenarioData,
    /// Clean accuracy of the classifier on the test split (`0..=1`).
    pub clean_accuracy: f32,
}

/// Trains, caches and assembles every model the experiments need.
#[derive(Debug, Clone)]
pub struct Zoo {
    dir: PathBuf,
    scale: Scale,
}

impl Zoo {
    /// Creates a zoo rooted at `dir` with the given scale.
    pub fn new(dir: impl AsRef<Path>, scale: Scale) -> Self {
        Zoo {
            dir: dir.as_ref().to_path_buf(),
            scale,
        }
    }

    /// A zoo at the default (`quick`) scale.
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` keeps the signature stable for future
    /// validation.
    pub fn with_defaults(dir: impl AsRef<Path>) -> Result<Self> {
        Ok(Self::new(dir, Scale::quick()))
    }

    /// The configured scale.
    pub fn scale(&self) -> &Scale {
        &self.scale
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Deterministically generates the datasets for a scenario.
    pub fn data(&self, scenario: Scenario) -> ScenarioData {
        let s = &self.scale;
        let base = s.seed ^ (scenario.name().len() as u64) << 32;
        let gen = |n: usize, salt: u64| match scenario {
            Scenario::Mnist => mnist_like(n, base.wrapping_add(salt)),
            Scenario::Cifar => cifar_like(n, base.wrapping_add(salt)),
        };
        ScenarioData {
            train: gen(s.train_size, 1),
            valid: gen(s.valid_size, 2),
            test: gen(s.test_size, 3),
        }
    }

    fn classifier_path(&self, scenario: Scenario) -> PathBuf {
        let s = &self.scale;
        self.dir.join(format!(
            "{}_clf_t{}_e{}_ls{}_s{}.advnn",
            scenario.name(),
            s.train_size,
            s.classifier_epochs,
            s.label_smoothing,
            s.seed
        ))
    }

    fn classifier_specs(&self, scenario: Scenario) -> Vec<adv_nn::LayerSpec> {
        match scenario {
            Scenario::Mnist => arch::mnist_classifier(28, 1, 8, 16, 64, 10),
            Scenario::Cifar => arch::cifar_classifier(16, 3, 8, 16, 64, 10),
        }
    }

    /// Loads or trains the undefended victim classifier.
    ///
    /// # Errors
    ///
    /// Propagates training and serialization errors.
    pub fn classifier(&self, scenario: Scenario) -> Result<Sequential> {
        let path = self.classifier_path(scenario);
        if let Some(net) = try_load_model(&path) {
            return Ok(net);
        }
        let data = self.data(scenario);
        let mut net = Sequential::from_specs(&self.classifier_specs(scenario), self.scale.seed)?;
        let mut opt = Adam::with_defaults(1e-3);
        let ckpt_path = path.with_extension("ckpt");
        let cfg = TrainConfig {
            epochs: self.scale.classifier_epochs,
            batch_size: 32,
            seed: self.scale.seed ^ 0xC1A5,
            label_smoothing: self.scale.label_smoothing,
            verbose: false,
            checkpoint: Some(CheckpointCfg::every_epoch(ckpt_path.clone())),
        };
        fit_classifier(
            &mut net,
            &mut opt,
            data.train.images(),
            data.train.labels(),
            &cfg,
        )?;
        save_model(&net, &path)?;
        // The final model is durably saved; the checkpoint is dead weight.
        clear_checkpoint(&ckpt_path)?;
        Ok(net)
    }

    fn train_spec(
        &self,
        scenario: Scenario,
        filters: usize,
        loss: ReconstructionLoss,
    ) -> TrainSpec {
        TrainSpec {
            filters,
            loss,
            noise_std: match scenario {
                Scenario::Mnist => self.scale.ae_noise_mnist,
                Scenario::Cifar => self.scale.ae_noise_cifar,
            },
            smooth_noise_std: match scenario {
                Scenario::Mnist => 0.0,
                Scenario::Cifar => self.scale.ae_smooth_noise_cifar,
            },
            epochs: self.scale.ae_epochs,
            batch_size: 32,
            lr: 3e-3,
            seed: self.scale.seed ^ 0xAE5,
        }
    }

    fn ae_path(
        &self,
        scenario: Scenario,
        which: &str,
        filters: usize,
        loss: ReconstructionLoss,
    ) -> PathBuf {
        let s = &self.scale;
        let loss_tag = match loss {
            ReconstructionLoss::MeanSquaredError => "mse",
            ReconstructionLoss::MeanAbsoluteError => "mae",
        };
        self.dir.join(format!(
            "{}_{which}_f{filters}_{loss_tag}_e{}_t{}_s{}.advnn",
            scenario.name(),
            s.ae_epochs,
            s.train_size,
            s.seed
        ))
    }

    /// Directory for the resumable training checkpoints of one AE artifact
    /// family — keyed like the cache file so concurrent variants never share
    /// a checkpoint.
    fn ckpt_dir(&self, scenario: Scenario, filters: usize, loss: ReconstructionLoss) -> PathBuf {
        let loss_tag = match loss {
            ReconstructionLoss::MeanSquaredError => "mse",
            ReconstructionLoss::MeanAbsoluteError => "mae",
        };
        self.dir
            .join(format!("ckpt_{}_f{filters}_{loss_tag}", scenario.name()))
    }

    /// Loads or trains the two MNIST auto-encoders at the given width and
    /// reconstruction loss.
    ///
    /// # Errors
    ///
    /// Propagates training and serialization errors.
    pub fn mnist_autoencoders(
        &self,
        filters: usize,
        loss: ReconstructionLoss,
    ) -> Result<MnistAutoencoders> {
        let p1 = self.ae_path(Scenario::Mnist, "ae1", filters, loss);
        let p2 = self.ae_path(Scenario::Mnist, "ae2", filters, loss);
        if let (Some(n1), Some(n2)) = (try_load_model(&p1), try_load_model(&p2)) {
            return Ok(MnistAutoencoders {
                ae_one: Autoencoder::from_network(n1, loss, 0.1),
                ae_two: Autoencoder::from_network(n2, loss, 0.1),
            });
        }
        let data = self.data(Scenario::Mnist);
        let ckpt_dir = self.ckpt_dir(Scenario::Mnist, filters, loss);
        let aes = train_mnist_autoencoders_checkpointed(
            1,
            &self.train_spec(Scenario::Mnist, filters, loss),
            data.train.images(),
            Some(&ckpt_dir),
        )?;
        save_model(aes.ae_one.network(), &p1)?;
        save_model(aes.ae_two.network(), &p2)?;
        std::fs::remove_dir_all(&ckpt_dir).ok();
        Ok(aes)
    }

    /// Loads or trains the CIFAR auto-encoder at the given width and loss.
    ///
    /// # Errors
    ///
    /// Propagates training and serialization errors.
    pub fn cifar_autoencoder(
        &self,
        filters: usize,
        loss: ReconstructionLoss,
    ) -> Result<Autoencoder> {
        let p = self.ae_path(Scenario::Cifar, "ae", filters, loss);
        if let Some(net) = try_load_model(&p) {
            return Ok(Autoencoder::from_network(net, loss, 0.1));
        }
        let data = self.data(Scenario::Cifar);
        let ckpt_dir = self.ckpt_dir(Scenario::Cifar, filters, loss);
        let ae = train_cifar_autoencoder_checkpointed(
            3,
            &self.train_spec(Scenario::Cifar, filters, loss),
            data.train.images(),
            Some(&ckpt_dir),
        )?;
        save_model(ae.network(), &p)?;
        std::fs::remove_dir_all(&ckpt_dir).ok();
        Ok(ae)
    }

    fn variant_params(&self, variant: Variant) -> (usize, ReconstructionLoss, bool) {
        // (filters, loss, with_jsd_on_mnist)
        match variant {
            Variant::Default => (
                self.scale.default_filters,
                ReconstructionLoss::MeanSquaredError,
                false,
            ),
            Variant::DefaultJsd => (
                self.scale.default_filters,
                ReconstructionLoss::MeanSquaredError,
                true,
            ),
            Variant::Robust => (
                self.scale.robust_filters,
                ReconstructionLoss::MeanSquaredError,
                false,
            ),
            Variant::RobustJsd => (
                self.scale.robust_filters,
                ReconstructionLoss::MeanSquaredError,
                true,
            ),
            Variant::MaeDefault => (
                self.scale.default_filters,
                ReconstructionLoss::MeanAbsoluteError,
                false,
            ),
        }
    }

    /// Assembles (training whatever is missing) a calibrated MagNet variant.
    ///
    /// # Errors
    ///
    /// Propagates training, assembly and calibration errors.
    pub fn defense(&self, scenario: Scenario, variant: Variant) -> Result<MagnetDefense> {
        let (filters, loss, with_jsd) = self.variant_params(variant);
        let classifier = self.classifier(scenario)?;
        let data = self.data(scenario);
        let valid = data.valid.images();
        // JSD temperatures live on the victim's logit scale, exactly like κ
        // (see Scale::kappa_unit_*): the paper's T = 10/40 assume logits in
        // the tens; on this substrate they are scaled by the same unit.
        let unit = match scenario {
            Scenario::Mnist => self.scale.kappa_unit_mnist,
            Scenario::Cifar => self.scale.kappa_unit_cifar,
        };
        let scaled = [10.0 * unit, 40.0 * unit];
        let jsd_temps: &[f32] = if scenario == Scenario::Cifar || with_jsd {
            // CIFAR's default MagNet already deploys the JSD detectors.
            &scaled
        } else {
            &[]
        };
        let defense = match scenario {
            Scenario::Mnist => {
                let aes = self.mnist_autoencoders(filters, loss)?;
                assemble_mnist_defense(
                    variant.label(),
                    &aes,
                    &classifier,
                    jsd_temps,
                    valid,
                    self.scale.fpr_mnist,
                )?
            }
            Scenario::Cifar => {
                let ae = self.cifar_autoencoder(filters, loss)?;
                assemble_cifar_defense(
                    variant.label(),
                    &ae,
                    &classifier,
                    jsd_temps,
                    valid,
                    self.scale.fpr_cifar,
                )?
            }
        };
        Ok(defense)
    }

    /// The classifier + data + clean-accuracy bundle for a scenario.
    ///
    /// # Errors
    ///
    /// Propagates training errors.
    pub fn bundle(&self, scenario: Scenario) -> Result<Bundle> {
        let mut classifier = self.classifier(scenario)?;
        let data = self.data(scenario);
        let clean_accuracy = classifier_accuracy(&mut classifier, &data.test)?;
        Ok(Bundle {
            classifier,
            data,
            clean_accuracy,
        })
    }
}

/// Accuracy of a classifier on a dataset, evaluated in chunks to bound
/// memory.
///
/// # Errors
///
/// Propagates forward-pass errors.
pub fn classifier_accuracy(net: &mut Sequential, ds: &Dataset) -> Result<f32> {
    if ds.is_empty() {
        return Ok(0.0);
    }
    let mut correct = 0usize;
    let indices: Vec<usize> = (0..ds.len()).collect();
    for chunk in indices.chunks(100) {
        let xb = gather0(ds.images(), chunk)?;
        let preds = net.predict(&xb)?;
        correct += preds
            .iter()
            .zip(chunk.iter().map(|&i| ds.labels()[i]))
            .filter(|(p, l)| **p == *l)
            .count();
    }
    Ok(correct as f32 / ds.len() as f32)
}

/// Accuracy of a MagNet-defended classifier on *clean* data under the full
/// scheme — the "With MagNet" rows of Tables III and VI. A clean image
/// counts as correct only if it is *not* flagged and classified correctly
/// after reforming.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn defended_clean_accuracy(defense: &mut MagnetDefense, ds: &Dataset) -> Result<f32> {
    use adv_magnet::{DefenseScheme, Verdict};
    if ds.is_empty() {
        return Ok(0.0);
    }
    let mut correct = 0usize;
    let indices: Vec<usize> = (0..ds.len()).collect();
    for chunk in indices.chunks(100) {
        let xb = gather0(ds.images(), chunk)?;
        let verdicts = defense.classify(&xb, DefenseScheme::Full)?;
        for (v, &i) in verdicts.iter().zip(chunk) {
            // On clean data a detection is a *mistake*, unlike on
            // adversarial data.
            if matches!(v, Verdict::Classified(p) if *p == ds.labels()[i]) {
                correct += 1;
            }
        }
    }
    Ok(correct as f32 / ds.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_zoo(tag: &str) -> Zoo {
        let dir = std::env::temp_dir().join(format!("adv_eval_zoo_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        Zoo::new(dir, Scale::smoke())
    }

    #[test]
    fn data_is_deterministic_and_split() {
        let zoo = smoke_zoo("data");
        let a = zoo.data(Scenario::Mnist);
        let b = zoo.data(Scenario::Mnist);
        assert_eq!(a.train, b.train);
        assert_eq!(a.train.len(), Scale::smoke().train_size);
        assert_eq!(a.valid.len(), Scale::smoke().valid_size);
        assert_eq!(a.test.len(), Scale::smoke().test_size);
    }

    #[test]
    fn scenario_metadata() {
        assert_eq!(Scenario::Mnist.channels(), 1);
        assert_eq!(Scenario::Cifar.channels(), 3);
        assert_eq!(Scenario::Mnist.side(), 28);
        assert_eq!(Scenario::Mnist.name(), "mnist");
    }

    #[test]
    fn variant_lists_match_paper() {
        assert_eq!(Variant::for_scenario(Scenario::Mnist).len(), 4);
        assert_eq!(Variant::for_scenario(Scenario::Cifar).len(), 2);
        assert_eq!(Variant::Robust.label(), "D+256");
    }

    #[test]
    fn classifier_is_cached() {
        let zoo = smoke_zoo("clf_cache");
        let a = zoo.classifier(Scenario::Mnist).unwrap();
        // Second call must hit the cache and produce identical weights.
        let b = zoo.classifier(Scenario::Mnist).unwrap();
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert_eq!(pa.value, pb.value);
        }
        std::fs::remove_dir_all(zoo.dir()).ok();
    }

    #[test]
    fn corrupt_cached_classifier_is_quarantined_and_retrained() {
        let zoo = smoke_zoo("clf_corrupt");
        let a = zoo.classifier(Scenario::Mnist).unwrap();
        let path = zoo.classifier_path(Scenario::Mnist);
        assert!(path.exists());
        // Flip one byte in the cached artifact.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        // The zoo must detect the corruption, quarantine the file, and
        // retrain to the exact same weights (training is deterministic).
        let b = zoo.classifier(Scenario::Mnist).unwrap();
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert_eq!(pa.value, pb.value);
        }
        let quarantined: Vec<_> = std::fs::read_dir(zoo.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".corrupt"))
            .collect();
        assert_eq!(quarantined.len(), 1, "expected one quarantined file");
        assert!(path.exists(), "cache should be repopulated");
        std::fs::remove_dir_all(zoo.dir()).ok();
    }

    #[test]
    fn finished_training_leaves_no_checkpoints() {
        let zoo = smoke_zoo("no_ckpt_litter");
        zoo.classifier(Scenario::Mnist).unwrap();
        zoo.mnist_autoencoders(2, ReconstructionLoss::MeanSquaredError)
            .unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(zoo.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let n = e.file_name().to_string_lossy().into_owned();
                n.ends_with(".ckpt") || n.starts_with("ckpt_")
            })
            .collect();
        assert!(leftovers.is_empty(), "checkpoint litter: {leftovers:?}");
        std::fs::remove_dir_all(zoo.dir()).ok();
    }

    #[test]
    fn bundle_reports_plausible_accuracy() {
        let zoo = smoke_zoo("bundle");
        let bundle = zoo.bundle(Scenario::Mnist).unwrap();
        // Even 2 smoke epochs beat chance (10%) comfortably.
        assert!(
            bundle.clean_accuracy > 0.3,
            "clean accuracy {}",
            bundle.clean_accuracy
        );
        std::fs::remove_dir_all(zoo.dir()).ok();
    }

    #[test]
    fn defense_assembles_at_smoke_scale() {
        let zoo = smoke_zoo("defense");
        let mut defense = zoo.defense(Scenario::Mnist, Variant::Default).unwrap();
        assert_eq!(defense.num_detectors(), 2);
        let data = zoo.data(Scenario::Mnist);
        let acc = defended_clean_accuracy(&mut defense, &data.test).unwrap();
        assert!((0.0..=1.0).contains(&acc));
        std::fs::remove_dir_all(zoo.dir()).ok();
    }
}
