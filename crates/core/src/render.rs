//! Image rendering for Figure 1: PGM/PPM files and ASCII previews of
//! original vs adversarial examples.

use crate::{EvalError, Result};
use adv_tensor::Tensor;
use std::path::Path;

/// Writes a single NCHW image (batch item 0, 1 channel) as binary PGM.
///
/// # Errors
///
/// Returns [`EvalError::InvalidConfig`] for non-grayscale inputs and I/O
/// errors from the filesystem.
pub fn write_pgm(image: &Tensor, path: impl AsRef<Path>) -> Result<()> {
    let d = image.shape().dims();
    if d.len() != 4 || d[0] != 1 || d[1] != 1 {
        return Err(EvalError::InvalidConfig(format!(
            "write_pgm expects [1,1,h,w], got {:?}",
            d
        )));
    }
    let (h, w) = (d[2], d[3]);
    let mut out = format!("P5\n{w} {h}\n255\n").into_bytes();
    out.extend(
        image
            .as_slice()
            .iter()
            .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8),
    );
    if let Some(dir) = path.as_ref().parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, out)?;
    Ok(())
}

/// Writes a single NCHW RGB image (batch item 0, 3 channels) as binary PPM.
///
/// # Errors
///
/// Returns [`EvalError::InvalidConfig`] for non-RGB inputs and I/O errors.
pub fn write_ppm(image: &Tensor, path: impl AsRef<Path>) -> Result<()> {
    let d = image.shape().dims();
    if d.len() != 4 || d[0] != 1 || d[1] != 3 {
        return Err(EvalError::InvalidConfig(format!(
            "write_ppm expects [1,3,h,w], got {:?}",
            d
        )));
    }
    let (h, w) = (d[2], d[3]);
    let hw = h * w;
    let v = image.as_slice();
    let mut out = format!("P6\n{w} {h}\n255\n").into_bytes();
    for p in 0..hw {
        for ch in 0..3 {
            out.push((v[ch * hw + p].clamp(0.0, 1.0) * 255.0).round() as u8);
        }
    }
    if let Some(dir) = path.as_ref().parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, out)?;
    Ok(())
}

const SHADES: &[u8] = b" .:-=+*#%@";

/// Renders a `[1,c,h,w]` image as ASCII art (channel-averaged luminance).
///
/// # Errors
///
/// Returns [`EvalError::InvalidConfig`] for non-single-item batches.
pub fn ascii_art(image: &Tensor) -> Result<String> {
    let d = image.shape().dims();
    if d.len() != 4 || d[0] != 1 {
        return Err(EvalError::InvalidConfig(format!(
            "ascii_art expects [1,c,h,w], got {:?}",
            d
        )));
    }
    let (c, h, w) = (d[1], d[2], d[3]);
    let hw = h * w;
    let v = image.as_slice();
    let mut out = String::with_capacity(h * (w + 1));
    for y in 0..h {
        for x in 0..w {
            let p = y * w + x;
            let lum: f32 = (0..c).map(|ch| v[ch * hw + p]).sum::<f32>() / c as f32;
            let idx = ((lum.clamp(0.0, 1.0)) * (SHADES.len() - 1) as f32).round() as usize;
            out.push(SHADES[idx] as char);
        }
        out.push('\n');
    }
    Ok(out)
}

/// Two images side by side as ASCII (original | adversarial), with a header.
///
/// # Errors
///
/// Propagates [`ascii_art`] errors and shape mismatches.
pub fn ascii_pair(original: &Tensor, adversarial: &Tensor, header: &str) -> Result<String> {
    let a = ascii_art(original)?;
    let b = ascii_art(adversarial)?;
    let mut out = String::new();
    out.push_str(header);
    out.push('\n');
    for (la, lb) in a.lines().zip(b.lines()) {
        out.push_str(la);
        out.push_str("   |   ");
        out.push_str(lb);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_tensor::Shape;

    #[test]
    fn pgm_roundtrip_header() {
        let dir = std::env::temp_dir().join("adv_eval_render_test");
        std::fs::remove_dir_all(&dir).ok();
        let img = Tensor::from_fn(Shape::nchw(1, 1, 4, 6), |i| i as f32 / 23.0);
        let path = dir.join("x.pgm");
        write_pgm(&img, &path).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(data.starts_with(b"P5\n6 4\n255\n"));
        assert_eq!(data.len(), b"P5\n6 4\n255\n".len() + 24);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ppm_interleaves_channels() {
        let dir = std::env::temp_dir().join("adv_eval_render_ppm");
        std::fs::remove_dir_all(&dir).ok();
        // Red-only image: first byte of each pixel 255, others 0.
        let img = Tensor::from_fn(Shape::nchw(1, 3, 2, 2), |i| if i < 4 { 1.0 } else { 0.0 });
        let path = dir.join("x.ppm");
        write_ppm(&img, &path).unwrap();
        let data = std::fs::read(&path).unwrap();
        let header_len = b"P6\n2 2\n255\n".len();
        assert_eq!(&data[header_len..header_len + 3], &[255, 0, 0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ascii_uses_darker_glyphs_for_brighter_pixels() {
        let img = Tensor::from_vec(vec![0.0, 1.0, 0.5, 0.0], Shape::nchw(1, 1, 2, 2)).unwrap();
        let art = ascii_art(&img).unwrap();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines[0].chars().next(), Some(' '));
        assert_eq!(lines[0].chars().nth(1), Some('@'));
    }

    #[test]
    fn shape_validation() {
        let batch = Tensor::zeros(Shape::nchw(2, 1, 2, 2));
        assert!(write_pgm(&batch, "/tmp/never.pgm").is_err());
        assert!(ascii_art(&batch).is_err());
        let rgb = Tensor::zeros(Shape::nchw(1, 3, 2, 2));
        assert!(write_pgm(&rgb, "/tmp/never.pgm").is_err());
    }

    #[test]
    fn pair_renders_side_by_side() {
        let a = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        let b = Tensor::ones(Shape::nchw(1, 1, 2, 2));
        let s = ascii_pair(&a, &b, "label 3 -> 8").unwrap();
        assert!(s.starts_with("label 3 -> 8"));
        assert!(s.contains("   |   "));
    }
}
