//! The oblivious attack protocol (paper §III-A).
//!
//! 1. Randomly select `n` *correctly classified* test images.
//! 2. Craft untargeted adversarial examples against the **undefended**
//!    classifier (the attacker never sees MagNet).
//! 3. Keep the examples whose attack succeeded on the undefended model, and
//!    measure each defense's *classification accuracy* on them: the
//!    fraction detected or still classified correctly (after reforming).
//!    `ASR = 1 − accuracy` under the full scheme.

use crate::{EvalError, Result};
use adv_attacks::{Attack, AttackOutcome};
use adv_data::Dataset;
use adv_magnet::{DefenseScheme, MagnetDefense};
use adv_nn::train::gather0;
use adv_nn::Sequential;
use adv_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The images selected for attack: all correctly classified by the victim.
#[derive(Debug, Clone)]
pub struct AttackSet {
    /// Selected images, `[n, c, h, w]`.
    pub images: Tensor,
    /// Their true labels.
    pub labels: Vec<usize>,
}

/// Selects up to `n` correctly-classified test images (the paper selects
/// 1000), shuffled by `seed`.
///
/// # Errors
///
/// Returns [`EvalError::InvalidConfig`] when the classifier gets *nothing*
/// right (no attack pool exists).
pub fn select_attack_set(
    classifier: &mut Sequential,
    test: &Dataset,
    n: usize,
    seed: u64,
) -> Result<AttackSet> {
    let mut order: Vec<usize> = (0..test.len()).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut picked = Vec::new();
    for chunk in order.chunks(100) {
        if picked.len() >= n {
            break;
        }
        let xb = gather0(test.images(), chunk)?;
        let preds = classifier.predict(&xb)?;
        for (&i, p) in chunk.iter().zip(preds) {
            if p == test.labels()[i] {
                picked.push(i);
                if picked.len() >= n {
                    break;
                }
            }
        }
    }
    if picked.is_empty() {
        return Err(EvalError::InvalidConfig(
            "classifier classifies nothing correctly; cannot build attack set".into(),
        ));
    }
    let images = gather0(test.images(), &picked)?;
    let labels: Vec<usize> = picked.iter().map(|&i| test.labels()[i]).collect();
    Ok(AttackSet { images, labels })
}

/// The result of one oblivious attack evaluation against one defense.
#[derive(Debug, Clone)]
pub struct DefenseEvaluation {
    /// Attack success rate on the *undefended* model (`0..=1`).
    pub undefended_asr: f32,
    /// Per-scheme classification accuracy of the defense on the
    /// successfully crafted examples (`0..=1`).
    pub accuracy: [(DefenseScheme, f32); 4],
    /// Mean L1/L2 distortion over successful examples.
    pub mean_l1: Option<f32>,
    /// Mean L2 distortion over successful examples.
    pub mean_l2: Option<f32>,
}

impl DefenseEvaluation {
    /// Accuracy under a given scheme.
    pub fn accuracy_for(&self, scheme: DefenseScheme) -> f32 {
        self.accuracy
            .iter()
            .find(|(s, _)| *s == scheme)
            .map(|(_, a)| *a)
            .unwrap_or(0.0)
    }

    /// The paper's attack success rate **against the defense** (full
    /// scheme): `1 − accuracy(Full)`, as a percentage fraction in `0..=1`.
    pub fn defended_asr(&self) -> f32 {
        1.0 - self.accuracy_for(DefenseScheme::Full)
    }
}

/// Extracts the subset of `outcome` whose attack succeeded, with labels.
///
/// Returns `None` when no attack succeeded.
///
/// # Errors
///
/// Propagates tensor gather errors.
pub fn successful_examples(
    outcome: &AttackOutcome,
    labels: &[usize],
) -> Result<Option<(Tensor, Vec<usize>)>> {
    let idx: Vec<usize> = outcome
        .success
        .iter()
        .enumerate()
        .filter(|(_, &s)| s)
        .map(|(i, _)| i)
        .collect();
    if idx.is_empty() {
        return Ok(None);
    }
    let images = gather0(&outcome.adversarial, &idx)?;
    let lbls: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
    Ok(Some((images, lbls)))
}

/// Evaluates one attack outcome against one defense under all four schemes.
///
/// # Errors
///
/// Propagates defense pipeline errors.
pub fn evaluate_defense(
    defense: &mut MagnetDefense,
    outcome: &AttackOutcome,
    labels: &[usize],
) -> Result<DefenseEvaluation> {
    let undefended_asr = outcome.success_rate();
    let mut accuracy = [
        (DefenseScheme::None, 1.0f32),
        (DefenseScheme::DetectorOnly, 1.0),
        (DefenseScheme::ReformerOnly, 1.0),
        (DefenseScheme::Full, 1.0),
    ];
    if let Some((adv, lbls)) = successful_examples(outcome, labels)? {
        for (scheme, acc) in accuracy.iter_mut() {
            *acc = defense.accuracy(&adv, &lbls, *scheme)?;
        }
    }
    Ok(DefenseEvaluation {
        undefended_asr,
        accuracy,
        mean_l1: outcome.mean_l1_successful(),
        mean_l2: outcome.mean_l2_successful(),
    })
}

/// Runs one attack on the undefended classifier and evaluates it against a
/// set of defenses — the full oblivious protocol for a single attack
/// configuration.
///
/// # Errors
///
/// Propagates attack and defense errors.
pub fn oblivious_evaluation(
    classifier: &mut Sequential,
    defenses: &mut [&mut MagnetDefense],
    attack: &dyn Attack,
    set: &AttackSet,
) -> Result<(AttackOutcome, Vec<DefenseEvaluation>)> {
    let outcome = attack.run(classifier, &set.images, &set.labels)?;
    let mut evals = Vec::with_capacity(defenses.len());
    for defense in defenses.iter_mut() {
        evals.push(evaluate_defense(defense, &outcome, &set.labels)?);
    }
    Ok((outcome, evals))
}

/// Builds an [`AttackSet`] view over explicit images/labels (used when
/// reloading cached attack results).
///
/// # Errors
///
/// Returns [`EvalError::InvalidConfig`] on length mismatch.
pub fn attack_set_from_parts(images: Tensor, labels: Vec<usize>) -> Result<AttackSet> {
    if images.shape().rank() < 1 || images.shape().dim(0) != labels.len() {
        return Err(EvalError::InvalidConfig(format!(
            "attack set: {} images vs {} labels",
            images.shape().dims().first().copied().unwrap_or(0),
            labels.len()
        )));
    }
    Ok(AttackSet { images, labels })
}

/// Renders an `n × c × h × w` stack as a flat batch of rows for MLP-style
/// models (utility for tests).
pub fn flatten_batch(x: &Tensor) -> Result<Tensor> {
    let n = x.shape().dim(0);
    let features = x.shape().volume() / n.max(1);
    Ok(x.reshape(Shape::matrix(n, features))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_attacks::Fgsm;
    use adv_data::synth::mnist_like;
    use adv_nn::LayerSpec;

    /// A deliberately weak "classifier": logits = mean pixel vs 1 − mean.
    fn tiny_classifier() -> Sequential {
        Sequential::from_specs(
            &[
                LayerSpec::Flatten,
                LayerSpec::Dense {
                    inputs: 28 * 28,
                    outputs: 10,
                },
            ],
            1,
        )
        .unwrap()
    }

    #[test]
    fn attack_set_only_contains_correct_predictions() {
        let ds = mnist_like(60, 11);
        let mut clf = tiny_classifier();
        // Untrained classifier: most images wrong, but *some* class matches.
        match select_attack_set(&mut clf, &ds, 10, 3) {
            Ok(set) => {
                let preds = clf.predict(&set.images).unwrap();
                assert_eq!(preds, set.labels);
            }
            Err(EvalError::InvalidConfig(_)) => {
                // Acceptable: the random classifier got nothing right.
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn successful_subset_extraction() {
        let images = Tensor::from_fn(Shape::matrix(3, 4), |i| i as f32);
        let outcome =
            AttackOutcome::from_images(&images, images.clone(), vec![true, false, true]).unwrap();
        let (sub, lbls) = successful_examples(&outcome, &[7, 8, 9]).unwrap().unwrap();
        assert_eq!(sub.shape().dims(), &[2, 4]);
        assert_eq!(lbls, vec![7, 9]);
    }

    #[test]
    fn no_success_yields_none() {
        let images = Tensor::zeros(Shape::matrix(2, 4));
        let outcome =
            AttackOutcome::from_images(&images, images.clone(), vec![false, false]).unwrap();
        assert!(successful_examples(&outcome, &[0, 1]).unwrap().is_none());
    }

    #[test]
    fn attack_set_from_parts_validates() {
        let images = Tensor::zeros(Shape::matrix(2, 4));
        assert!(attack_set_from_parts(images.clone(), vec![0]).is_err());
        assert!(attack_set_from_parts(images, vec![0, 1]).is_ok());
    }

    #[test]
    fn fgsm_runs_through_oblivious_protocol() {
        // End-to-end smoke: tiny data, tiny classifier, FGSM, no defense.
        let ds = mnist_like(40, 5);
        let mut clf = tiny_classifier();
        if let Ok(set) = select_attack_set(&mut clf, &ds, 8, 1) {
            let attack = Fgsm::new(0.2).unwrap();
            let outcome = attack.run(&mut clf, &set.images, &set.labels).unwrap();
            assert_eq!(outcome.success.len(), set.labels.len());
        }
    }
}
