use std::fmt;

/// Errors produced by the evaluation harness.
#[derive(Debug)]
pub enum EvalError {
    /// Tensor substrate error.
    Tensor(adv_tensor::TensorError),
    /// Network substrate error.
    Nn(adv_nn::NnError),
    /// Dataset error.
    Data(adv_data::DataError),
    /// Defense error.
    Magnet(adv_magnet::MagnetError),
    /// Attack error.
    Attack(adv_attacks::AttackError),
    /// Filesystem error (model cache, result output).
    Io(std::io::Error),
    /// Durable artifact store error (envelope corruption, atomic write).
    Store(adv_store::StoreError),
    /// Invalid experiment configuration.
    InvalidConfig(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Tensor(e) => write!(f, "tensor error: {e}"),
            EvalError::Nn(e) => write!(f, "network error: {e}"),
            EvalError::Data(e) => write!(f, "data error: {e}"),
            EvalError::Magnet(e) => write!(f, "defense error: {e}"),
            EvalError::Attack(e) => write!(f, "attack error: {e}"),
            EvalError::Io(e) => write!(f, "i/o error: {e}"),
            EvalError::Store(e) => write!(f, "artifact store error: {e}"),
            EvalError::InvalidConfig(msg) => write!(f, "invalid experiment config: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Tensor(e) => Some(e),
            EvalError::Nn(e) => Some(e),
            EvalError::Data(e) => Some(e),
            EvalError::Magnet(e) => Some(e),
            EvalError::Attack(e) => Some(e),
            EvalError::Io(e) => Some(e),
            EvalError::Store(e) => Some(e),
            EvalError::InvalidConfig(_) => None,
        }
    }
}

impl From<adv_tensor::TensorError> for EvalError {
    fn from(e: adv_tensor::TensorError) -> Self {
        EvalError::Tensor(e)
    }
}

impl From<adv_nn::NnError> for EvalError {
    fn from(e: adv_nn::NnError) -> Self {
        EvalError::Nn(e)
    }
}

impl From<adv_data::DataError> for EvalError {
    fn from(e: adv_data::DataError) -> Self {
        EvalError::Data(e)
    }
}

impl From<adv_magnet::MagnetError> for EvalError {
    fn from(e: adv_magnet::MagnetError) -> Self {
        EvalError::Magnet(e)
    }
}

impl From<adv_attacks::AttackError> for EvalError {
    fn from(e: adv_attacks::AttackError) -> Self {
        EvalError::Attack(e)
    }
}

impl From<std::io::Error> for EvalError {
    fn from(e: std::io::Error) -> Self {
        EvalError::Io(e)
    }
}

impl From<adv_store::StoreError> for EvalError {
    fn from(e: adv_store::StoreError) -> Self {
        EvalError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EvalError>();
    }

    #[test]
    fn conversions_compose() {
        let e: EvalError = adv_tensor::TensorError::InvalidArgument("x".into()).into();
        assert!(e.to_string().contains("tensor error"));
    }
}
