//! `--obs` session support for the experiment binaries.
//!
//! An [`ObsSession`] turns on full telemetry (metrics + spans) for the
//! process, and at experiment end dumps three artifacts into the chosen
//! directory:
//!
//! * `metrics.json` — the global registry snapshot as JSON;
//! * `metrics.prom` — the same snapshot in Prometheus text format;
//! * `trace.jsonl` — one span event per line;
//!
//! plus a self-time/total-time summary table printed to stderr, with each
//! span's share of the session's wall-clock.
//!
//! When the kernel profiler is on too (`ADV_PROFILE=1` or
//! [`adv_profile::set_enabled`]), two more artifacts join them:
//!
//! * `profile_kernels.txt` — the per-kernel accounting table
//!   (calls/wall/self/GFLOP/s);
//! * `profile_collapsed.folded` — collapsed stacks in flamegraph folded
//!   format (`frame;frame self_ns`);
//!
//! and the kernel totals are published into the global registry as gauges
//! before the snapshot is taken, so `metrics.json` carries them as well.
//!
//! An explicit `ADV_OBS=off|metrics|trace` environment override wins over
//! the flag, so a run can keep `--obs out/` in its command line while
//! telemetry is dialed down externally.

use crate::config::CliArgs;
use std::path::PathBuf;
use std::time::Instant;

/// A live observability session: level raised at construction, artifacts
/// written by [`finish`](ObsSession::finish).
#[derive(Debug)]
pub struct ObsSession {
    dir: PathBuf,
    started: Instant,
}

impl ObsSession {
    /// Starts a session when the `--obs <dir>` flag was given.
    pub fn from_args(args: &CliArgs) -> Option<ObsSession> {
        args.obs_dir.as_deref().map(ObsSession::start)
    }

    /// Starts a session dumping into `dir`.
    ///
    /// Raises the process level to [`adv_obs::ObsLevel::Trace`] unless the
    /// `ADV_OBS` environment variable is set, which then takes precedence.
    pub fn start(dir: impl Into<PathBuf>) -> ObsSession {
        if std::env::var_os("ADV_OBS").is_none() {
            adv_obs::set_level(adv_obs::ObsLevel::Trace);
        }
        ObsSession {
            dir: dir.into(),
            started: Instant::now(),
        }
    }

    /// The artifact directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Writes `metrics.json`, `metrics.prom` and `trace.jsonl` into the
    /// session directory (plus `profile_kernels.txt` and
    /// `profile_collapsed.folded` when [`adv_profile::enabled`]), prints
    /// the span summary table to stderr, and returns the written paths.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the directory or writing the
    /// artifacts.
    pub fn finish(self) -> std::io::Result<Vec<PathBuf>> {
        let wall = self.started.elapsed();
        adv_obs::trace::flush_current_thread();
        std::fs::create_dir_all(&self.dir)?;
        let profiled = adv_profile::enabled();
        if profiled {
            adv_profile::flush_current_thread();
            adv_profile::publish_to(adv_obs::global());
        }
        let snapshot = adv_obs::global().snapshot();
        let mut written = Vec::with_capacity(5);
        for (name, content) in [
            ("metrics.json", snapshot.to_json()),
            ("metrics.prom", snapshot.to_prometheus()),
        ] {
            let path = self.dir.join(name);
            std::fs::write(&path, content)?;
            written.push(path);
        }
        let (events, summaries) = adv_obs::trace::drain();
        let path = self.dir.join("trace.jsonl");
        std::fs::write(&path, adv_obs::trace::events_to_jsonl(&events))?;
        written.push(path);
        if profiled {
            for (name, content) in [
                ("profile_kernels.txt", adv_profile::kernel_table()),
                ("profile_collapsed.folded", adv_profile::collapsed()),
            ] {
                let path = self.dir.join(name);
                std::fs::write(&path, content)?;
                written.push(path);
            }
        }
        if !summaries.is_empty() {
            eprintln!("\n{}", adv_obs::trace::render_summary(&summaries, wall));
        }
        eprintln!(
            "observability artifacts written to {} ({} span events)",
            self.dir.display(),
            events.len()
        );
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both `finish` tests toggle the process-wide profiler flag, so they
    /// serialize on this lock.
    fn profile_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn from_args_requires_the_flag() {
        let args = CliArgs::parse(std::iter::empty()).unwrap();
        assert!(ObsSession::from_args(&args).is_none());
    }

    #[test]
    fn finish_writes_all_artifacts() {
        // Level-changing test: other adv-eval tests don't toggle the level,
        // and this one only raises it for its own duration.
        let _serial = profile_lock();
        adv_profile::set_enabled(false);
        let before = adv_obs::level();
        let dir = std::env::temp_dir().join(format!("adv_obs_session_{}", std::process::id()));
        let session = ObsSession::start(&dir);
        adv_obs::set_level(adv_obs::ObsLevel::Trace);
        {
            let _span = adv_obs::Span::enter("test/obs_session");
            adv_obs::global().counter("test.obs_session").incr();
        }
        let written = session.finish().unwrap();
        adv_obs::set_level(before);
        assert_eq!(written.len(), 3);
        let json = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
        assert!(json.contains("test.obs_session"));
        let trace = std::fs::read_to_string(dir.join("trace.jsonl")).unwrap();
        assert!(trace.contains("test/obs_session"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finish_adds_profile_artifacts_when_profiling() {
        let _serial = profile_lock();
        let before = adv_obs::level();
        let dir = std::env::temp_dir().join(format!("adv_obs_session_prof_{}", std::process::id()));
        let session = ObsSession::start(&dir);
        adv_profile::set_enabled(true);
        adv_profile::reset();
        {
            let _k = adv_profile::KernelScope::enter(adv_profile::KernelKind::MatMul, || {
                adv_profile::Work::matmul(4, 4, 4)
            });
        }
        let written = session.finish().unwrap();
        adv_profile::set_enabled(false);
        adv_obs::set_level(before);
        assert_eq!(written.len(), 5);
        let table = std::fs::read_to_string(dir.join("profile_kernels.txt")).unwrap();
        assert!(table.contains("matmul"), "{table}");
        let folded = std::fs::read_to_string(dir.join("profile_collapsed.folded")).unwrap();
        assert!(folded.contains("matmul"), "{folded}");
        let json = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
        assert!(json.contains("profile.kernel.matmul.calls"), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
