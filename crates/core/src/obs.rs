//! `--obs` session support for the experiment binaries.
//!
//! An [`ObsSession`] turns on full telemetry (metrics + spans) for the
//! process, and at experiment end dumps three artifacts into the chosen
//! directory:
//!
//! * `metrics.json` — the global registry snapshot as JSON;
//! * `metrics.prom` — the same snapshot in Prometheus text format;
//! * `trace.jsonl` — one span event per line;
//!
//! plus a self-time/total-time summary table printed to stderr, with each
//! span's share of the session's wall-clock.
//!
//! An explicit `ADV_OBS=off|metrics|trace` environment override wins over
//! the flag, so a run can keep `--obs out/` in its command line while
//! telemetry is dialed down externally.

use crate::config::CliArgs;
use std::path::PathBuf;
use std::time::Instant;

/// A live observability session: level raised at construction, artifacts
/// written by [`finish`](ObsSession::finish).
#[derive(Debug)]
pub struct ObsSession {
    dir: PathBuf,
    started: Instant,
}

impl ObsSession {
    /// Starts a session when the `--obs <dir>` flag was given.
    pub fn from_args(args: &CliArgs) -> Option<ObsSession> {
        args.obs_dir.as_deref().map(ObsSession::start)
    }

    /// Starts a session dumping into `dir`.
    ///
    /// Raises the process level to [`adv_obs::ObsLevel::Trace`] unless the
    /// `ADV_OBS` environment variable is set, which then takes precedence.
    pub fn start(dir: impl Into<PathBuf>) -> ObsSession {
        if std::env::var_os("ADV_OBS").is_none() {
            adv_obs::set_level(adv_obs::ObsLevel::Trace);
        }
        ObsSession {
            dir: dir.into(),
            started: Instant::now(),
        }
    }

    /// The artifact directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Writes `metrics.json`, `metrics.prom` and `trace.jsonl` into the
    /// session directory, prints the span summary table to stderr, and
    /// returns the written paths.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the directory or writing the
    /// artifacts.
    pub fn finish(self) -> std::io::Result<Vec<PathBuf>> {
        let wall = self.started.elapsed();
        adv_obs::trace::flush_current_thread();
        std::fs::create_dir_all(&self.dir)?;
        let snapshot = adv_obs::global().snapshot();
        let mut written = Vec::with_capacity(3);
        for (name, content) in [
            ("metrics.json", snapshot.to_json()),
            ("metrics.prom", snapshot.to_prometheus()),
        ] {
            let path = self.dir.join(name);
            std::fs::write(&path, content)?;
            written.push(path);
        }
        let (events, summaries) = adv_obs::trace::drain();
        let path = self.dir.join("trace.jsonl");
        std::fs::write(&path, adv_obs::trace::events_to_jsonl(&events))?;
        written.push(path);
        if !summaries.is_empty() {
            eprintln!("\n{}", adv_obs::trace::render_summary(&summaries, wall));
        }
        eprintln!(
            "observability artifacts written to {} ({} span events)",
            self.dir.display(),
            events.len()
        );
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_args_requires_the_flag() {
        let args = CliArgs::parse(std::iter::empty()).unwrap();
        assert!(ObsSession::from_args(&args).is_none());
    }

    #[test]
    fn finish_writes_all_artifacts() {
        // Level-changing test: other adv-eval tests don't toggle the level,
        // and this one only raises it for its own duration.
        let before = adv_obs::level();
        let dir = std::env::temp_dir().join(format!("adv_obs_session_{}", std::process::id()));
        let session = ObsSession::start(&dir);
        adv_obs::set_level(adv_obs::ObsLevel::Trace);
        {
            let _span = adv_obs::Span::enter("test/obs_session");
            adv_obs::global().counter("test.obs_session").incr();
        }
        let written = session.finish().unwrap();
        adv_obs::set_level(before);
        assert_eq!(written.len(), 3);
        let json = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
        assert!(json.contains("test.obs_session"));
        let trace = std::fs::read_to_string(dir.join("trace.jsonl")).unwrap();
        assert!(trace.contains("test/obs_session"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
