//! On-disk cache of attack results.
//!
//! Crafting adversarial examples is by far the most expensive step, and the
//! same (attack config, κ, scenario) pair appears in several tables and
//! figures. Because attack sets are regenerated deterministically from the
//! scale seed, a cache entry only needs the adversarial tensor and success
//! flags; distortions are recomputed against the fresh originals on load.
//!
//! Format (little-endian): magic `ADVATK01`, rank (u32), dims (u64 each),
//! tensor data (f32), success flags (u8).

use crate::{EvalError, Result};
use adv_attacks::AttackOutcome;
use adv_tensor::{Shape, Tensor};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"ADVATK01";

/// Sanitizes an attack name (or any label) into a filesystem-safe slug.
pub fn slug(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// A cheap content fingerprint of the attacked image batch (FNV-1a over the
/// tensor's shape *and* raw bits). Embedded in cache file names so that
/// entries computed against a *different* attack set (e.g. after a
/// data-generator change) can never be mistaken for current ones.
///
/// The dimensions are mixed in first: two batches with the same values in a
/// different arrangement (`[2, 8]` vs `[4, 4]`, or a transposed layout that
/// happens to serialize identically) must not collide.
pub fn content_fingerprint(images: &Tensor) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    };
    mix(images.shape().rank() as u8);
    for &d in images.shape().dims() {
        for b in (d as u64).to_le_bytes() {
            mix(b);
        }
    }
    for &v in images.as_slice() {
        for b in v.to_le_bytes() {
            mix(b);
        }
    }
    hash
}

/// The cache file path for an attack run.
#[allow(clippy::too_many_arguments)]
pub fn attack_cache_path(
    dir: impl AsRef<Path>,
    scenario: &str,
    attack_name: &str,
    n: usize,
    iterations: usize,
    bs_steps: usize,
    initial_c: f32,
    lr: f32,
    seed: u64,
    fingerprint: u64,
) -> PathBuf {
    dir.as_ref().join(format!(
        "{scenario}_{}_n{n}_i{iterations}_b{bs_steps}_c{initial_c}_lr{lr}_s{seed}_h{fingerprint:016x}.atk",
        slug(attack_name)
    ))
}

/// Serializes an attack outcome's adversarial tensor and success flags.
pub fn encode_outcome(outcome: &AttackOutcome) -> Vec<u8> {
    let t = &outcome.adversarial;
    let mut buf = Vec::with_capacity(16 + t.len() * 4 + outcome.success.len());
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(t.shape().rank() as u32).to_le_bytes());
    for &d in t.shape().dims() {
        buf.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &v in t.as_slice() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf.extend(outcome.success.iter().map(|&s| s as u8));
    buf
}

/// Decodes a cache entry back into `(adversarial, success)`.
///
/// # Errors
///
/// Returns [`EvalError::InvalidConfig`] for malformed or truncated entries.
pub fn decode_outcome(data: &[u8]) -> Result<(Tensor, Vec<bool>)> {
    let fail = |msg: &str| EvalError::InvalidConfig(format!("attack cache: {msg}"));
    if data.len() < 12 || &data[..8] != MAGIC {
        return Err(fail("bad magic"));
    }
    let rank = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes")) as usize;
    if rank > 8 {
        return Err(fail("implausible rank"));
    }
    let mut off = 12;
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        let bytes: [u8; 8] = data
            .get(off..off + 8)
            .ok_or_else(|| fail("truncated dims"))?
            .try_into()
            .expect("8 bytes");
        dims.push(u64::from_le_bytes(bytes) as usize);
        off += 8;
    }
    let shape = Shape::new(dims);
    let vol = shape.volume();
    let n = shape.dims().first().copied().unwrap_or(0);
    if data.len() != off + vol * 4 + n {
        return Err(fail("length mismatch"));
    }
    let mut values = Vec::with_capacity(vol);
    for chunk in data[off..off + vol * 4].chunks_exact(4) {
        values.push(f32::from_le_bytes(chunk.try_into().expect("4 bytes")));
    }
    let success = data[off + vol * 4..].iter().map(|&b| b != 0).collect();
    Ok((Tensor::from_vec(values, shape)?, success))
}

/// Records a rejected cache entry: bumps `store.cache_rejects` and logs the
/// reason, so a silent recraft is always explainable from the run log.
fn reject_cache(path: &Path, reason: &str) {
    adv_store::bump_counter(adv_store::metric_names::CACHE_REJECTS);
    eprintln!(
        "attack cache: rejecting {} ({reason}); recrafting",
        path.display()
    );
}

/// Loads a cached outcome, recomputing distortions against `original`.
/// Returns `None` — with the reject counted and logged, never silently —
/// when the entry is missing, fails envelope validation (quarantined by the
/// store), does not decode, or does not match the original batch.
pub fn load_outcome(path: &Path, original: &Tensor) -> Option<AttackOutcome> {
    let payload = match adv_store::load_artifact(path) {
        Ok(p) => p,
        Err(e) if e.is_not_found() => return None,
        Err(e) => {
            reject_cache(path, &e.to_string());
            return None;
        }
    };
    let (adversarial, success) = match decode_outcome(&payload) {
        Ok(entry) => entry,
        Err(e) => {
            // CRC-valid but undecodable: quarantine like any corrupt file.
            adv_store::quarantine(path);
            reject_cache(path, &e.to_string());
            return None;
        }
    };
    if adversarial.shape() != original.shape() || success.len() != original.shape().dim(0) {
        reject_cache(
            path,
            &format!(
                "entry shape {} does not match attack set {}",
                adversarial.shape(),
                original.shape()
            ),
        );
        return None;
    }
    match AttackOutcome::from_images(original, adversarial, success) {
        Ok(outcome) => Some(outcome),
        Err(e) => {
            reject_cache(path, &e.to_string());
            None
        }
    }
}

/// Stores an outcome at `path` (creating parent directories) through the
/// artifact store: enveloped, CRC-checked, atomically renamed.
///
/// # Errors
///
/// Returns filesystem errors.
pub fn store_outcome(path: &Path, outcome: &AttackOutcome) -> Result<()> {
    adv_store::save_artifact(path, &encode_outcome(outcome))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_outcome() -> (Tensor, AttackOutcome) {
        let orig = Tensor::from_fn(Shape::nchw(3, 1, 2, 2), |i| (i % 7) as f32 / 7.0);
        let mut adv = orig.clone();
        adv.as_mut_slice()[0] += 0.5;
        let outcome = AttackOutcome::from_images(&orig, adv, vec![true, false, true]).unwrap();
        (orig, outcome)
    }

    #[test]
    fn roundtrip_preserves_outcome() {
        let (orig, outcome) = sample_outcome();
        let bytes = encode_outcome(&outcome);
        let (adv, success) = decode_outcome(&bytes).unwrap();
        assert_eq!(adv, outcome.adversarial);
        assert_eq!(success, outcome.success);
        let restored = AttackOutcome::from_images(&orig, adv, success).unwrap();
        assert_eq!(restored.l1, outcome.l1);
        assert_eq!(restored.l2, outcome.l2);
    }

    #[test]
    fn file_roundtrip_and_mismatch_rejection() {
        let dir = std::env::temp_dir().join("adv_eval_cache_test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("x.atk");
        let (orig, outcome) = sample_outcome();
        store_outcome(&path, &outcome).unwrap();
        let loaded = load_outcome(&path, &orig).unwrap();
        assert_eq!(loaded.success, outcome.success);
        // A different original shape must refuse the cache entry.
        let other = Tensor::zeros(Shape::nchw(2, 1, 2, 2));
        assert!(load_outcome(&path, &other).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_none() {
        let path = std::env::temp_dir().join("adv_eval_cache_missing.atk");
        let orig = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        assert!(load_outcome(&path, &orig).is_none());
    }

    #[test]
    fn corrupted_entries_rejected() {
        let (_, outcome) = sample_outcome();
        let bytes = encode_outcome(&outcome);
        assert!(decode_outcome(&bytes[..10]).is_err());
        assert!(decode_outcome(b"NOTMAGIC1234").is_err());
        let mut truncated = bytes.clone();
        truncated.pop();
        assert!(decode_outcome(&truncated).is_err());
    }

    #[test]
    fn slug_is_filesystem_safe() {
        assert_eq!(slug("C&W(L2, kappa=15)"), "c_w_l2__kappa_15_");
        assert_eq!(slug("EAD(EN, beta=0.01)"), "ead_en__beta_0.01_");
        assert!(slug("a/b\\c:d")
            .chars()
            .all(|c| c != '/' && c != '\\' && c != ':'));
    }

    #[test]
    fn cache_path_encodes_parameters() {
        let p = attack_cache_path(
            "/tmp/x", "mnist", "EAD(EN)", 32, 60, 4, 0.1, 0.02, 2018, 0xDEAD,
        );
        let s = p.to_string_lossy();
        assert!(s.contains("mnist"));
        assert!(s.contains("n32"));
        assert!(s.contains("i60"));
        assert!(s.contains("b4"));
        assert!(s.contains("s2018"));
        assert!(s.contains("000000000000dead"));
    }

    #[test]
    fn fingerprint_differs_on_content_change() {
        let a = Tensor::from_fn(Shape::nchw(1, 1, 3, 3), |i| i as f32);
        let mut b = a.clone();
        b.as_mut_slice()[4] += 1e-3;
        assert_ne!(content_fingerprint(&a), content_fingerprint(&b));
        assert_eq!(content_fingerprint(&a), content_fingerprint(&a.clone()));
    }

    #[test]
    fn fingerprint_differs_on_shape_rearrangement() {
        // Same 16 values, different arrangement: these serialized identically
        // before dims were mixed into the hash.
        let values: Vec<f32> = (0..16).map(|i| i as f32 / 16.0).collect();
        let a = Tensor::from_vec(values.clone(), Shape::new(vec![2, 8])).unwrap();
        let b = Tensor::from_vec(values.clone(), Shape::new(vec![4, 4])).unwrap();
        let c = Tensor::from_vec(values, Shape::new(vec![16])).unwrap();
        assert_ne!(content_fingerprint(&a), content_fingerprint(&b));
        assert_ne!(content_fingerprint(&a), content_fingerprint(&c));
        assert_ne!(content_fingerprint(&b), content_fingerprint(&c));
    }

    #[test]
    fn corrupt_cache_file_is_quarantined_and_rejected() {
        let dir = std::env::temp_dir().join("adv_eval_cache_corrupt_test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("x.atk");
        let (orig, outcome) = sample_outcome();
        store_outcome(&path, &outcome).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_outcome(&path, &orig).is_none());
        assert!(!path.exists(), "corrupt entry should be moved aside");
        assert!(dir.join("x.atk.corrupt").exists());
        // A fresh store_outcome repopulates and loads cleanly again.
        store_outcome(&path, &outcome).unwrap();
        assert!(load_outcome(&path, &orig).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_strict_prefix_of_cache_file_is_rejected() {
        let dir = std::env::temp_dir().join("adv_eval_cache_prefix_test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("x.atk");
        let (orig, outcome) = sample_outcome();
        store_outcome(&path, &outcome).unwrap();
        let full = std::fs::read(&path).unwrap();
        let trunc = dir.join("trunc.atk");
        for cut in 0..full.len() {
            std::fs::write(&trunc, &full[..cut]).unwrap();
            assert!(
                load_outcome(&trunc, &orig).is_none(),
                "prefix of {cut}/{} bytes must not load",
                full.len()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
