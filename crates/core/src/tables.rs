//! Reproduction of the paper's tables.
//!
//! | Paper table | Function |
//! |---|---|
//! | Table I  | [`table1`] — attacks vs default MagNet: ASR + mean L1/L2 |
//! | Table II/V | [`arch_tables`] — robust auto-encoder architectures |
//! | Table III | [`accuracy_table`] (MNIST) — clean accuracy with/without MagNet |
//! | Table IV | [`best_asr_table`] (MNIST) — best EAD ASR per rule × β × variant |
//! | Table VI | [`accuracy_table`] (CIFAR) |
//! | Table VII | [`best_asr_table`] (CIFAR) |

use crate::report::{opt3, pct};
use crate::sweep::{AttackKind, SweepRunner};
use crate::zoo::{classifier_accuracy, defended_clean_accuracy, Scenario, Variant, Zoo};
use crate::Result;
use adv_attacks::DecisionRule;
use adv_magnet::arch;

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Attack description ("C&W (L2)" or "EAD (EN rule)" etc.).
    pub attack: String,
    /// β (None for C&W).
    pub beta: Option<f32>,
    /// The κ at which the defended ASR peaked.
    pub kappa: f32,
    /// Best ASR against the default MagNet (fraction).
    pub asr: f32,
    /// Mean L1 distortion over successful examples.
    pub l1: Option<f32>,
    /// Mean L2 distortion over successful examples.
    pub l2: Option<f32>,
}

/// Computes Table I for one scenario: for every attack configuration, sweep
/// κ against the *default* MagNet and report the best defended ASR with the
/// distortion statistics at that κ.
///
/// # Errors
///
/// Propagates model training, attack and defense errors.
pub fn table1(zoo: &Zoo, scenario: Scenario) -> Result<Vec<Table1Row>> {
    let kappas = match scenario {
        Scenario::Mnist => zoo.scale().mnist_kappas(),
        Scenario::Cifar => zoo.scale().cifar_kappas(),
    };
    let mut runner = SweepRunner::new(zoo, scenario)?;
    let mut defense = zoo.defense(scenario, Variant::Default)?;

    let mut kinds = vec![AttackKind::Cw];
    kinds.extend(AttackKind::ead_grid());

    let mut rows = Vec::with_capacity(kinds.len());
    for kind in kinds {
        let mut best: Option<Table1Row> = None;
        for &kappa in &kappas {
            let eval = runner.evaluate(&kind, kappa, &mut defense)?;
            let asr = eval.defended_asr();
            if best.as_ref().is_none_or(|b| asr > b.asr) {
                let (attack, beta) = match kind {
                    AttackKind::Cw => ("C&W (L2)".to_string(), None),
                    AttackKind::Ead { rule, beta } => {
                        (format!("EAD ({} rule)", rule.label()), Some(beta))
                    }
                };
                best = Some(Table1Row {
                    attack,
                    beta,
                    kappa,
                    asr,
                    l1: eval.mean_l1,
                    l2: eval.mean_l2,
                });
            }
        }
        rows.push(best.expect("kappa grid is non-empty"));
    }
    Ok(rows)
}

/// Formats Table I rows for the terminal.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.attack.clone(),
                r.beta
                    .map(|b| format!("{b}"))
                    .unwrap_or_else(|| "NA".into()),
                format!("{}", r.kappa),
                pct(r.asr),
                opt3(r.l1),
                opt3(r.l2),
            ]
        })
        .collect();
    crate::report::text_table(
        &["Attack method", "beta", "kappa", "ASR %", "L1", "L2"],
        &body,
    )
}

/// One row of Tables III / VI.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Defense variant.
    pub variant: Variant,
    /// Test accuracy without MagNet (fraction).
    pub without: f32,
    /// Test accuracy with MagNet (detectors may wrongly reject clean data).
    pub with: f32,
}

/// Computes Table III (MNIST) / Table VI (CIFAR): clean test accuracy with
/// and without each MagNet variant.
///
/// # Errors
///
/// Propagates model training and pipeline errors.
pub fn accuracy_table(zoo: &Zoo, scenario: Scenario) -> Result<Vec<AccuracyRow>> {
    let mut classifier = zoo.classifier(scenario)?;
    let data = zoo.data(scenario);
    let without = classifier_accuracy(&mut classifier, &data.test)?;
    let mut rows = Vec::new();
    for &variant in Variant::for_scenario(scenario) {
        let mut defense = zoo.defense(scenario, variant)?;
        let with = defended_clean_accuracy(&mut defense, &data.test)?;
        rows.push(AccuracyRow {
            variant,
            without,
            with,
        });
    }
    Ok(rows)
}

/// Formats accuracy rows for the terminal.
pub fn format_accuracy_table(rows: &[AccuracyRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.variant.label().to_string(), pct(r.without), pct(r.with)])
        .collect();
    crate::report::text_table(&["Variant", "Without MagNet %", "With MagNet %"], &body)
}

/// One row of Tables IV / VII: best EAD ASR per (rule, β) across κ, one
/// column per defense variant.
#[derive(Debug, Clone)]
pub struct BestAsrRow {
    /// Decision rule.
    pub rule: DecisionRule,
    /// β.
    pub beta: f32,
    /// Best ASR per variant (fraction), ordered like
    /// [`Variant::for_scenario`].
    pub asr: Vec<f32>,
}

/// Computes Table IV (MNIST) / Table VII (CIFAR).
///
/// # Errors
///
/// Propagates attack and defense errors.
pub fn best_asr_table(zoo: &Zoo, scenario: Scenario) -> Result<Vec<BestAsrRow>> {
    let kappas = match scenario {
        Scenario::Mnist => zoo.scale().mnist_kappas(),
        Scenario::Cifar => zoo.scale().cifar_kappas(),
    };
    let variants = Variant::for_scenario(scenario);
    let mut runner = SweepRunner::new(zoo, scenario)?;
    let mut defenses = variants
        .iter()
        .map(|&v| zoo.defense(scenario, v))
        .collect::<Result<Vec<_>>>()?;

    let mut rows = Vec::new();
    for kind in AttackKind::ead_grid() {
        let AttackKind::Ead { rule, beta } = kind else {
            continue;
        };
        let mut asr = Vec::with_capacity(defenses.len());
        for defense in defenses.iter_mut() {
            asr.push(runner.best_asr(&kind, &kappas, defense)?);
        }
        rows.push(BestAsrRow { rule, beta, asr });
    }
    Ok(rows)
}

/// Formats best-ASR rows for the terminal.
pub fn format_best_asr_table(rows: &[BestAsrRow], scenario: Scenario) -> String {
    let variants = Variant::for_scenario(scenario);
    let mut headers: Vec<String> = vec!["Rule".into(), "beta".into()];
    headers.extend(variants.iter().map(|v| v.label().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![format!("EAD ({})", r.rule.label()), format!("{}", r.beta)];
            row.extend(r.asr.iter().map(|&a| pct(a)));
            row
        })
        .collect();
    crate::report::text_table(&header_refs, &body)
}

/// Renders the robust auto-encoder architectures of Tables II and V.
pub fn arch_tables(robust_filters: usize) -> String {
    let mut out = String::new();
    out.push_str("Table II — robust MagNet architecture on MNIST\n");
    out.push_str(&format!(
        "(paper uses 256 filters; this build uses {robust_filters})\n\n"
    ));
    out.push_str("Detector I & Reformer:\n");
    for line in arch::describe(&arch::mnist_ae_one(1, robust_filters)) {
        out.push_str(&format!("  {line}\n"));
    }
    out.push_str("Detector II:\n");
    for line in arch::describe(&arch::mnist_ae_two(1, robust_filters)) {
        out.push_str(&format!("  {line}\n"));
    }
    out.push_str("\nTable V — robust MagNet architecture on CIFAR-10\n\n");
    out.push_str("Detectors & Reformer:\n");
    for line in arch::describe(&arch::cifar_ae(3, robust_filters)) {
        out.push_str(&format!("  {line}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn arch_tables_render() {
        let t = arch_tables(256);
        assert!(t.contains("Table II"));
        assert!(t.contains("Table V"));
        assert!(t.contains("Conv 3x3x256"));
        assert!(t.contains("AveragePooling 2x2"));
    }

    #[test]
    fn format_table1_has_paper_columns() {
        let rows = vec![Table1Row {
            attack: "C&W (L2)".into(),
            beta: None,
            kappa: 15.0,
            asr: 0.10,
            l1: Some(3.553),
            l2: Some(1.477),
        }];
        let s = format_table1(&rows);
        assert!(s.contains("ASR %"));
        assert!(s.contains("10.0"));
        assert!(s.contains("3.553"));
        assert!(s.contains("NA"));
    }

    #[test]
    fn format_best_asr_columns_match_variants() {
        let rows = vec![BestAsrRow {
            rule: DecisionRule::ElasticNet,
            beta: 0.01,
            asr: vec![0.878, 0.34, 0.901, 0.395],
        }];
        let s = format_best_asr_table(&rows, Scenario::Mnist);
        assert!(s.contains("D+256+JSD"));
        assert!(s.contains("87.8"));
    }

    #[test]
    fn smoke_accuracy_table() {
        let dir = std::env::temp_dir().join("adv_eval_tables_smoke");
        std::fs::remove_dir_all(&dir).ok();
        let mut scale = Scale::smoke();
        // Keep this test fast: only the default variant's models get trained.
        scale.robust_filters = scale.default_filters;
        let zoo = Zoo::new(&dir, scale);
        let rows = accuracy_table(&zoo, Scenario::Cifar).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.without));
            assert!((0.0..=1.0).contains(&r.with));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
