//! Edge cases of the nearest-rank histogram quantiles: empty histograms,
//! single samples, degenerate all-in-one-bucket distributions, and the
//! p0/p100 extremes — the inputs where bucketed quantiles are easiest to
//! get off by one.

use adv_obs::{Histogram, DURATION_BOUNDS_NS, SCORE_BOUNDS};

#[test]
fn empty_histogram_reports_zero_everywhere() {
    let h = Histogram::with_bounds(DURATION_BOUNDS_NS);
    let s = h.snapshot();
    assert_eq!(s.count, 0);
    assert_eq!(s.sum, 0.0);
    assert_eq!(s.mean(), 0.0);
    for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(s.quantile(q), 0.0, "q={q} on empty histogram");
    }
}

#[test]
fn single_sample_is_every_quantile() {
    let h = Histogram::with_bounds(DURATION_BOUNDS_NS);
    h.record(12_345.0);
    let s = h.snapshot();
    assert_eq!(s.count, 1);
    // Min/max clamping makes the lone sample exact at every rank, even
    // though its bucket's upper bound is 16384.
    for q in [0.0, 0.5, 0.999, 1.0] {
        assert_eq!(s.quantile(q), 12_345.0, "q={q} on single sample");
    }
    assert_eq!(s.mean(), 12_345.0);
}

#[test]
fn all_samples_in_one_bucket_clamp_to_observed_range() {
    let h = Histogram::with_bounds(SCORE_BOUNDS);
    // All land in the same bucket; the observed spread is far narrower
    // than the bucket, so clamping has to do the work.
    for v in [0.301, 0.302, 0.303, 0.304] {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(s.count, 4);
    let (min, max) = (s.min, s.max);
    assert_eq!(min, 0.301);
    assert_eq!(max, 0.304);
    for q in [0.0, 0.5, 0.75, 1.0] {
        let v = s.quantile(q);
        assert!(
            (min..=max).contains(&v),
            "q={q} escaped the observed range: {v}"
        );
    }
    // The shared bucket's upper bound is above every sample, so after
    // clamping every rank resolves to the observed maximum — the best a
    // bucketed quantile can do without per-sample storage.
    assert_eq!(s.quantile(0.0), max);
    assert_eq!(s.quantile(1.0), max, "p100 is the observed maximum");
}

#[test]
fn nearest_rank_p0_and_p100_hit_the_extremes() {
    let h = Histogram::with_bounds(DURATION_BOUNDS_NS);
    // Samples spread across well-separated buckets.
    h.record(100.0);
    h.record(10_000.0);
    h.record(1_000_000.0);
    h.record(100_000_000.0);
    let s = h.snapshot();
    assert_eq!(s.count, 4);
    // Nearest-rank: p0 takes rank 1 (clamped), p100 takes rank N. The
    // rank-1 sample (100) sits below the first 256ns bound, so p0 reports
    // that bucket's bound; p100 clamps down to the observed max exactly.
    let p0 = s.quantile(0.0);
    assert!((100.0..=256.0).contains(&p0), "p0 out of tolerance: {p0}");
    assert_eq!(s.quantile(1.0), 100_000_000.0);
    // Out-of-range q values clamp rather than panic or extrapolate.
    assert_eq!(s.quantile(-3.0), s.quantile(0.0));
    assert_eq!(s.quantile(7.0), s.quantile(1.0));
    // Monotone in q.
    let mut prev = f64::NEG_INFINITY;
    for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let v = s.quantile(q);
        assert!(v >= prev, "quantiles must be monotone: q={q} gave {v}");
        prev = v;
    }
}

#[test]
fn quantiles_of_overflow_bucket_use_observed_max() {
    let h = Histogram::with_bounds(DURATION_BOUNDS_NS);
    h.record(2.0e18); // beyond the last finite bound
    let s = h.snapshot();
    assert_eq!(s.count, 1);
    assert_eq!(
        s.quantile(0.5),
        2.0e18,
        "overflow-bucket quantile must clamp to the observed max, not infinity"
    );
    assert!(s.quantile(1.0).is_finite());
}
