//! Model checks for the metrics registry's lock-free record paths, run with
//! `RUSTFLAGS="--cfg loom" cargo test -p adv-obs --test loom`.
//!
//! The registry's handles are Relaxed atomics on the record path (every
//! site carries a `lint-ok(ordering-justified)` rationale); these checks
//! pin the claims those rationales make — counters never lose increments,
//! `set_max` is monotone under contention, histograms never lose samples —
//! across the loom shim's perturbed schedules.

#![cfg(loom)]

use adv_obs::Registry;
use std::sync::Arc;

/// Concurrent `add`s on one counter always sum exactly: the saturating
/// `fetch_update` loop can retry but never drop an increment.
#[test]
fn counter_adds_from_racing_threads_all_land() {
    loom::model(|| {
        let registry = Arc::new(Registry::new());
        let counter = registry.counter("model.hits");
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let counter = counter.clone();
                loom::thread::spawn(move || {
                    for _ in 0..8 {
                        counter.add(2);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("counter thread panicked");
        }
        assert_eq!(counter.get(), 3 * 8 * 2);
    });
}

/// `set_max` keeps the gauge at the maximum of all concurrently offered
/// values: a smaller late sample can never overwrite a larger earlier one.
#[test]
fn gauge_set_max_is_monotone_under_contention() {
    loom::model(|| {
        let registry = Arc::new(Registry::new());
        let gauge = registry.gauge("model.high_water");
        let threads: Vec<_> = (0..3u64)
            .map(|t| {
                let gauge = gauge.clone();
                loom::thread::spawn(move || {
                    // Thread 0 offers rising values, the others falling ones,
                    // so stale-overwrite bugs have losing candidates on every
                    // schedule.
                    for i in 0..8u64 {
                        let v = if t == 0 { i } else { 16 - i };
                        gauge.set_max(v as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("gauge thread panicked");
        }
        assert_eq!(gauge.get(), 16.0);
    });
}

/// Histograms never lose samples under contention: the total bucket count
/// equals the number of `record` calls, and the tracked min/max bracket
/// every recorded value.
#[test]
fn histogram_records_from_racing_threads_all_land() {
    loom::model(|| {
        let registry = Arc::new(Registry::new());
        let histogram = registry.histogram_with("model.lat", &[1.0, 10.0, 100.0]);
        let threads: Vec<_> = (0..3)
            .map(|t| {
                let histogram = histogram.clone();
                loom::thread::spawn(move || {
                    for i in 0..6 {
                        histogram.record((t * 6 + i) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("histogram thread panicked");
        }
        let snap = histogram.snapshot();
        assert_eq!(snap.count, 18, "every sample lands in exactly one bucket");
        assert_eq!(snap.min, 0.0);
        assert_eq!(snap.max, 17.0);
        assert_eq!(snap.sum, (0..18).sum::<i32>() as f64);
    });
}
