//! Lock-light metrics registry: named counters, gauges and fixed-bucket
//! histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are plain atomics shared
//! behind `Arc`s; the registry's mutex is touched only when a metric is
//! first registered and when a [`Snapshot`] is taken, never on the record
//! path. Histograms use fixed bucket bounds, so recording is one atomic
//! increment per sample and quantiles are nearest-rank over bucket counts —
//! approximate to one bucket's width, exact at the observed extremes
//! (results are clamped to the recorded min/max).

use crate::sync::lock_unpoisoned;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default histogram bounds for durations in nanoseconds: powers of two
/// from 256 ns to ~18 minutes. One relative bucket width (2×) is plenty for
/// latency attribution while keeping 34 buckets total.
pub const DURATION_BOUNDS_NS: &[f64] = &[
    256.0,
    512.0,
    1024.0,
    2048.0,
    4096.0,
    8192.0,
    16384.0,
    32768.0,
    65536.0,
    131072.0,
    262144.0,
    524288.0,
    1048576.0,
    2097152.0,
    4194304.0,
    8388608.0,
    16777216.0,
    33554432.0,
    67108864.0,
    134217728.0,
    268435456.0,
    536870912.0,
    1073741824.0,
    2147483648.0,
    4294967296.0,
    8589934592.0,
    17179869184.0,
    34359738368.0,
    68719476736.0,
    137438953472.0,
    274877906944.0,
    549755813888.0,
    1099511627776.0,
];

/// Default bounds for detector scores and other small non-negative values:
/// a 1–2–5 decade ladder from 1e-6 to 1e3.
pub const SCORE_BOUNDS: &[f64] = &[
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
    2e-1, 5e-1, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
];

/// A monotonically non-decreasing count. Saturates at `u64::MAX` instead of
/// wrapping, so a long-lived process can never report a small count after an
/// overflow.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&self, n: u64) {
        // lint-ok(ordering-justified): independent monotone counter; no
        // other memory is published through it and snapshot readers
        // tolerate any interleaving of concurrent adds.
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // lint-ok(ordering-justified): reading a monotone counter; staleness
        // is acceptable and no dependent data is read afterwards.
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-written-wins floating-point value (plus a monotone `set_max`).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        // lint-ok(ordering-justified): last-writer-wins value; the bits are
        // self-contained, nothing else is synchronized by this store.
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger; never lowers it. The
    /// compare-and-swap loop makes the result monotone under concurrent
    /// callers regardless of interleaving.
    #[inline]
    pub fn set_max(&self, v: f64) {
        // lint-ok(ordering-justified): the CAS loop's correctness (monotone
        // maximum) depends only on atomicity of the exchange, not on the
        // ordering of surrounding memory; loom's obs model check pins this.
        let _ = self
            .bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                if v > f64::from_bits(bits) {
                    Some(v.to_bits())
                } else {
                    None
                }
            });
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // lint-ok(ordering-justified): reading a self-contained value; no
        // dependent non-atomic data is guarded by this load.
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram over `f64` samples.
///
/// Bounds are inclusive upper bounds in ascending order; samples above the
/// last bound land in an implicit overflow bucket. NaN samples are ignored.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given bucket upper bounds. Non-finite
    /// bounds are dropped, the rest sorted and deduplicated; an empty list
    /// falls back to [`DURATION_BOUNDS_NS`].
    pub fn with_bounds(bounds: &[f64]) -> Histogram {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(|a, b| a.total_cmp(b));
        bounds.dedup();
        if bounds.is_empty() {
            bounds = DURATION_BOUNDS_NS.to_vec();
        }
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| v > b);
        // `partition_point` is at most `bounds.len()` and `counts` has
        // `bounds.len() + 1` entries, so the lookup cannot miss; `get`
        // keeps the hot path free of panic machinery regardless.
        if let Some(bucket) = self.counts.get(idx) {
            // lint-ok(ordering-justified): bucket counts are mutually
            // independent; snapshot consistency across buckets/sum/min/max
            // is explicitly approximate (see module docs).
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        // lint-ok(ordering-justified): sum/min/max are independent CAS
        // loops; only atomicity matters, cross-field skew is documented.
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
        // lint-ok(ordering-justified): same contract as the sum CAS above.
        let _ = self
            .min_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v < f64::from_bits(bits)).then(|| v.to_bits())
            });
        // lint-ok(ordering-justified): same contract as the sum CAS above.
        let _ = self
            .max_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v > f64::from_bits(bits)).then(|| v.to_bits())
            });
    }

    /// Records a duration as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos() as f64);
    }

    /// Point-in-time copy of this histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // lint-ok(ordering-justified): snapshots are explicitly
        // point-in-time-approximate; each bucket load is independent and
        // no non-atomic data hangs off these counters.
        let mut buckets: Vec<(f64, u64)> = self
            .bounds
            .iter()
            .zip(&self.counts)
            .map(|(&b, c)| (b, c.load(Ordering::Relaxed)))
            .collect();
        if let Some(overflow) = self.counts.last() {
            // lint-ok(ordering-justified): same contract as the bucket
            // loads above; `counts` is never empty (bounds.len() + 1).
            buckets.push((f64::INFINITY, overflow.load(Ordering::Relaxed)));
        }
        let count = buckets.iter().map(|&(_, c)| c).sum();
        let (min, max) = if count == 0 {
            (0.0, 0.0)
        } else {
            // lint-ok(ordering-justified): min/max lag their bucket count
            // at worst one sample under concurrency; documented skew.
            (
                f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
                f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            )
        };
        HistogramSnapshot {
            count,
            // lint-ok(ordering-justified): approximate-snapshot contract,
            // as for the bucket loads above.
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min,
            max,
            buckets,
        }
    }
}

/// Frozen histogram state with nearest-rank quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (`0.0` when empty).
    pub min: f64,
    /// Largest sample (`0.0` when empty).
    pub max: f64,
    /// `(inclusive upper bound, samples in bucket)` pairs in ascending
    /// order; the last bound is `f64::INFINITY` (the overflow bucket).
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile: the upper bound of the bucket holding the
    /// `⌈q·N⌉`-th sample, clamped to the observed `[min, max]` (so a
    /// single-sample histogram reports that sample exactly). Returns `0.0`
    /// when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(bound, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bound.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean sample value (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> MetricKind {
        match self {
            Metric::Counter(_) => MetricKind::Counter,
            Metric::Gauge(_) => MetricKind::Gauge,
            Metric::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// The kind of a registered metric, for [`MetricError`] diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotone [`Counter`].
    Counter,
    /// A last-writer-wins [`Gauge`].
    Gauge,
    /// A bucketed [`Histogram`].
    Histogram,
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricKind::Counter => f.write_str("counter"),
            MetricKind::Gauge => f.write_str("gauge"),
            MetricKind::Histogram => f.write_str("histogram"),
        }
    }
}

/// A metric name was requested as one kind but already registered as
/// another — a programming error surfaced as data instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricError {
    /// The contested metric name.
    pub name: String,
    /// The kind the name is already registered as.
    pub registered: MetricKind,
    /// The kind this call asked for.
    pub requested: MetricKind,
}

impl std::fmt::Display for MetricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "metric '{}' already registered as a {} (requested {})",
            self.name, self.registered, self.requested
        )
    }
}

impl std::error::Error for MetricError {}

/// A named collection of metrics.
///
/// `counter`/`gauge`/`histogram` get-or-create: the first call for a name
/// registers the metric, later calls return the same handle. Requesting a
/// name that is already registered as a different kind is a programming
/// error; the `try_*` variants report it as a [`MetricError`], while the
/// infallible variants keep the caller's hot path alive by handing back a
/// detached (unregistered) metric and bumping [`Registry::kind_mismatches`]
/// — any test that snapshots the registry sees the mismatch count.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    kind_mismatches: Counter,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get-or-create the counter `name`.
    ///
    /// # Errors
    ///
    /// [`MetricError`] if `name` is already registered as another kind.
    pub fn try_counter(&self, name: &str) -> Result<Arc<Counter>, MetricError> {
        let mut map = lock_unpoisoned(&self.metrics);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Ok(c.clone()),
            other => Err(MetricError {
                name: name.to_string(),
                registered: other.kind(),
                requested: MetricKind::Counter,
            }),
        }
    }

    /// Get-or-create the counter `name`; on a kind mismatch returns a
    /// detached counter and bumps [`Registry::kind_mismatches`].
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.try_counter(name).unwrap_or_else(|_| {
            self.kind_mismatches.incr();
            Arc::new(Counter::default())
        })
    }

    /// Get-or-create the gauge `name`.
    ///
    /// # Errors
    ///
    /// [`MetricError`] if `name` is already registered as another kind.
    pub fn try_gauge(&self, name: &str) -> Result<Arc<Gauge>, MetricError> {
        let mut map = lock_unpoisoned(&self.metrics);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Ok(g.clone()),
            other => Err(MetricError {
                name: name.to_string(),
                registered: other.kind(),
                requested: MetricKind::Gauge,
            }),
        }
    }

    /// Get-or-create the gauge `name`; on a kind mismatch returns a
    /// detached gauge and bumps [`Registry::kind_mismatches`].
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.try_gauge(name).unwrap_or_else(|_| {
            self.kind_mismatches.incr();
            Arc::new(Gauge::default())
        })
    }

    /// Get-or-create the histogram `name` with [`DURATION_BOUNDS_NS`].
    ///
    /// # Errors
    ///
    /// [`MetricError`] if `name` is already registered as another kind.
    pub fn try_histogram(&self, name: &str) -> Result<Arc<Histogram>, MetricError> {
        self.try_histogram_with(name, DURATION_BOUNDS_NS)
    }

    /// Get-or-create the histogram `name` with [`DURATION_BOUNDS_NS`]; on a
    /// kind mismatch returns a detached histogram and bumps
    /// [`Registry::kind_mismatches`].
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, DURATION_BOUNDS_NS)
    }

    /// Get-or-create the histogram `name`; `bounds` apply only on first
    /// registration.
    ///
    /// # Errors
    ///
    /// [`MetricError`] if `name` is already registered as another kind.
    pub fn try_histogram_with(
        &self,
        name: &str,
        bounds: &[f64],
    ) -> Result<Arc<Histogram>, MetricError> {
        let mut map = lock_unpoisoned(&self.metrics);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::with_bounds(bounds))))
        {
            Metric::Histogram(h) => Ok(h.clone()),
            other => Err(MetricError {
                name: name.to_string(),
                registered: other.kind(),
                requested: MetricKind::Histogram,
            }),
        }
    }

    /// Get-or-create the histogram `name`; `bounds` apply only on first
    /// registration. On a kind mismatch returns a detached histogram and
    /// bumps [`Registry::kind_mismatches`].
    pub fn histogram_with(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.try_histogram_with(name, bounds).unwrap_or_else(|_| {
            self.kind_mismatches.incr();
            Arc::new(Histogram::with_bounds(bounds))
        })
    }

    /// How many infallible lookups hit a kind mismatch and fell back to a
    /// detached metric. Non-zero means a programming error somewhere.
    pub fn kind_mismatches(&self) -> u64 {
        self.kind_mismatches.get()
    }

    /// Point-in-time view of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let map = lock_unpoisoned(&self.metrics);
        let mut snapshot = Snapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => snapshot.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snapshot.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snapshot.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snapshot
    }
}

/// Point-in-time view of a [`Registry`], exportable as Prometheus text
/// format or JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, state)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Serializes the snapshot as a single JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{..}}`. Histograms
    /// carry count/sum/min/max/mean, p50/p90/p99, and the per-bucket counts
    /// (`le` is a string; the overflow bucket is `"+Inf"`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(name), v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(name), json_number(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                json_string(name),
                h.count,
                json_number(h.sum),
                json_number(h.min),
                json_number(h.max),
                json_number(h.mean()),
                json_number(h.quantile(0.50)),
                json_number(h.quantile(0.90)),
                json_number(h.quantile(0.99)),
            );
            for (j, &(bound, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"le\":{},\"count\":{}}}",
                    json_string(&le_label(bound)),
                    c
                );
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Serializes the snapshot in the Prometheus text exposition format.
    /// Metric names are sanitized to `[a-zA-Z_:][a-zA-Z0-9_:]*`; histogram
    /// buckets are cumulative with `le` labels, plus `_sum` and `_count`
    /// series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {}", prom_number(*v));
        }
        for (name, h) in &self.histograms {
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for &(bound, c) in &h.buckets {
                cumulative += c;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cumulative}",
                    escape_label_value(&le_label(bound))
                );
            }
            let _ = writeln!(out, "{name}_sum {}", prom_number(h.sum));
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

/// Formats a bucket bound as a `le` label value (`"+Inf"` for the overflow
/// bucket).
fn le_label(bound: f64) -> String {
    if bound.is_infinite() {
        "+Inf".to_string()
    } else {
        format!("{bound}")
    }
}

/// JSON-escapes and quotes a string.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number; non-finite values become `0`.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Formats an `f64` for the Prometheus text format (`+Inf`/`-Inf`/`NaN`
/// spellings).
fn prom_number(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Maps a metric name onto the Prometheus charset: every character outside
/// `[a-zA-Z0-9_:]` becomes `_`, and a leading digit gets a `_` prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a Prometheus label value: backslash, double quote, and newline
/// per the text exposition format.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_saturates_at_u64_max() {
        let c = Counter::default();
        c.add(7);
        c.incr();
        assert_eq!(c.get(), 8);
        c.add(u64::MAX - 3);
        assert_eq!(c.get(), u64::MAX, "must saturate, not wrap");
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_set_and_monotone_max() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0.0);
        g.set(3.5);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
        g.set_max(4.0);
        g.set_max(2.0);
        assert_eq!(g.get(), 4.0, "set_max never lowers");
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::with_bounds(DURATION_BOUNDS_NS);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.quantile(0.99), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn single_sample_p99_is_exact() {
        let h = Histogram::with_bounds(DURATION_BOUNDS_NS);
        h.record(7000.0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        // Quantiles clamp to [min, max], so one sample reports itself.
        assert_eq!(s.quantile(0.99), 7000.0);
        assert_eq!(s.quantile(0.0), 7000.0);
        assert_eq!(s.min, 7000.0);
        assert_eq!(s.max, 7000.0);
    }

    #[test]
    fn quantiles_are_bucket_accurate() {
        let h = Histogram::with_bounds(DURATION_BOUNDS_NS);
        for v in 1..=1000 {
            h.record(v as f64 * 1000.0); // 1µs..1ms
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        let p50 = s.quantile(0.5);
        // True p50 is 500µs; bucketed answer may be up to one 2× bucket above.
        assert!(
            (500_000.0..=1_048_576.0).contains(&p50),
            "p50 out of bucket tolerance: {p50}"
        );
        assert!(s.quantile(0.99) >= p50);
        assert_eq!(s.quantile(1.0), 1_000_000.0, "p100 clamps to max");
        assert!((s.mean() - 500_500.0).abs() < 1.0);
    }

    #[test]
    fn overflow_bucket_catches_huge_samples() {
        let h = Histogram::with_bounds(&[10.0, 100.0]);
        h.record(1e18);
        h.record(5.0);
        let s = h.snapshot();
        assert_eq!(s.buckets.last().unwrap().1, 1);
        assert_eq!(s.quantile(0.99), 1e18, "overflow quantile uses max");
    }

    #[test]
    fn nan_samples_are_ignored() {
        let h = Histogram::with_bounds(&[1.0]);
        h.record(f64::NAN);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn degenerate_bounds_fall_back() {
        let h = Histogram::with_bounds(&[f64::INFINITY, f64::NAN]);
        h.record(1.0);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn registry_get_or_create_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert!(Arc::ptr_eq(&a, &b));
        a.add(2);
        assert_eq!(r.snapshot().counter("x"), Some(2));
    }

    #[test]
    fn kind_mismatch_is_reported_not_panicked() {
        let r = Registry::new();
        let real = r.counter("dual");
        let err = r.try_gauge("dual").expect_err("kinds must not alias");
        assert_eq!(err.name, "dual");
        assert_eq!(err.registered, MetricKind::Counter);
        assert_eq!(err.requested, MetricKind::Gauge);
        assert!(err.to_string().contains("already registered as a counter"));

        // The infallible path stays alive: detached handle, mismatch counted.
        assert_eq!(r.kind_mismatches(), 0);
        let detached = r.gauge("dual");
        detached.set(1.5);
        assert_eq!(r.kind_mismatches(), 1);
        real.add(2);
        assert_eq!(r.snapshot().counter("dual"), Some(2));
        assert_eq!(r.snapshot().gauge("dual"), None);

        let detached_hist = r.histogram("dual");
        detached_hist.record(1.0);
        assert_eq!(r.kind_mismatches(), 2);
        let detached_counter = r.counter("other");
        drop(detached_counter);
        assert_eq!(r.kind_mismatches(), 2, "matching kinds never count");
    }

    #[test]
    fn snapshot_json_has_expected_shape() {
        let r = Registry::new();
        r.counter("reqs").add(3);
        r.gauge("loss").set(0.25);
        r.histogram("lat").record_duration(Duration::from_micros(7));
        let json = r.snapshot().to_json();
        assert!(json.contains("\"counters\":{\"reqs\":3}"), "{json}");
        assert!(json.contains("\"loss\":0.25"), "{json}");
        assert!(json.contains("\"lat\":{\"count\":1"), "{json}");
        assert!(json.contains("\"le\":\"+Inf\""), "{json}");
    }

    #[test]
    fn json_escapes_names() {
        let r = Registry::new();
        r.counter("weird\"name\\with\nstuff").incr();
        let json = r.snapshot().to_json();
        assert!(
            json.contains("\"weird\\\"name\\\\with\\nstuff\":1"),
            "{json}"
        );
    }

    #[test]
    fn prometheus_format_and_escaping() {
        let r = Registry::new();
        r.counter("ead.ista_iters").add(5);
        r.gauge("train.loss").set(0.5);
        let h = r.histogram_with("serve.latency", &[1000.0, 2000.0]);
        h.record(500.0);
        h.record(1500.0);
        h.record(9999.0);
        let text = r.snapshot().to_prometheus();
        // Dots sanitized to underscores.
        assert!(text.contains("# TYPE ead_ista_iters counter"), "{text}");
        assert!(text.contains("ead_ista_iters 5"), "{text}");
        assert!(text.contains("train_loss 0.5"), "{text}");
        // Cumulative buckets.
        assert!(
            text.contains("serve_latency_bucket{le=\"1000\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("serve_latency_bucket{le=\"2000\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("serve_latency_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("serve_latency_count 3"), "{text}");
    }

    #[test]
    fn metric_name_sanitization() {
        assert_eq!(sanitize_metric_name("a.b-c/d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_metric_name("ok_name:x"), "ok_name:x");
    }

    #[test]
    fn label_value_escaping() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("line\nbreak"), "line\\nbreak");
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let r = Arc::new(Registry::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let r = r.clone();
                std::thread::spawn(move || {
                    let c = r.counter("hits");
                    let h = r.histogram_with("vals", SCORE_BOUNDS);
                    for i in 0..1000 {
                        c.incr();
                        h.record((t * 1000 + i) as f64 / 1000.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = r.snapshot();
        assert_eq!(s.counter("hits"), Some(4000));
        assert_eq!(s.histogram("vals").unwrap().count, 4000);
    }
}
