//! adv-obs: structured observability for the whole reproduction stack.
//!
//! The crate has two halves, both dependency-free and safe to leave compiled
//! into release binaries:
//!
//! * [`registry`] — a lock-light **metrics registry**: named [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket [`Histogram`]s behind an [`Arc<Registry>`].
//!   Handles are plain atomics; the registry mutex is touched only at
//!   registration and snapshot time. A [`Snapshot`] can be exported as
//!   Prometheus text format or JSON.
//! * [`trace`] — a **span tracer**: [`Span::enter`] returns an RAII guard
//!   that records a timing event into a per-thread buffer, drained into a
//!   global sink. The sink yields a JSON-lines event stream plus a
//!   self-time/total-time summary table (children's time is subtracted from
//!   their parent's self time).
//!
//! # Enabling telemetry
//!
//! Everything is gated on a process-wide [`ObsLevel`]:
//!
//! * [`ObsLevel::Off`] (default) — every instrumentation point is a no-op:
//!   one relaxed atomic load and a predictable branch, verified by the
//!   `obs_overhead` bench. Numerical results are never affected at any
//!   level; instrumentation only reads clocks and bumps atomics.
//! * [`ObsLevel::Metrics`] — counters/gauges/histograms record.
//! * [`ObsLevel::Trace`] — metrics plus span events.
//!
//! The level comes from the `ADV_OBS` environment variable
//! (`off|metrics|trace`, read once on first use) so library users can turn
//! telemetry on without plumbing flags, or programmatically via
//! [`set_level`] (the experiment binaries' `--obs` flag does this).
//!
//! [`Arc<Registry>`]: std::sync::Arc

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod registry;
pub mod sync;
pub mod trace;

pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot, DURATION_BOUNDS_NS,
    SCORE_BOUNDS,
};
pub use trace::{Span, SpanGuard, SpanSummary, TraceEvent};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

/// How much telemetry the process records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ObsLevel {
    /// No telemetry; every instrumentation point is a no-op.
    Off = 0,
    /// Counters, gauges and histograms record; spans are no-ops.
    Metrics = 1,
    /// Metrics plus span events.
    Trace = 2,
}

impl ObsLevel {
    /// Parses `"off"`, `"metrics"` or `"trace"` (case-insensitive).
    pub fn from_name(name: &str) -> Option<ObsLevel> {
        match name.to_ascii_lowercase().as_str() {
            "off" | "0" | "false" => Some(ObsLevel::Off),
            "metrics" | "1" => Some(ObsLevel::Metrics),
            "trace" | "2" => Some(ObsLevel::Trace),
            _ => None,
        }
    }
}

/// Sentinel meaning "not yet initialised from `ADV_OBS`".
const LEVEL_UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn decode(v: u8) -> ObsLevel {
    match v {
        1 => ObsLevel::Metrics,
        2 => ObsLevel::Trace,
        _ => ObsLevel::Off,
    }
}

#[cold]
fn init_level_from_env() -> ObsLevel {
    let from_env = std::env::var("ADV_OBS")
        .ok()
        .and_then(|v| ObsLevel::from_name(&v))
        .unwrap_or(ObsLevel::Off);
    // Keep an explicit `set_level` that raced ahead of us.
    // lint-ok(ordering-justified): the level byte is self-contained state;
    // the CAS only needs atomicity and the follow-up load only needs to see
    // *a* committed value — both orderings are free to be Relaxed.
    let _ = LEVEL.compare_exchange(
        LEVEL_UNSET,
        from_env as u8,
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    // lint-ok(ordering-justified): see the CAS above; any committed level
    // byte is a valid answer here.
    decode(LEVEL.load(Ordering::Relaxed))
}

/// The current telemetry level (initialised from `ADV_OBS` on first call).
#[inline]
pub fn level() -> ObsLevel {
    // lint-ok(ordering-justified): a momentarily stale level only delays
    // when instrumentation switches on/off; no data is guarded by it.
    match LEVEL.load(Ordering::Relaxed) {
        LEVEL_UNSET => init_level_from_env(),
        v => decode(v),
    }
}

/// Overrides the telemetry level for the whole process.
pub fn set_level(level: ObsLevel) {
    // lint-ok(ordering-justified): last-writer-wins flag; readers tolerate
    // observing the change late (see `level`).
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// `true` when counters/gauges/histograms should record.
///
/// Compares the cached level byte directly — one relaxed load and one
/// branch on the off path, no decode — so the gate costs the same whether
/// or not it is taken (the `obs_overhead` bench pins this).
#[inline]
pub fn metrics_enabled() -> bool {
    // lint-ok(ordering-justified): a momentarily stale level only delays
    // when instrumentation switches on/off; no data is guarded by it.
    match LEVEL.load(Ordering::Relaxed) {
        LEVEL_UNSET => init_level_from_env() >= ObsLevel::Metrics,
        v => v >= ObsLevel::Metrics as u8,
    }
}

/// `true` when spans should record events.
///
/// Same single-byte fast path as [`metrics_enabled`]: the common
/// span-off case is one relaxed load and one equality compare.
#[inline]
pub fn trace_enabled() -> bool {
    // lint-ok(ordering-justified): a momentarily stale level only delays
    // when instrumentation switches on/off; no data is guarded by it.
    match LEVEL.load(Ordering::Relaxed) {
        LEVEL_UNSET => init_level_from_env() >= ObsLevel::Trace,
        v => v == ObsLevel::Trace as u8,
    }
}

/// The process-wide registry shared by all instrumented crates.
///
/// Instrumentation points write here when [`metrics_enabled`]; subsystems
/// that always need metrics regardless of level (e.g. the serving engine)
/// create their own [`Registry`] instead.
pub fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

#[cfg(test)]
pub(crate) fn test_level_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_names_parse() {
        assert_eq!(ObsLevel::from_name("off"), Some(ObsLevel::Off));
        assert_eq!(ObsLevel::from_name("Metrics"), Some(ObsLevel::Metrics));
        assert_eq!(ObsLevel::from_name("TRACE"), Some(ObsLevel::Trace));
        assert_eq!(ObsLevel::from_name("verbose"), None);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(ObsLevel::Off < ObsLevel::Metrics);
        assert!(ObsLevel::Metrics < ObsLevel::Trace);
    }

    #[test]
    fn set_level_controls_gates() {
        let _guard = test_level_lock();
        let before = level();
        set_level(ObsLevel::Off);
        assert!(!metrics_enabled() && !trace_enabled());
        set_level(ObsLevel::Metrics);
        assert!(metrics_enabled() && !trace_enabled());
        set_level(ObsLevel::Trace);
        assert!(metrics_enabled() && trace_enabled());
        set_level(before);
    }

    #[test]
    fn global_registry_is_shared() {
        assert!(Arc::ptr_eq(global(), global()));
    }
}
