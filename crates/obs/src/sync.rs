//! Poison-tolerant locking for observability state.
//!
//! Telemetry must never take a process down: if some thread panicked while
//! holding a metrics or trace lock, the protected state (a metric map, an
//! event buffer) is still structurally valid — every critical section in
//! this workspace only pushes, drains, or reads plain data, and none of
//! them unwind mid-invariant except on allocation failure. Recovering the
//! guard keeps recording and exporting alive instead of cascading the
//! panic into every other thread that touches telemetry.

use std::sync::{LockResult, Mutex, MutexGuard, PoisonError};

/// Unwraps any poison-carrying lock result ([`Mutex::lock`],
/// `Condvar::wait`, `Condvar::wait_timeout`, ...), recovering the guard if
/// a previous holder panicked.
///
/// Generic over the guard type so it also covers `(guard, timeout)` pairs
/// from timed condvar waits, and guards from `loom`'s lock types (which
/// reuse `std`'s `LockResult`).
#[inline]
pub fn unpoison<Guard>(result: LockResult<Guard>) -> Guard {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// See the module docs for why recovery (rather than propagating the
/// poison) is the right contract for observability state.
#[inline]
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    unpoison(mutex.lock())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recovers_after_a_panicking_holder() {
        let m = Arc::new(Mutex::new(7u64));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().expect("first lock cannot be poisoned");
            panic!("poison the mutex");
        })
        .join();
        assert!(m.lock().is_err(), "mutex must actually be poisoned");
        assert_eq!(*lock_unpoisoned(&m), 7);
        *lock_unpoisoned(&m) = 8;
        assert_eq!(*lock_unpoisoned(&m), 8);
    }
}
