//! Span-based tracing: RAII guards feeding per-thread buffers, drained into
//! a process-wide sink.
//!
//! [`Span::enter`] pushes a frame on the current thread's span stack and
//! returns a guard; dropping the guard records a [`TraceEvent`] with the
//! span's wall-clock interval and updates the per-name self-time/total-time
//! aggregate (a child's total is subtracted from its parent's self time, so
//! the summary attributes every nanosecond to exactly one span). Events are
//! flushed to the global sink in batches; the sink caps the buffered event
//! count and counts overflow drops, so hot loops can be traced without
//! unbounded memory growth.
//!
//! When tracing is disabled ([`crate::trace_enabled`] is `false`),
//! [`Span::enter`] is one relaxed atomic load — no clock read, no
//! allocation.

use crate::sync::lock_unpoisoned;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Hard cap on events buffered in the global sink; later events are dropped
/// (and counted) instead of growing without bound.
pub const MAX_BUFFERED_EVENTS: usize = 1 << 20;

/// Events a thread buffers locally before flushing to the global sink.
const THREAD_FLUSH_THRESHOLD: usize = 4096;

/// One completed span occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (static so hot loops never allocate).
    pub name: &'static str,
    /// Dense per-process thread index (not the OS thread id).
    pub thread: u64,
    /// Nesting depth at the time the span was entered (0 = top level).
    pub depth: u32,
    /// Start offset in nanoseconds from the process trace epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
}

/// Aggregated timing of one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// Span name.
    pub name: &'static str,
    /// Number of completed occurrences.
    pub count: u64,
    /// Total wall-clock time inside the span (children included).
    pub total: Duration,
    /// Wall-clock time inside the span minus time inside child spans.
    pub self_time: Duration,
}

#[derive(Debug, Clone, Copy, Default)]
struct SpanStat {
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

struct Frame {
    name: &'static str,
    start: Instant,
    child_ns: u64,
}

struct ThreadBuf {
    id: u64,
    stack: Vec<Frame>,
    events: Vec<TraceEvent>,
    stats: HashMap<&'static str, SpanStat>,
}

impl ThreadBuf {
    fn new() -> ThreadBuf {
        static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
        ThreadBuf {
            id: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            events: Vec::new(),
            stats: HashMap::new(),
        }
    }

    fn flush(&mut self) {
        let sink = sink();
        if !self.events.is_empty() {
            let mut events = lock_unpoisoned(&sink.events);
            let room = MAX_BUFFERED_EVENTS.saturating_sub(events.len());
            if self.events.len() > room {
                // lint-ok(ordering-justified): independent overflow counter;
                // readers only report it, nothing synchronizes on it.
                sink.dropped
                    .fetch_add((self.events.len() - room) as u64, Ordering::Relaxed);
            }
            events.extend(self.events.drain(..).take(room));
        }
        if !self.stats.is_empty() {
            let mut stats = lock_unpoisoned(&sink.stats);
            for (name, s) in self.stats.drain() {
                let agg = stats.entry(name).or_default();
                agg.count += s.count;
                agg.total_ns += s.total_ns;
                agg.self_ns += s.self_ns;
            }
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static THREAD_BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

struct Sink {
    events: Mutex<Vec<TraceEvent>>,
    stats: Mutex<HashMap<&'static str, SpanStat>>,
    dropped: AtomicU64,
}

fn sink() -> &'static Sink {
    static SINK: OnceLock<Sink> = OnceLock::new();
    SINK.get_or_init(|| Sink {
        events: Mutex::new(Vec::new()),
        stats: Mutex::new(HashMap::new()),
        dropped: AtomicU64::new(0),
    })
}

/// The instant all `start_ns` offsets are measured from (first use wins).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    // lint-ok(gated-clocks): reached only via Span::enter/SpanGuard::drop,
    // both behind the trace_enabled() level gate.
    *EPOCH.get_or_init(Instant::now)
}

/// Entry point for span instrumentation; see [`Span::enter`].
#[derive(Debug)]
pub struct Span;

impl Span {
    /// Opens a span; the returned guard records the event when dropped.
    ///
    /// A no-op (single relaxed atomic load) unless the process level is
    /// [`crate::ObsLevel::Trace`].
    #[inline]
    #[must_use = "the span ends when the guard is dropped"]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !crate::trace_enabled() {
            return SpanGuard { active: false };
        }
        enter_slow(name)
    }
}

/// The tracing-on path of [`Span::enter`], outlined so the disabled fast
/// path inlines to a load-and-branch without dragging the thread-local
/// access into every instrumented function.
#[cold]
#[inline(never)]
fn enter_slow(name: &'static str) -> SpanGuard {
    let entered = THREAD_BUF
        .try_with(|buf| {
            let mut buf = buf.borrow_mut();
            // Force the epoch before the first span so offsets are valid.
            let _ = epoch();
            buf.stack.push(Frame {
                name,
                // lint-ok(gated-clocks): reached only via Span::enter's
                // trace_enabled() early return; span timing IS the feature.
                start: Instant::now(),
                child_ns: 0,
            });
        })
        .is_ok();
    SpanGuard { active: entered }
}

/// RAII guard closing a [`Span`]; records the event on drop.
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let _ = THREAD_BUF.try_with(|buf| {
            let mut buf = buf.borrow_mut();
            let Some(frame) = buf.stack.pop() else {
                return;
            };
            let total_ns = frame.start.elapsed().as_nanos() as u64;
            let self_ns = total_ns.saturating_sub(frame.child_ns);
            if let Some(parent) = buf.stack.last_mut() {
                parent.child_ns += total_ns;
            }
            let depth = buf.stack.len() as u32;
            let start_ns = frame.start.duration_since(epoch()).as_nanos() as u64;
            let thread = buf.id;
            buf.events.push(TraceEvent {
                name: frame.name,
                thread,
                depth,
                start_ns,
                duration_ns: total_ns,
            });
            let stat = buf.stats.entry(frame.name).or_default();
            stat.count += 1;
            stat.total_ns += total_ns;
            stat.self_ns += self_ns;
            if buf.events.len() >= THREAD_FLUSH_THRESHOLD {
                buf.flush();
            }
        });
    }
}

/// Flushes the calling thread's buffered events/stats into the global sink.
///
/// Threads flush automatically every [`THREAD_FLUSH_THRESHOLD`] events and
/// when they exit; call this before [`drain`] on the thread that did the
/// work if it is still alive (e.g. `main`).
pub fn flush_current_thread() {
    let _ = THREAD_BUF.try_with(|buf| buf.borrow_mut().flush());
}

/// Takes every buffered event and the per-span summary out of the sink,
/// leaving it empty. Flushes the calling thread first; other threads'
/// unflushed tails are picked up once they flush or exit.
///
/// Summaries are sorted by self time, descending.
pub fn drain() -> (Vec<TraceEvent>, Vec<SpanSummary>) {
    flush_current_thread();
    let sink = sink();
    let mut events = std::mem::take(&mut *lock_unpoisoned(&sink.events));
    events.sort_by_key(|e| e.start_ns);
    let stats = std::mem::take(&mut *lock_unpoisoned(&sink.stats));
    let mut summaries: Vec<SpanSummary> = stats
        .into_iter()
        .map(|(name, s)| SpanSummary {
            name,
            count: s.count,
            total: Duration::from_nanos(s.total_ns),
            self_time: Duration::from_nanos(s.self_ns),
        })
        .collect();
    summaries.sort_by(|a, b| b.self_time.cmp(&a.self_time).then(a.name.cmp(b.name)));
    (events, summaries)
}

/// Number of events dropped because the sink was at [`MAX_BUFFERED_EVENTS`].
pub fn dropped_events() -> u64 {
    // lint-ok(ordering-justified): reporting-only read of an independent
    // counter; staleness is fine.
    sink().dropped.load(Ordering::Relaxed)
}

/// Clears buffered events, summaries and the drop counter (tests/benches).
pub fn reset() {
    flush_current_thread();
    let sink = sink();
    lock_unpoisoned(&sink.events).clear();
    lock_unpoisoned(&sink.stats).clear();
    // lint-ok(ordering-justified): test/bench-only reset of an independent
    // counter; no ordering relationship with other state is required.
    sink.dropped.store(0, Ordering::Relaxed);
}

/// Serializes events as JSON lines, one object per event.
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = writeln!(
            out,
            "{{\"name\":{},\"thread\":{},\"depth\":{},\"start_ns\":{},\"duration_ns\":{}}}",
            crate::registry::json_string(e.name),
            e.thread,
            e.depth,
            e.start_ns,
            e.duration_ns
        );
    }
    out
}

/// Renders the self-time/total-time summary table printed at experiment
/// end. `wall` is the experiment's wall-clock time; the footer reports how
/// much of it the named spans' self time accounts for.
pub fn render_summary(summaries: &[SpanSummary], wall: Duration) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>12} {:>12} {:>8}",
        "span", "count", "total", "self", "% wall"
    );
    let mut self_sum = Duration::ZERO;
    for s in summaries {
        self_sum += s.self_time;
        let pct = if wall.is_zero() {
            0.0
        } else {
            100.0 * s.self_time.as_secs_f64() / wall.as_secs_f64()
        };
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>12} {:>12} {:>7.1}%",
            s.name,
            s.count,
            format_duration(s.total),
            format_duration(s.self_time),
            pct
        );
    }
    let pct = if wall.is_zero() {
        0.0
    } else {
        100.0 * self_sum.as_secs_f64() / wall.as_secs_f64()
    };
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>12} {:>12} {:>7.1}%",
        "TOTAL (self)",
        "",
        "",
        format_duration(self_sum),
        pct
    );
    let dropped = dropped_events();
    if dropped > 0 {
        let _ = writeln!(out, "({dropped} events dropped at the sink cap)");
    }
    out
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_level, test_level_lock, ObsLevel};

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = test_level_lock();
        let before = crate::level();
        set_level(ObsLevel::Off);
        reset();
        {
            let _s = Span::enter("off/span");
        }
        let (events, summaries) = drain();
        assert!(events.is_empty());
        assert!(summaries.is_empty());
        set_level(before);
    }

    #[test]
    fn nested_spans_attribute_self_time_to_parent_minus_children() {
        let _guard = test_level_lock();
        let before = crate::level();
        set_level(ObsLevel::Trace);
        reset();
        {
            let _outer = Span::enter("test/outer");
            std::thread::sleep(Duration::from_millis(4));
            for _ in 0..2 {
                let _inner = Span::enter("test/inner");
                std::thread::sleep(Duration::from_millis(3));
            }
        }
        let (events, summaries) = drain();
        set_level(before);

        assert_eq!(events.len(), 3);
        let outer_ev = events.iter().find(|e| e.name == "test/outer").unwrap();
        let inner_evs: Vec<_> = events.iter().filter(|e| e.name == "test/inner").collect();
        assert_eq!(outer_ev.depth, 0);
        assert!(inner_evs.iter().all(|e| e.depth == 1));
        // Children start within the parent's interval.
        for e in &inner_evs {
            assert!(e.start_ns >= outer_ev.start_ns);
            assert!(
                e.start_ns + e.duration_ns <= outer_ev.start_ns + outer_ev.duration_ns + 1_000_000
            );
        }

        let outer = summaries.iter().find(|s| s.name == "test/outer").unwrap();
        let inner = summaries.iter().find(|s| s.name == "test/inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        assert!(inner.total >= Duration::from_millis(6));
        assert!(outer.total >= inner.total);
        // Outer self time excludes the inner spans.
        assert_eq!(outer.self_time, outer.total - inner.total);
        assert!(outer.self_time >= Duration::from_millis(4));
    }

    #[test]
    fn spans_from_joined_threads_are_drained() {
        let _guard = test_level_lock();
        let before = crate::level();
        set_level(ObsLevel::Trace);
        reset();
        let threads: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = Span::enter("worker/span");
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let (events, summaries) = drain();
        set_level(before);
        assert_eq!(events.len(), 3);
        let threads_seen: std::collections::HashSet<u64> =
            events.iter().map(|e| e.thread).collect();
        assert_eq!(threads_seen.len(), 3, "one thread index per worker");
        assert_eq!(summaries[0].name, "worker/span");
        assert_eq!(summaries[0].count, 3);
    }

    #[test]
    fn jsonl_serialization_is_one_object_per_line() {
        let events = [
            TraceEvent {
                name: "a/b",
                thread: 0,
                depth: 0,
                start_ns: 5,
                duration_ns: 10,
            },
            TraceEvent {
                name: "c",
                thread: 1,
                depth: 2,
                start_ns: 7,
                duration_ns: 1,
            },
        ];
        let jsonl = events_to_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"name\":\"a/b\",\"thread\":0,\"depth\":0,\"start_ns\":5,\"duration_ns\":10}"
        );
    }

    #[test]
    fn summary_table_reports_wall_fraction() {
        let summaries = [
            SpanSummary {
                name: "x",
                count: 2,
                total: Duration::from_millis(90),
                self_time: Duration::from_millis(90),
            },
            SpanSummary {
                name: "y",
                count: 1,
                total: Duration::from_millis(5),
                self_time: Duration::from_millis(5),
            },
        ];
        let table = render_summary(&summaries, Duration::from_millis(100));
        assert!(table.contains("x"), "{table}");
        assert!(table.contains("90.0%"), "{table}");
        assert!(table.contains("TOTAL (self)"), "{table}");
        assert!(table.contains("95.0%"), "{table}");
    }

    #[test]
    fn sink_cap_counts_drops() {
        let _guard = test_level_lock();
        let before = crate::level();
        set_level(ObsLevel::Trace);
        reset();
        // Simulate a full sink by pre-filling, then flush one more event.
        {
            let mut events = sink().events.lock().unwrap();
            events.resize(
                MAX_BUFFERED_EVENTS,
                TraceEvent {
                    name: "fill",
                    thread: 0,
                    depth: 0,
                    start_ns: 0,
                    duration_ns: 0,
                },
            );
        }
        {
            let _s = Span::enter("over/cap");
        }
        flush_current_thread();
        assert_eq!(dropped_events(), 1);
        reset();
        set_level(before);
    }
}
