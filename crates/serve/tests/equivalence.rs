//! Serial/batched equivalence: the serving engine must be an exact,
//! bit-identical stand-in for driving `MagnetDefense::classify` directly —
//! including under concurrent submitters and during shutdown drain.

use adv_magnet::arch::{mnist_ae_two, mnist_classifier};
use adv_magnet::{
    Autoencoder, DefenseScheme, Detector, JsdDetector, MagnetDefense, ReconstructionDetector,
    ReconstructionNorm, Verdict,
};
use adv_nn::loss::ReconstructionLoss;
use adv_nn::Sequential;
use adv_serve::{ServeConfig, ServeEngine, ServeError};
use adv_tensor::{Shape, Tensor};
use std::sync::Arc;
use std::time::Duration;

/// A small calibrated defense over 8×8 single-channel inputs.
fn toy_defense() -> MagnetDefense {
    let ae = Autoencoder::new(
        &mnist_ae_two(1, 3),
        ReconstructionLoss::MeanSquaredError,
        0.0,
        1,
    )
    .unwrap();
    let classifier = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 2).unwrap();
    let det = ReconstructionDetector::new(ae.clone(), ReconstructionNorm::L2);
    let mut defense = MagnetDefense::new("serve-toy", vec![Box::new(det)], ae, classifier);
    defense.calibrate_detectors(&corpus(64, 0), 0.05).unwrap();
    defense
}

/// Like [`toy_defense`], but with the paper's D+JSD redundancy: the same AE
/// serves a reconstruction detector, two JSD detectors, and the reformer,
/// and the JSD detectors carry clones of the protected classifier — the
/// configuration the engine's fused pass deduplicates hardest.
fn jsd_defense() -> MagnetDefense {
    let ae = Autoencoder::new(
        &mnist_ae_two(1, 3),
        ReconstructionLoss::MeanSquaredError,
        0.0,
        1,
    )
    .unwrap();
    let classifier = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 2).unwrap();
    let detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(ReconstructionDetector::new(
            ae.clone(),
            ReconstructionNorm::L2,
        )),
        Box::new(JsdDetector::new(ae.clone(), classifier.clone(), 10.0).unwrap()),
        Box::new(JsdDetector::new(ae.clone(), classifier.clone(), 40.0).unwrap()),
    ];
    let mut defense = MagnetDefense::new("serve-toy-jsd", detectors, ae, classifier);
    defense.calibrate_detectors(&corpus(64, 0), 0.05).unwrap();
    defense
}

/// Deterministic batch of `n` pseudo-images, offset to vary content.
fn corpus(n: usize, offset: usize) -> Tensor {
    Tensor::from_fn(Shape::nchw(n, 1, 8, 8), |i| {
        (((i + offset * 131) * 7) % 23) as f32 / 23.0
    })
}

/// Serial ground truth: one `classify` call over the whole stacked batch.
fn serial_verdicts(defense: &MagnetDefense, x: &Tensor, scheme: DefenseScheme) -> Vec<Verdict> {
    defense.classify(x, scheme).unwrap()
}

#[test]
fn batched_verdicts_match_serial_bitwise() {
    let defense = Arc::new(toy_defense());
    let x = corpus(16, 1);
    for scheme in DefenseScheme::ALL {
        let expected = serial_verdicts(&defense, &x, scheme);

        let engine = ServeEngine::start(
            defense.clone(),
            ServeConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                workers: 2,
                scheme,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let pending: Vec<_> = (0..16)
            .map(|i| engine.submit(x.index_axis0(i).unwrap()).unwrap())
            .collect();
        let got: Vec<Verdict> = pending
            .into_iter()
            .map(|p| p.wait().unwrap().verdict)
            .collect();
        assert_eq!(got, expected, "scheme {scheme:?}");

        let m = engine.shutdown();
        assert_eq!(m.submitted, 16);
        assert_eq!(m.completed, 16);
        assert_eq!(m.failed, 0);
    }
}

#[test]
fn fused_jsd_defense_matches_serial_bitwise() {
    let defense = Arc::new(jsd_defense());
    let x = corpus(16, 4);
    for scheme in DefenseScheme::ALL {
        let expected = serial_verdicts(&defense, &x, scheme);
        let engine = ServeEngine::start(
            defense.clone(),
            ServeConfig {
                max_batch: 16,
                max_wait: Duration::from_millis(1),
                workers: 1,
                scheme,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let pending: Vec<_> = (0..16)
            .map(|i| engine.submit(x.index_axis0(i).unwrap()).unwrap())
            .collect();
        let got: Vec<Verdict> = pending
            .into_iter()
            .map(|p| p.wait().unwrap().verdict)
            .collect();
        assert_eq!(got, expected, "scheme {scheme:?}");
        engine.shutdown();
    }
}

#[test]
fn concurrent_submitters_each_get_their_own_verdicts() {
    let defense = Arc::new(toy_defense());
    let engine = Arc::new(
        ServeEngine::start(
            defense.clone(),
            ServeConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                workers: 3,
                ..ServeConfig::default()
            },
        )
        .unwrap(),
    );

    let handles: Vec<_> = (0..4)
        .map(|t| {
            let engine = engine.clone();
            let defense = defense.clone();
            std::thread::spawn(move || {
                let x = corpus(8, t + 2);
                let expected = serial_verdicts(&defense, &x, DefenseScheme::Full);
                let pending: Vec<_> = (0..8)
                    .map(|i| engine.submit(x.index_axis0(i).unwrap()).unwrap())
                    .collect();
                let got: Vec<Verdict> = pending
                    .into_iter()
                    .map(|p| p.wait().unwrap().verdict)
                    .collect();
                assert_eq!(got, expected, "submitter {t}");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let m = engine.metrics();
    assert_eq!(m.submitted, 32);
    assert_eq!(m.completed, 32);
}

#[test]
fn shutdown_drains_already_accepted_requests() {
    let defense = Arc::new(toy_defense());
    let x = corpus(24, 9);
    let expected = serial_verdicts(&defense, &x, DefenseScheme::Full);

    // One slow-flushing worker so most requests are still queued when
    // shutdown begins.
    let engine = ServeEngine::start(
        defense,
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(20),
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let pending: Vec<_> = (0..24)
        .map(|i| engine.submit(x.index_axis0(i).unwrap()).unwrap())
        .collect();
    let final_metrics = engine.shutdown();

    // Every accepted request was answered — none dropped, all correct.
    let got: Vec<Verdict> = pending
        .into_iter()
        .map(|p| p.wait().unwrap().verdict)
        .collect();
    assert_eq!(got, expected);
    assert_eq!(final_metrics.completed, 24);
    assert_eq!(final_metrics.failed, 0);
}

#[test]
fn backpressure_rejects_when_queue_is_full() {
    let defense = Arc::new(toy_defense());
    let engine = ServeEngine::start(
        defense,
        ServeConfig {
            queue_capacity: 1,
            max_batch: 1,
            max_wait: Duration::ZERO,
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // A tight submission loop outpaces the single worker by orders of
    // magnitude, so a capacity-1 queue must reject some submissions.
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for i in 0..256 {
        match engine.submit(corpus(1, i).index_axis0(0).unwrap()) {
            Ok(p) => accepted.push(p),
            Err(ServeError::QueueFull) => rejected += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(rejected > 0, "queue never filled");
    for p in accepted {
        p.wait().unwrap();
    }
    let m = engine.shutdown();
    assert_eq!(m.rejected, rejected);
    assert_eq!(m.submitted + m.rejected, 256);
    assert_eq!(m.completed, m.submitted);
}

#[test]
fn responses_carry_latency_and_batch_metadata() {
    let defense = Arc::new(toy_defense());
    let engine = ServeEngine::start(defense, ServeConfig::default()).unwrap();
    let r = engine
        .submit(corpus(1, 3).index_axis0(0).unwrap())
        .unwrap()
        .wait()
        .unwrap();
    assert!(r.batch_size >= 1);
    assert!(r.latency >= r.queue_wait);
    // Full scheme: every stage actually ran.
    assert!(r.stage_timings.detect > Duration::ZERO);
    assert!(r.stage_timings.reform > Duration::ZERO);
    assert!(r.stage_timings.classify > Duration::ZERO);
    assert!(r.stage_timings.total() <= r.latency);

    let m = engine.metrics();
    assert_eq!(m.submitted, 1);
    assert!(m.p50_latency > Duration::ZERO);
    assert!(m.p99_latency >= m.p50_latency);
}

#[test]
fn submit_after_shutdown_is_rejected() {
    let defense = Arc::new(toy_defense());
    let engine = ServeEngine::start(defense.clone(), ServeConfig::default()).unwrap();
    drop(engine);

    // A fresh engine that is explicitly shut down refuses new work; the
    // `Drop`-based path above must also terminate cleanly (joined workers).
    let engine = ServeEngine::start(defense, ServeConfig::default()).unwrap();
    let m = engine.shutdown();
    assert_eq!(m.submitted, 0);
}

#[test]
fn zero_sized_config_is_rejected() {
    let defense = Arc::new(toy_defense());
    for cfg in [
        ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        },
        ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        },
        ServeConfig {
            queue_capacity: 0,
            ..ServeConfig::default()
        },
    ] {
        assert!(matches!(
            ServeEngine::start(defense.clone(), cfg),
            Err(ServeError::InvalidConfig(_))
        ));
    }
}

#[test]
fn mixed_shapes_fail_alone_without_poisoning_neighbours() {
    let defense = Arc::new(toy_defense());
    let engine = ServeEngine::start(
        defense,
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(20),
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let good = engine.submit(corpus(1, 5).index_axis0(0).unwrap()).unwrap();
    let bad = engine
        .submit(Tensor::zeros(Shape::nchw(1, 1, 4, 4)))
        .unwrap();
    assert!(matches!(
        bad.wait(),
        Err(ServeError::Pipeline(_)) | Err(ServeError::Disconnected)
    ));
    good.wait().expect("well-shaped request must still succeed");
}
