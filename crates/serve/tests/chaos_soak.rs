//! Seeded chaos soak: randomized panics, errors, and delays at every
//! injection site while concurrent submitters hammer the engine.
//!
//! Per seed, the soak asserts the engine's fault-tolerance contract:
//!
//! * **Exactly-once responses** — every accepted request resolves with a
//!   verdict or a typed error; no wait ever observes a dropped channel
//!   ([`ServeError::Disconnected`]) and no wait hangs.
//! * **Accounting identity** — `submitted == completed + failed +
//!   shed_expired` after shutdown, i.e. no request is lost or counted
//!   twice, whatever mix of panics, retries, degradation, and restarts the
//!   schedule produced.
//! * **Monotone health** — once a sampler observes `Failed`, every later
//!   sample is `Failed` (the state is terminal).
//! * **Clean shutdown** — `shutdown()` returns (workers and supervisor
//!   join) even when the run killed workers or failed the engine.
//!
//! The seed matrix comes from `CHAOS_SEEDS` (comma-separated) so CI can pin
//! its own; the same seed replays the same fault schedule bit-for-bit. With
//! `CHAOS_METRICS_PATH` set, the final per-seed metrics JSON is written
//! there for the CI artifact.

use adv_chaos::{
    FaultInjector, FaultPlan, FaultyDefense, PANIC_MARKER, SITE_CLASSIFY, SITE_DETECT, SITE_REFORM,
};
use adv_magnet::arch::{mnist_ae_two, mnist_classifier};
use adv_magnet::{Autoencoder, MagnetDefense, ReconstructionDetector, ReconstructionNorm};
use adv_nn::loss::ReconstructionLoss;
use adv_nn::Sequential;
use adv_serve::{
    DegradePolicy, EngineHealth, RestartPolicy, ServeConfig, ServeEngine, ServeError, SITE_POLL,
};
use adv_tensor::{Shape, Tensor};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

const SUBMITTERS: usize = 3;
const PER_SUBMITTER: usize = 40;

fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with(PANIC_MARKER));
            if !injected {
                previous(info);
            }
        }));
    });
}

fn toy_defense() -> Arc<MagnetDefense> {
    let ae = Autoencoder::new(
        &mnist_ae_two(1, 3),
        ReconstructionLoss::MeanSquaredError,
        0.0,
        1,
    )
    .unwrap();
    let classifier = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 2).unwrap();
    let det = ReconstructionDetector::new(ae.clone(), ReconstructionNorm::L2);
    let mut defense = MagnetDefense::new("soak-toy", vec![Box::new(det)], ae, classifier);
    let calib = Tensor::from_fn(Shape::nchw(64, 1, 8, 8), |i| ((i * 7) % 23) as f32 / 23.0);
    defense.calibrate_detectors(&calib, 0.05).unwrap();
    Arc::new(defense)
}

fn item(offset: usize) -> Tensor {
    Tensor::from_fn(Shape::nchw(1, 1, 8, 8), |i| {
        (((i + offset * 131) * 7) % 23) as f32 / 23.0
    })
    .index_axis0(0)
    .unwrap()
}

fn seed_matrix() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(csv) => csv
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect(),
        Err(_) => vec![3, 17, 1031, 9001],
    }
}

/// One full soak under `seed`; returns the engine's final metrics JSON.
fn soak(seed: u64) -> String {
    let plan = FaultPlan::randomized(seed, &[SITE_DETECT, SITE_REFORM, SITE_CLASSIFY, SITE_POLL]);
    let injector = Arc::new(FaultInjector::new(plan).unwrap());
    let faulty = Arc::new(FaultyDefense::new(toy_defense(), injector.clone()));
    let engine = Arc::new(
        ServeEngine::start(
            faulty,
            ServeConfig {
                workers: 2,
                max_batch: 4,
                max_wait: Duration::from_micros(500),
                queue_capacity: 64,
                max_retries: 1,
                retry_backoff: Duration::from_micros(50),
                restart: RestartPolicy {
                    max_restarts: 6,
                    window: Duration::from_secs(30),
                    backoff_base: Duration::from_micros(100),
                    backoff_max: Duration::from_millis(2),
                },
                degrade: DegradePolicy {
                    enabled: true,
                    failure_threshold: 4,
                    probe_interval: Duration::from_millis(5),
                },
                injector: Some(injector.clone()),
                ..ServeConfig::default()
            },
        )
        .unwrap(),
    );

    // Health sampler: once Failed, always Failed.
    let stop_sampling = Arc::new(AtomicBool::new(false));
    let sampler = {
        let engine = engine.clone();
        let stop = stop_sampling.clone();
        std::thread::spawn(move || {
            let mut saw_failed = false;
            let mut violations = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let health = engine.health();
                if saw_failed && health != EngineHealth::Failed {
                    violations += 1;
                }
                saw_failed |= health == EngineHealth::Failed;
                std::thread::sleep(Duration::from_micros(200));
            }
            violations
        })
    };

    let submitters: Vec<_> = (0..SUBMITTERS)
        .map(|s| {
            let engine = engine.clone();
            std::thread::spawn(move || {
                let mut accepted = Vec::new();
                for i in 0..PER_SUBMITTER {
                    let input = item(s * PER_SUBMITTER + i);
                    // Every third request carries a server-side deadline so
                    // the shed path is exercised alongside plain submits.
                    let submitted = if i % 3 == 0 {
                        engine.submit_with_deadline(input, Duration::from_millis(50))
                    } else {
                        engine.submit(input)
                    };
                    match submitted {
                        Ok(pending) => accepted.push(pending),
                        Err(ServeError::QueueFull) => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(ServeError::ShuttingDown) => break,
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
                // Exactly-once: every accepted request resolves (bounded, so
                // a lost response fails the test instead of hanging it) and
                // never as a dropped channel. A Timeout here is normally the
                // server-side shed response arriving through the channel; a
                // genuinely unanswered request would also land here, and the
                // accounting identity below would then fail the test.
                let mut outcomes = [0u64; 2];
                for pending in accepted {
                    match pending.wait_timeout(Duration::from_secs(30)) {
                        Ok(_) => outcomes[0] += 1,
                        Err(ServeError::Disconnected) => {
                            panic!("a response channel was dropped unanswered")
                        }
                        Err(_) => outcomes[1] += 1,
                    }
                }
                outcomes
            })
        })
        .collect();

    let mut served = 0u64;
    let mut errored = 0u64;
    for submitter in submitters {
        let [ok, err] = submitter.join().expect("submitter panicked");
        served += ok;
        errored += err;
    }
    stop_sampling.store(true, Ordering::Relaxed);
    let violations = sampler.join().expect("health sampler panicked");
    assert_eq!(violations, 0, "health left Failed after entering it");

    let json = engine.metrics_json();
    let engine = Arc::into_inner(engine).expect("all clones joined");
    let m = engine.shutdown();

    // Accounting identity: every accepted request is answered exactly once,
    // through exactly one of the three terminal paths.
    assert_eq!(
        m.submitted,
        m.completed + m.failed + m.shed_expired,
        "seed {seed}: lost or double-counted requests \
         (completed {} failed {} shed {})",
        m.completed,
        m.failed,
        m.shed_expired
    );
    // The waits above observed a subset of those totals (server-side shed
    // surfaces as a Timeout *error* to the caller, so shed responses land
    // in `errored`).
    assert_eq!(served, m.completed, "seed {seed}");
    assert_eq!(errored, m.failed + m.shed_expired, "seed {seed}");
    // Respawns happen only in reaction to caught panics.
    assert!(
        m.worker_restarts <= m.worker_panics,
        "seed {seed}: {} restarts for {} panics",
        m.worker_restarts,
        m.worker_panics
    );
    json
}

#[test]
fn seeded_chaos_soak_holds_the_fault_tolerance_contract() {
    silence_injected_panics();
    let mut artifacts = String::new();
    for seed in seed_matrix() {
        let json = soak(seed);
        artifacts.push_str(&format!("{{\"seed\":{seed},\"metrics\":{json}}}\n"));
    }
    if let Ok(path) = std::env::var("CHAOS_METRICS_PATH") {
        std::fs::write(&path, artifacts).expect("write chaos metrics artifact");
    }
}
