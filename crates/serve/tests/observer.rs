//! Response-observer integration: every served request is reported exactly
//! once, with its tag, verdict, scheme, and per-detector scores.

use adv_magnet::arch::{mnist_ae_two, mnist_classifier};
use adv_magnet::{
    Autoencoder, DefenseScheme, MagnetDefense, ReconstructionDetector, ReconstructionNorm, Verdict,
};
use adv_nn::loss::ReconstructionLoss;
use adv_nn::Sequential;
use adv_serve::{RequestTag, ResponseObserver, ServeConfig, ServeEngine, ServedRecord};
use adv_tensor::{Shape, Tensor};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn toy_defense() -> MagnetDefense {
    let ae = Autoencoder::new(
        &mnist_ae_two(1, 3),
        ReconstructionLoss::MeanSquaredError,
        0.0,
        1,
    )
    .unwrap();
    let classifier = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 2).unwrap();
    let det = ReconstructionDetector::new(ae.clone(), ReconstructionNorm::L2);
    let mut defense = MagnetDefense::new("observe-toy", vec![Box::new(det)], ae, classifier);
    defense.calibrate_detectors(&corpus(64), 0.05).unwrap();
    defense
}

fn corpus(n: usize) -> Tensor {
    Tensor::from_fn(Shape::nchw(n, 1, 8, 8), |i| ((i * 7) % 23) as f32 / 23.0)
}

/// An owned snapshot of one observed response.
#[derive(Debug, Clone)]
struct Seen {
    tag: RequestTag,
    verdict: Verdict,
    scheme: DefenseScheme,
    degraded: bool,
    tick_ns: u64,
    scores: Vec<f32>,
}

#[derive(Debug, Default)]
struct Collector {
    seen: Mutex<Vec<Seen>>,
}

impl ResponseObserver for Collector {
    fn on_response(&self, r: &ServedRecord<'_>) {
        self.seen.lock().unwrap().push(Seen {
            tag: r.tag,
            verdict: r.verdict,
            scheme: r.scheme,
            degraded: r.degraded,
            tick_ns: r.tick_ns,
            scores: r.scores.to_vec(),
        });
    }
}

#[test]
fn every_served_request_is_observed_with_tag_and_scores() {
    let defense = Arc::new(toy_defense());
    let collector = Arc::new(Collector::default());
    let engine = ServeEngine::start(
        defense,
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            workers: 2,
            observer: Some(collector.clone()),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let x = corpus(16);
    let pending: Vec<_> = (0..16)
        .map(|i| {
            let tag = RequestTag::new(7, 3, i as u32);
            engine
                .submit_tagged(x.index_axis0(i).unwrap(), tag)
                .unwrap()
        })
        .collect();
    let responses: Vec<_> = pending.into_iter().map(|p| p.wait().unwrap()).collect();
    engine.shutdown();

    let seen = collector.seen.lock().unwrap();
    assert_eq!(seen.len(), 16, "one observation per served request");
    let mut samples: Vec<u32> = seen.iter().map(|s| s.tag.sample).collect();
    samples.sort_unstable();
    assert_eq!(samples, (0..16).collect::<Vec<u32>>());
    for s in seen.iter() {
        assert_eq!((s.tag.tenant, s.tag.route), (7, 3));
        assert_eq!(s.scheme, DefenseScheme::Full);
        assert!(!s.degraded);
        // One calibrated detector deployed → one score per request.
        assert_eq!(s.scores.len(), 1);
        assert!(s.scores[0].is_finite());
        assert!(s.tick_ns > 0);
        // The observed verdict matches what the submitter was told.
        let response = &responses[s.tag.sample as usize];
        assert_eq!(s.verdict, response.verdict);
    }
}

#[test]
fn untagged_submissions_observe_zero_tags_and_failures_are_not_observed() {
    let defense = Arc::new(toy_defense());
    let collector = Arc::new(Collector::default());
    let engine = ServeEngine::start(
        defense,
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            workers: 1,
            observer: Some(collector.clone()),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let ok = engine.submit(corpus(1).index_axis0(0).unwrap()).unwrap();
    // Wrong shape: the pipeline fails this request; it must not be observed.
    let bad = engine
        .submit(Tensor::zeros(Shape::nchw(1, 1, 4, 4)))
        .unwrap();
    ok.wait().unwrap();
    assert!(bad.wait().is_err());
    engine.shutdown();

    let seen = collector.seen.lock().unwrap();
    assert_eq!(seen.len(), 1, "only the served request is observed");
    assert_eq!(seen[0].tag, RequestTag::default());
}
