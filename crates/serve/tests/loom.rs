//! Model checks for the serving engine's MPMC queue, run with
//! `RUSTFLAGS="--cfg loom" cargo test -p adv-serve --test loom`.
//!
//! Under `cfg(loom)` the queue's `Mutex`/`Condvar` come from the loom shim,
//! which injects deterministic per-iteration schedule perturbation at every
//! lock, wait and notify (see `shims/loom`). Each check therefore runs the
//! scenario across many distinct schedules; the invariants below must hold
//! on all of them.

#![cfg(loom)]

use adv_serve::queue::{BoundedQueue, PushError};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// Every accepted item is delivered exactly once, across multiple producers
/// and multiple batch-draining consumers, with close-time stragglers still
/// drained (the queue's documented shutdown contract).
#[test]
fn mpmc_delivers_every_accepted_item_exactly_once() {
    loom::model(|| {
        const PRODUCERS: u64 = 3;
        const PER_PRODUCER: u64 = 8;
        let queue: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(4));

        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let queue = queue.clone();
                loom::thread::spawn(move || {
                    let mut seen = Vec::new();
                    while let Some(batch) = queue.pop_batch(3, Duration::from_micros(50)) {
                        seen.extend(batch);
                    }
                    seen
                })
            })
            .collect();

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let queue = queue.clone();
                loom::thread::spawn(move || {
                    let mut accepted = Vec::new();
                    for i in 0..PER_PRODUCER {
                        let item = p * 100 + i;
                        loop {
                            match queue.try_push(item) {
                                Ok(_) => {
                                    accepted.push(item);
                                    break;
                                }
                                Err(PushError::Full(_)) => loom::thread::yield_now(),
                                Err(PushError::Closed(_)) => {
                                    unreachable!("queue closed while producing")
                                }
                            }
                        }
                    }
                    accepted
                })
            })
            .collect();

        let mut accepted = Vec::new();
        for producer in producers {
            accepted.extend(producer.join().expect("producer panicked"));
        }
        queue.close();

        let mut delivered = Vec::new();
        for consumer in consumers {
            delivered.extend(consumer.join().expect("consumer panicked"));
        }

        assert_eq!(
            delivered.len(),
            accepted.len(),
            "every accepted item is delivered exactly once (no loss, no duplication)"
        );
        let delivered_set: HashSet<u64> = delivered.iter().copied().collect();
        let accepted_set: HashSet<u64> = accepted.iter().copied().collect();
        assert_eq!(delivered_set, accepted_set);
    });
}

/// With a single consumer the queue is FIFO per producer: each producer's
/// items arrive in submission order (the engine relies on this for fair
/// latency attribution).
#[test]
fn single_consumer_preserves_per_producer_order() {
    loom::model(|| {
        let queue: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(16));

        let consumer = {
            let queue = queue.clone();
            loom::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(batch) = queue.pop_batch(4, Duration::from_micros(50)) {
                    seen.extend(batch);
                }
                seen
            })
        };

        let producers: Vec<_> = (0..2u64)
            .map(|p| {
                let queue = queue.clone();
                loom::thread::spawn(move || {
                    for i in 0..6 {
                        let mut item = p * 100 + i;
                        loop {
                            match queue.try_push(item) {
                                Ok(_) => break,
                                Err(PushError::Full(returned)) => {
                                    item = returned;
                                    loom::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => {
                                    unreachable!("queue closed while producing")
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for producer in producers {
            producer.join().expect("producer panicked");
        }
        queue.close();
        let seen = consumer.join().expect("consumer panicked");

        assert_eq!(seen.len(), 12);
        for p in 0..2u64 {
            let per_producer: Vec<u64> = seen.iter().copied().filter(|v| v / 100 == p).collect();
            let mut sorted = per_producer.clone();
            sorted.sort_unstable();
            assert_eq!(
                per_producer, sorted,
                "producer {p}'s items must arrive in submission order"
            );
        }
    });
}

/// Model of the engine's supervision protocol: a worker that dies mid-batch
/// answers every request of the doomed batch *before* dying (mirroring the
/// engine's `catch_unwind` with the senders held outside the closure), and
/// the supervisor's replacement worker drains the remainder. Across all
/// perturbed schedules, every accepted request is answered exactly once —
/// the worker's death neither loses a request nor double-delivers one.
#[test]
fn worker_death_mid_batch_never_loses_or_double_delivers() {
    use loom::sync::Mutex;

    const N: usize = 6;
    const POISON: usize = 2;

    /// Worker body: drain batches, answering each item exactly once; a
    /// batch containing the poison item is still fully answered, then the
    /// worker reports its own death (`true`) as the engine's caught-panic
    /// path does.
    fn run_worker(queue: &BoundedQueue<usize>, responses: &Mutex<Vec<u8>>) -> bool {
        while let Some(batch) = queue.pop_batch(3, Duration::from_micros(10)) {
            let poisoned = batch.iter().any(|&item| item == POISON);
            let mut delivered = responses.lock().unwrap();
            for item in batch {
                delivered[item] += 1;
            }
            drop(delivered);
            if poisoned {
                return true;
            }
        }
        false
    }

    loom::model(|| {
        let queue: Arc<BoundedQueue<usize>> = Arc::new(BoundedQueue::new(N));
        let responses = Arc::new(Mutex::new(vec![0u8; N]));

        let supervisor = {
            let queue = queue.clone();
            let responses = responses.clone();
            loom::thread::spawn(move || {
                let mut restarts = 0u32;
                loop {
                    let worker = {
                        let queue = queue.clone();
                        let responses = responses.clone();
                        loom::thread::spawn(move || run_worker(&queue, &responses))
                    };
                    let died = worker.join().expect("worker thread panicked");
                    if !died {
                        break;
                    }
                    restarts += 1;
                    assert!(restarts <= 1, "the single poison can kill only one worker");
                }
                restarts
            })
        };

        for item in 0..N {
            loop {
                match queue.try_push(item) {
                    Ok(_) => break,
                    Err(PushError::Full(_)) => loom::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!("queue closed while producing"),
                }
            }
        }
        queue.close();
        let restarts = supervisor.join().expect("supervisor panicked");

        let delivered = responses.lock().unwrap();
        assert!(
            delivered.iter().all(|&count| count == 1),
            "every request must be answered exactly once, got {delivered:?}"
        );
        // The poison is always delivered (exactly once, per the assert
        // above), so the worker that took it always died and was replaced.
        assert_eq!(restarts, 1, "the poisoned worker must die and be respawned");
    });
}

/// Closing an empty queue wakes every blocked consumer (no lost wakeup: a
/// missed `notify_all` would hang this test rather than fail it, which is
/// exactly the regression signal we want in CI).
#[test]
fn close_wakes_all_blocked_consumers() {
    loom::model(|| {
        let queue: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let queue = queue.clone();
                loom::thread::spawn(move || queue.pop_batch(4, Duration::from_micros(10)))
            })
            .collect();
        // No sleep: under schedule perturbation some iterations close before
        // the consumers block, some after — both must terminate.
        queue.close();
        for consumer in consumers {
            assert!(
                consumer.join().expect("consumer panicked").is_none(),
                "a consumer must observe end-of-stream after close"
            );
        }
    });
}
