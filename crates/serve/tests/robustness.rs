//! Fault-tolerance behaviour of the serving engine, driven by the
//! deterministic `adv-chaos` injector: deadline shedding, worker panic
//! supervision and respawn, restart-budget exhaustion, abandoned-receiver
//! accounting, and circuit-breaker degradation with probe recovery.

use adv_chaos::{
    FaultInjector, FaultPlan, FaultyDefense, SiteFaults, PANIC_MARKER, SITE_CLASSIFY, SITE_REFORM,
};
use adv_magnet::arch::{mnist_ae_two, mnist_classifier};
use adv_magnet::{
    Autoencoder, DefenseScheme, MagnetDefense, ReconstructionDetector, ReconstructionNorm,
};
use adv_nn::loss::ReconstructionLoss;
use adv_nn::Sequential;
use adv_serve::{
    DegradePolicy, EngineHealth, RestartPolicy, ServeConfig, ServeEngine, ServeError, SITE_POLL,
};
use adv_tensor::{Shape, Tensor};
use std::sync::{Arc, Once};
use std::time::Duration;

/// Silences the default panic-hook stderr spew for *injected* panics only;
/// real panics still print. Installed once per test binary.
fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with(PANIC_MARKER));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// A small calibrated defense over 8×8 single-channel inputs.
fn toy_defense() -> Arc<MagnetDefense> {
    let ae = Autoencoder::new(
        &mnist_ae_two(1, 3),
        ReconstructionLoss::MeanSquaredError,
        0.0,
        1,
    )
    .unwrap();
    let classifier = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 2).unwrap();
    let det = ReconstructionDetector::new(ae.clone(), ReconstructionNorm::L2);
    let mut defense = MagnetDefense::new("robust-toy", vec![Box::new(det)], ae, classifier);
    defense.calibrate_detectors(&corpus(64, 0), 0.05).unwrap();
    Arc::new(defense)
}

/// Deterministic batch of `n` pseudo-images, offset to vary content.
fn corpus(n: usize, offset: usize) -> Tensor {
    Tensor::from_fn(Shape::nchw(n, 1, 8, 8), |i| {
        (((i + offset * 131) * 7) % 23) as f32 / 23.0
    })
}

fn item(offset: usize) -> Tensor {
    corpus(1, offset).index_axis0(0).unwrap()
}

/// Wraps the toy defense with a fault plan and starts an engine over it.
fn faulty_engine(plan: FaultPlan, cfg: ServeConfig) -> (ServeEngine, Arc<FaultInjector>) {
    let injector = Arc::new(FaultInjector::new(plan).unwrap());
    let faulty = Arc::new(FaultyDefense::new(toy_defense(), injector.clone()));
    let cfg = ServeConfig {
        injector: Some(injector.clone()),
        ..cfg
    };
    (ServeEngine::start(faulty, cfg).unwrap(), injector)
}

#[test]
fn expired_server_deadline_is_shed_with_timeout() {
    let engine = ServeEngine::start(toy_defense(), ServeConfig::default()).unwrap();
    // A zero budget expires by the time any worker can look at it.
    let shed = engine
        .submit_with_deadline(item(1), Duration::ZERO)
        .unwrap();
    assert_eq!(shed.wait().unwrap_err(), ServeError::Timeout);
    // A generous budget behaves like a plain submit.
    let served = engine
        .submit_with_deadline(item(2), Duration::from_secs(30))
        .unwrap();
    served.wait().expect("in-budget request must be served");
    let m = engine.shutdown();
    assert_eq!(m.shed_expired, 1);
    assert_eq!(m.completed, 1);
    // Shed requests are answered, not silently dropped, and are not
    // double-counted as pipeline failures.
    assert_eq!(m.failed, 0);
    assert_eq!(m.submitted, 2);
}

#[test]
fn caller_wait_timeout_and_server_deadline_agree_on_timeout() {
    silence_injected_panics();
    // Slow the worker's poll by 30ms so the caller-side timeout fires while
    // the request is still queued; the server later answers into a dropped
    // receiver, which must be *counted*, not lost.
    let plan =
        FaultPlan::new(11).with(SiteFaults::at(SITE_POLL).delays(1.0, Duration::from_millis(30)));
    let (engine, _) = faulty_engine(
        plan,
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );

    // Caller-side expiry: same error the server-side shed produces.
    let pending = engine.submit(item(3)).unwrap();
    assert_eq!(
        pending.wait_timeout(Duration::from_millis(1)).unwrap_err(),
        ServeError::Timeout
    );

    // Server-side expiry: the deadline outlasts the caller's patience but
    // not the worker's stall, so the *server* sheds it with the same error.
    let pending = engine
        .submit_with_deadline(item(4), Duration::from_millis(1))
        .unwrap();
    assert_eq!(pending.wait().unwrap_err(), ServeError::Timeout);

    let m = engine.shutdown();
    assert_eq!(m.shed_expired, 1, "server-side shed");
    assert_eq!(
        m.responses_abandoned, 1,
        "the caller-abandoned verdict is counted"
    );
}

#[test]
fn abandoned_receivers_are_counted_not_ignored() {
    silence_injected_panics();
    let plan =
        FaultPlan::new(13).with(SiteFaults::at(SITE_POLL).delays(1.0, Duration::from_millis(25)));
    let (engine, _) = faulty_engine(
        plan,
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    // The worker is stalled for 25ms, so these drops happen while the
    // requests are still queued.
    drop(engine.submit(item(5)).unwrap());
    drop(engine.submit(item(6)).unwrap());
    let kept = engine.submit(item(7)).unwrap();
    kept.wait().expect("kept receiver must still be served");
    let m = engine.shutdown();
    assert_eq!(m.responses_abandoned, 2);
    assert_eq!(m.completed, 3, "abandoned verdicts still complete");
}

#[test]
fn worker_panic_answers_the_batch_and_respawns_the_worker() {
    silence_injected_panics();
    let plan = FaultPlan::new(17).with(SiteFaults::at(SITE_CLASSIFY).panics(1.0).limit(1));
    let (engine, injector) = faulty_engine(
        plan,
        ServeConfig {
            workers: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(10),
            restart: RestartPolicy {
                backoff_base: Duration::from_micros(100),
                ..RestartPolicy::default()
            },
            ..ServeConfig::default()
        },
    );

    // The first executed batch panics; every rider must get WorkerPanic
    // (never a hung wait or Disconnected), and the respawned worker must
    // serve the follow-up request.
    let first: Vec<_> = (0..4)
        .map(|i| engine.submit(item(10 + i)).unwrap())
        .collect();
    let mut panicked = 0;
    let mut served = 0;
    for pending in first {
        match pending.wait() {
            Err(ServeError::WorkerPanic(msg)) => {
                assert!(msg.contains(PANIC_MARKER), "{msg}");
                panicked += 1;
            }
            Ok(_) => served += 1,
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
    assert!(panicked >= 1, "at least the panicking batch must report it");
    assert_eq!(injector.stats().panics, 1);

    // Respawn: the engine keeps serving after the panic.
    engine
        .submit(item(20))
        .unwrap()
        .wait()
        .expect("respawned worker must serve");
    served += 1;
    assert!(served >= 1);
    assert_eq!(engine.health(), EngineHealth::Degraded, "restart window");

    let m = engine.shutdown();
    assert_eq!(m.worker_panics, 1);
    assert_eq!(m.worker_restarts, 1);
    assert_eq!(
        m.completed + m.failed,
        m.submitted,
        "exactly-once accounting"
    );
}

#[test]
fn exhausted_restart_budget_fails_the_engine_terminally() {
    silence_injected_panics();
    let plan = FaultPlan::new(19).with(SiteFaults::at(SITE_CLASSIFY).panics(1.0));
    let (engine, _) = faulty_engine(
        plan,
        ServeConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::ZERO,
            restart: RestartPolicy {
                max_restarts: 1,
                backoff_base: Duration::from_micros(100),
                window: Duration::from_secs(60),
                ..RestartPolicy::default()
            },
            ..ServeConfig::default()
        },
    );

    // Every batch panics: panic #1 consumes the restart budget, panic #2
    // exceeds it and the engine must fail closed.
    let mut accepted = Vec::new();
    for i in 0..200 {
        match engine.submit(item(i)) {
            Ok(p) => accepted.push(p),
            Err(ServeError::ShuttingDown) => break,
            Err(ServeError::QueueFull) => std::thread::sleep(Duration::from_millis(1)),
            Err(e) => panic!("unexpected submit error: {e}"),
        }
        if engine.health() == EngineHealth::Failed {
            break;
        }
    }
    // Every accepted request resolves with an error — none hang, none see a
    // dropped channel.
    for pending in accepted {
        match pending.wait_timeout(Duration::from_secs(10)) {
            Err(ServeError::WorkerPanic(_)) => {}
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }
    // Wait for the supervisor to finish marking the engine failed.
    let mut health = engine.health();
    for _ in 0..500 {
        if health == EngineHealth::Failed {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
        health = engine.health();
    }
    assert_eq!(health, EngineHealth::Failed);
    assert_eq!(
        engine.submit(item(999)).unwrap_err(),
        ServeError::ShuttingDown,
        "a failed engine accepts no further work"
    );
    let m = engine.shutdown();
    assert_eq!(m.worker_restarts, 1);
    assert!(m.worker_panics >= 2);
    assert_eq!(m.completed + m.failed, m.submitted);
}

#[test]
fn breaker_degrades_the_scheme_and_probe_restores_it() {
    silence_injected_panics();
    // The reformer fails twice (exactly the threshold), then recovers; with
    // retries off each failure is one batch failure.
    let plan = FaultPlan::new(23).with(SiteFaults::at(SITE_REFORM).errors(1.0).limit(2));
    let (engine, _) = faulty_engine(
        plan,
        ServeConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::ZERO,
            scheme: DefenseScheme::Full,
            max_retries: 0,
            degrade: DegradePolicy {
                enabled: true,
                failure_threshold: 2,
                // Wide enough that the degraded-traffic assertions below
                // cannot accidentally race the probe on a slow machine.
                probe_interval: Duration::from_millis(100),
            },
            ..ServeConfig::default()
        },
    );

    // Two failing batches open the breaker…
    for i in 0..2 {
        let err = engine.submit(item(30 + i)).unwrap().wait().unwrap_err();
        assert!(matches!(err, ServeError::Pipeline(_)), "{err}");
    }
    // …after which traffic is served under the fallback scheme, stamped
    // degraded.
    let r = engine.submit(item(40)).unwrap().wait().unwrap();
    assert!(r.degraded);
    assert_eq!(r.scheme, DefenseScheme::DetectorOnly);
    assert_eq!(engine.health(), EngineHealth::Degraded);

    // Once the probe interval elapses, the next batch probes the original
    // scheme (the fault budget is spent, so it succeeds) and the breaker
    // closes.
    std::thread::sleep(Duration::from_millis(120));
    let r = engine.submit(item(41)).unwrap().wait().unwrap();
    assert!(!r.degraded, "successful probe restores the full scheme");
    assert_eq!(r.scheme, DefenseScheme::Full);
    assert_eq!(engine.health(), EngineHealth::Healthy);

    let m = engine.shutdown();
    assert_eq!(m.breaker_opened, 1);
    assert_eq!(m.breaker_closed, 1);
    assert!(m.degraded_responses >= 1);
    assert_eq!(m.failed, 2);
}

#[test]
fn transient_failures_are_retried_within_the_batch() {
    silence_injected_panics();
    // One injected error, then clean: a single retry absorbs it and the
    // caller never sees a failure.
    let plan = FaultPlan::new(29).with(SiteFaults::at(SITE_REFORM).errors(1.0).limit(1));
    let (engine, _) = faulty_engine(
        plan,
        ServeConfig {
            workers: 1,
            max_retries: 1,
            retry_backoff: Duration::from_micros(50),
            ..ServeConfig::default()
        },
    );
    engine
        .submit(item(50))
        .unwrap()
        .wait()
        .expect("retry must absorb the transient failure");
    let m = engine.shutdown();
    assert_eq!(m.batch_retries, 1);
    assert_eq!(m.failed, 0);
    assert_eq!(m.completed, 1);
}

#[test]
fn zero_failure_threshold_is_rejected() {
    let result = ServeEngine::start(
        toy_defense(),
        ServeConfig {
            degrade: DegradePolicy {
                enabled: true,
                failure_threshold: 0,
                ..DegradePolicy::default()
            },
            ..ServeConfig::default()
        },
    );
    assert!(matches!(result, Err(ServeError::InvalidConfig(_))));
}
