//! adv-serve: batched inference serving for the MagNet defense pipeline.
//!
//! The attack-evaluation crates drive [`adv_magnet::MagnetDefense`] one
//! batch at a time from a single thread. This crate wraps the same pipeline
//! in a small serving engine for throughput experiments:
//!
//! * [`ServeEngine::submit`] accepts single inputs on a bounded MPMC queue
//!   and returns a [`PendingVerdict`] future-like handle; a full queue
//!   rejects the request ([`ServeError::QueueFull`]) so callers see
//!   backpressure instead of unbounded latency.
//! * Worker threads coalesce requests into micro-batches — flushing on
//!   `max_batch` or after `max_wait` — and run the shared defense through
//!   its `&self` inference path, so one calibrated defense behind an `Arc`
//!   serves all workers with no locking around the model.
//! * Each [`ServeResponse`] carries the verdict plus the batch's per-stage
//!   [`adv_magnet::StageTimings`] and queue wait; engine-wide counters
//!   (throughput, rejects, p50/p99 latency, queue depth) come from
//!   [`ServeEngine::metrics`]. The counters live on a private `adv-obs`
//!   registry, so [`ServeEngine::metrics_prometheus`] /
//!   [`ServeEngine::metrics_json`] export them through the same pipeline
//!   the training and attack telemetry uses; with `ADV_OBS=trace` the
//!   workers additionally emit `serve/poll`, `serve/batch`, `serve/stack`
//!   and `serve/pipeline` spans.
//! * [`ServeEngine::shutdown`] (or drop) closes the queue, drains every
//!   already-accepted request, and joins the workers.
//! * The engine is fault tolerant: batches run under `catch_unwind` with a
//!   supervisor respawning panicked workers ([`RestartPolicy`]), requests
//!   may carry server-side deadlines
//!   ([`ServeEngine::submit_with_deadline`]), transient pipeline failures
//!   are retried with bounded backoff, and a circuit breaker
//!   ([`DegradePolicy`]) degrades the defense scheme one
//!   [`adv_magnet::DefenseScheme::fallback`] step at a time instead of
//!   failing outright. [`ServeEngine::health`] summarises all of it as
//!   Healthy / Degraded / Failed, and an `adv-chaos`
//!   [`adv_chaos::FaultInjector`] can be plumbed in via
//!   [`ServeConfig::injector`] to exercise every one of these paths
//!   deterministically.
//!
//! Batching is exact, not approximate: a batch of `N` requests yields
//! bit-identical verdicts to `N` serial
//! [`adv_magnet::MagnetDefense::classify`] calls, because every per-item
//! computation in the pipeline is independent of its batch neighbours (the
//! equivalence tests pin this down).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breaker;
mod engine;
mod health;
mod metrics;
pub mod observe;
pub mod queue;
pub mod router;

pub use breaker::DegradePolicy;
pub use engine::{PendingVerdict, ServeConfig, ServeEngine, ServeResponse, SITE_POLL};
pub use health::{EngineHealth, RestartPolicy};
pub use metrics::MetricsSnapshot;
pub use observe::{RequestTag, ResponseObserver, ServedRecord};
pub use router::{RouteInfo, VariantRouter, DEFAULT_VARIANT};

/// Errors surfaced by the serving engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request queue is at capacity; retry later or shed load.
    QueueFull,
    /// The engine is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The defense pipeline failed while executing the request's batch.
    Pipeline(String),
    /// The engine died without answering (worker panic).
    Disconnected,
    /// The request's batch was aborted by a worker panic; the worker is
    /// respawned under the engine's restart policy, but this batch's
    /// results are gone.
    WorkerPanic(String),
    /// A wait with a deadline expired before the verdict arrived (either
    /// the caller's `wait_timeout` or the server-side request deadline).
    Timeout,
    /// Rejected engine configuration.
    InvalidConfig(String),
    /// The OS refused to start a worker thread.
    WorkerSpawn(String),
    /// The requested variant is not in the live routing table (unknown id,
    /// retired, or its shard has failed). Carries the variant id.
    VariantUnavailable(u32),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "request queue is full"),
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::Pipeline(msg) => write!(f, "defense pipeline failed: {msg}"),
            ServeError::Disconnected => write!(f, "engine terminated without responding"),
            ServeError::WorkerPanic(msg) => {
                write!(f, "worker panicked while executing the batch: {msg}")
            }
            ServeError::Timeout => write!(f, "timed out waiting for a verdict"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ServeError::WorkerSpawn(msg) => write!(f, "cannot spawn worker thread: {msg}"),
            ServeError::VariantUnavailable(v) => {
                write!(f, "variant {v} is not in the live routing table")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
