//! A bounded MPMC queue with batch-draining consumers.
//!
//! Producers never block: a full queue rejects the push (the engine's
//! backpressure signal). Consumers block until work arrives, then coalesce
//! up to `max` items, lingering at most `max_wait` after the first item so
//! lightly-loaded queues still flush promptly.

use adv_obs::sync::unpoison;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

#[cfg(loom)]
use loom::sync::{Condvar, Mutex};
#[cfg(not(loom))]
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is returned to the caller.
    Full(T),
    /// The queue was closed; the item is returned to the caller.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer multi-consumer queue (std `Mutex` + `Condvar`;
/// no external concurrency crates are available offline).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `item` without blocking, returning the new queue depth.
    ///
    /// # Errors
    ///
    /// Returns the item back inside [`PushError::Full`] when at capacity and
    /// [`PushError::Closed`] after [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut guard = unpoison(self.inner.lock());
        if guard.closed {
            return Err(PushError::Closed(item));
        }
        if guard.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        guard.items.push_back(item);
        let depth = guard.items.len();
        drop(guard);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        unpoison(self.inner.lock()).items.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: future pushes fail, consumers drain what remains and
    /// then observe end-of-stream.
    pub fn close(&self) {
        unpoison(self.inner.lock()).closed = true;
        self.not_empty.notify_all();
    }

    /// `true` once [`close`](Self::close) has been called (items may still be
    /// draining).
    pub fn is_closed(&self) -> bool {
        unpoison(self.inner.lock()).closed
    }

    /// Blocks until at least one item is available, then drains up to `max`
    /// items, waiting at most `max_wait` (measured from the first item) for
    /// the batch to fill.
    ///
    /// Returns `None` only when the queue is closed *and* empty — consumers
    /// use this as their shutdown signal, so close-time stragglers are still
    /// delivered.
    pub fn pop_batch(&self, max: usize, max_wait: Duration) -> Option<Vec<T>> {
        let mut guard = unpoison(self.inner.lock());
        loop {
            if !guard.items.is_empty() {
                break;
            }
            if guard.closed {
                return None;
            }
            guard = unpoison(self.not_empty.wait(guard));
        }

        let mut batch = Vec::with_capacity(max.min(guard.items.len()));
        // lint-ok(gated-clocks): the batching deadline is the feature —
        // `max_wait` is measured in wall-clock time by contract.
        let deadline = Instant::now() + max_wait;
        loop {
            while batch.len() < max {
                match guard.items.pop_front() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            if batch.len() >= max || guard.closed {
                break;
            }
            // lint-ok(gated-clocks): same deadline contract as above.
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (g, timeout) = unpoison(self.not_empty.wait_timeout(guard, deadline - now));
            guard = g;
            if guard.items.is_empty() && timeout.timed_out() {
                break;
            }
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_then_batch_preserves_fifo_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let batch = q.pop_batch(8, Duration::from_millis(1)).unwrap();
        assert_eq!(batch, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_queue_rejects_and_returns_item() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed(8)));
        assert_eq!(q.pop_batch(4, Duration::ZERO).unwrap(), vec![7]);
        assert!(q.pop_batch(4, Duration::ZERO).is_none());
    }

    #[test]
    fn batch_flushes_on_max_batch_without_waiting() {
        let q = BoundedQueue::new(16);
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        // max = 4 < queued: must not linger for the deadline.
        let t0 = Instant::now();
        let batch = q.pop_batch(4, Duration::from_secs(5)).unwrap();
        assert_eq!(batch.len(), 4);
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn batch_flushes_on_deadline_when_underfull() {
        let q = BoundedQueue::new(16);
        q.try_push(1).unwrap();
        let batch = q.pop_batch(32, Duration::from_millis(5)).unwrap();
        assert_eq!(batch, vec![1]);
    }

    #[test]
    fn consumer_wakes_on_push_from_other_thread() {
        let q = Arc::new(BoundedQueue::new(4));
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                q.try_push(42).unwrap();
            })
        };
        let batch = q.pop_batch(1, Duration::from_millis(1)).unwrap();
        assert_eq!(batch, vec![42]);
        producer.join().unwrap();
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: Arc<BoundedQueue<i32>> = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || q.pop_batch(4, Duration::from_millis(1)))
        };
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert!(consumer.join().unwrap().is_none());
    }
}
