//! The micro-batching engine: bounded request queue in front of a
//! supervised worker pool that coalesces requests into batches and runs a
//! shared [`DefensePipeline`] on each batch.
//!
//! Fault tolerance (see `DESIGN.md`, "Fault tolerance & chaos testing"):
//!
//! * Workers execute every batch group under `catch_unwind`, with the
//!   requests' response senders held *outside* the unwinding closure — a
//!   panicking pipeline therefore answers each in-flight request with
//!   [`ServeError::WorkerPanic`] instead of leaving callers to observe a
//!   dropped channel ([`ServeError::Disconnected`]).
//! * A supervisor thread respawns panicked workers under a
//!   [`RestartPolicy`] (exponential backoff, bounded restarts per sliding
//!   window); exhausting the budget drives the engine to
//!   [`EngineHealth::Failed`]: the queue is closed and every still-queued
//!   request is answered with an error.
//! * Requests may carry a server-side deadline
//!   ([`ServeEngine::submit_with_deadline`]); workers shed already-expired
//!   requests with [`ServeError::Timeout`] (counted, never silently
//!   dropped). Transient pipeline failures are retried per batch with
//!   bounded exponential backoff.
//! * A consecutive-failure circuit breaker ([`DegradePolicy`]) degrades
//!   the served [`DefenseScheme`] one fallback step at a time, stamps the
//!   affected responses as degraded, and periodically probes the original
//!   scheme to restore it.
//! * A [`FaultInjector`] can be plumbed in via [`ServeConfig::injector`]
//!   to exercise all of the above deterministically; the default is
//!   `None`, a single never-taken branch on the hot path.

use crate::breaker::{BatchRole, Breaker, BreakerEvent};
use crate::health::HealthState;
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::observe::{RequestTag, ResponseObserver, ServedRecord};
use crate::queue::{BoundedQueue, PushError};
use crate::{DegradePolicy, EngineHealth, RestartPolicy};
use crate::{Result, ServeError};
use adv_chaos::FaultInjector;
use adv_magnet::{DefensePipeline, DefenseScheme, StageTimings, Verdict};
use adv_obs::Span;
use adv_profile::TraceId;
use adv_tensor::Tensor;
use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Fault-injection site consulted by each worker between batches (before
/// any request is held, so an injected panic there can never lose one).
pub const SITE_POLL: &str = "serve/poll";

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest batch a worker will form before running the pipeline.
    pub max_batch: usize,
    /// How long a worker lingers for more requests after the first one.
    pub max_wait: Duration,
    /// Queue capacity; submissions beyond it are rejected (backpressure).
    pub queue_capacity: usize,
    /// Worker threads sharing the defense.
    pub workers: usize,
    /// Defense scheme every request is served under (the breaker may
    /// temporarily degrade it; see [`DegradePolicy`]).
    pub scheme: DefenseScheme,
    /// Re-executions of a batch after a transient pipeline failure.
    pub max_retries: usize,
    /// Backoff before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// How the supervisor handles worker panics.
    pub restart: RestartPolicy,
    /// When and how the engine falls back to a reduced scheme.
    pub degrade: DegradePolicy,
    /// Deterministic fault injector for chaos tests. `None` (the default)
    /// costs one branch per batch poll and nothing per request.
    pub injector: Option<Arc<FaultInjector>>,
    /// Per-response observer (e.g. a telemetry recorder). `None` (the
    /// default) keeps the unscored pipeline path and adds nothing per
    /// request; when set, batches run through the scored pipeline and every
    /// served request is reported via [`ResponseObserver::on_response`].
    pub observer: Option<Arc<dyn ResponseObserver>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            queue_capacity: 256,
            workers: 2,
            scheme: DefenseScheme::Full,
            max_retries: 1,
            retry_backoff: Duration::from_micros(200),
            restart: RestartPolicy::default(),
            degrade: DegradePolicy::default(),
            injector: None,
            observer: None,
        }
    }
}

/// One served verdict, with the latency breakdown of the batch it rode in.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The defense pipeline's decision for this input.
    pub verdict: Verdict,
    /// Per-stage wall-clock time of the executed batch (shared by every
    /// request in the batch).
    pub stage_timings: StageTimings,
    /// Number of requests coalesced into the executed batch.
    pub batch_size: usize,
    /// Time from submission until the batch started executing.
    pub queue_wait: Duration,
    /// Total time from submission to response.
    pub latency: Duration,
    /// Scheme the batch actually ran under (differs from the configured
    /// scheme while the breaker is open).
    pub scheme: DefenseScheme,
    /// `true` when [`scheme`](Self::scheme) is a degraded fallback of the
    /// configured scheme.
    pub degraded: bool,
    /// The request's causal trace id ([`TraceId::NONE`] while profiling is
    /// off). Resolve it to a span tree with `adv_profile::render_trace`.
    pub trace: TraceId,
}

/// Handle to a submitted request; resolves to its [`ServeResponse`].
#[derive(Debug)]
pub struct PendingVerdict {
    rx: mpsc::Receiver<Result<ServeResponse>>,
}

impl PendingVerdict {
    /// Blocks until the verdict arrives.
    ///
    /// # Errors
    ///
    /// Returns the pipeline error for a failed batch, or
    /// [`ServeError::Disconnected`] if the engine died without answering.
    pub fn wait(self) -> Result<ServeResponse> {
        self.rx.recv().map_err(|_| ServeError::Disconnected)?
    }

    /// Like [`wait`](Self::wait) but gives up after `timeout`.
    ///
    /// # Errors
    ///
    /// As [`wait`](Self::wait), plus [`ServeError::Timeout`] on expiry.
    pub fn wait_timeout(self, timeout: Duration) -> Result<ServeResponse> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => r,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Disconnected),
        }
    }
}

/// A queued classification request.
#[derive(Debug)]
struct Request {
    input: Tensor,
    tag: RequestTag,
    trace: TraceId,
    submitted: Instant,
    deadline: Option<Instant>,
    tx: mpsc::Sender<Result<ServeResponse>>,
}

/// State shared by submitters, workers, and the supervisor.
#[derive(Debug)]
struct Shared {
    queue: BoundedQueue<Request>,
    metrics: ServeMetrics,
    health: HealthState,
    breaker: Breaker,
}

/// Everything a worker (or a respawn of one) needs.
#[derive(Debug, Clone)]
struct WorkerCtx {
    shared: Arc<Shared>,
    pipeline: Arc<dyn DefensePipeline>,
    cfg: Arc<ServeConfig>,
    events: mpsc::Sender<WorkerEvent>,
}

/// A worker announcing its own exit to the supervisor.
#[derive(Debug)]
struct WorkerEvent {
    worker: usize,
    panicked: bool,
}

#[derive(Debug, PartialEq, Eq)]
enum WorkerExit {
    /// Queue closed and drained: clean shutdown.
    Closed,
    /// A batch panicked (already answered); the worker must be replaced.
    Panicked,
}

/// The serving engine. Dropping (or [`shutdown`](Self::shutdown)) closes the
/// queue, drains every queued request, and joins the workers.
#[derive(Debug)]
pub struct ServeEngine {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl ServeEngine {
    /// Starts the supervised worker pool around a shared, already-calibrated
    /// defense pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for zero-sized knobs and
    /// [`ServeError::WorkerSpawn`] when the OS refuses a thread (any
    /// requests accepted in the meantime are failed, not dropped).
    pub fn start(pipeline: Arc<dyn DefensePipeline>, cfg: ServeConfig) -> Result<Self> {
        if cfg.max_batch == 0 || cfg.workers == 0 || cfg.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(format!(
                "max_batch {}, workers {} and queue_capacity {} must all be nonzero",
                cfg.max_batch, cfg.workers, cfg.queue_capacity
            )));
        }
        if cfg.degrade.enabled && cfg.degrade.failure_threshold == 0 {
            return Err(ServeError::InvalidConfig(
                "degrade.failure_threshold must be nonzero when degradation is enabled".into(),
            ));
        }
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity),
            metrics: ServeMetrics::default(),
            health: HealthState::new(),
            breaker: Breaker::new(cfg.scheme, cfg.degrade.clone()),
        });
        let (event_tx, event_rx) = mpsc::channel();
        let workers = cfg.workers;
        let ctx = WorkerCtx {
            shared: shared.clone(),
            pipeline,
            cfg: Arc::new(cfg),
            events: event_tx,
        };
        let mut handles = HashMap::with_capacity(workers);
        for i in 0..workers {
            match spawn_worker(i, ctx.clone()) {
                Ok(handle) => {
                    handles.insert(i, handle);
                }
                Err(e) => {
                    let err = ServeError::WorkerSpawn(format!("worker {i} of {workers}: {e}"));
                    fail_engine(&shared, &err);
                    for (_, handle) in handles {
                        let _ = handle.join();
                    }
                    return Err(err);
                }
            }
        }
        let supervisor = {
            let ctx = ctx.clone();
            std::thread::Builder::new()
                .name("adv-serve-supervisor".into())
                .spawn(move || supervisor_loop(ctx, event_rx, handles, workers))
        };
        match supervisor {
            Ok(handle) => Ok(ServeEngine {
                shared,
                supervisor: Some(handle),
            }),
            Err(e) => {
                let err = ServeError::WorkerSpawn(format!("supervisor: {e}"));
                fail_engine(&shared, &err);
                Err(err)
            }
        }
    }

    /// Submits one input (per-item shape, e.g. `[C, H, W]`) for
    /// classification.
    ///
    /// Never blocks: when the queue is at capacity the request is rejected so
    /// the caller can shed load or retry.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] under backpressure,
    /// [`ServeError::ShuttingDown`] after shutdown began (or after the
    /// engine entered [`EngineHealth::Failed`]).
    pub fn submit(&self, input: Tensor) -> Result<PendingVerdict> {
        self.submit_inner(input, RequestTag::default(), None)
    }

    /// Like [`submit`](Self::submit), but attaches a [`RequestTag`]
    /// (tenant/route/sample identity) that rides along to the response
    /// observer — recorded traffic becomes filterable and replayable.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit).
    pub fn submit_tagged(&self, input: Tensor, tag: RequestTag) -> Result<PendingVerdict> {
        self.submit_inner(input, tag, None)
    }

    /// Like [`submit`](Self::submit), but gives the request a server-side
    /// deadline of `budget` from now: if no worker starts its batch before
    /// the deadline the request is shed with [`ServeError::Timeout`].
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit); the `Timeout` itself surfaces on
    /// [`PendingVerdict::wait`].
    pub fn submit_with_deadline(&self, input: Tensor, budget: Duration) -> Result<PendingVerdict> {
        self.submit_inner(input, RequestTag::default(), Some(budget))
    }

    /// [`submit_tagged`](Self::submit_tagged) with a server-side deadline.
    ///
    /// # Errors
    ///
    /// As [`submit_with_deadline`](Self::submit_with_deadline).
    pub fn submit_tagged_with_deadline(
        &self,
        input: Tensor,
        tag: RequestTag,
        budget: Duration,
    ) -> Result<PendingVerdict> {
        self.submit_inner(input, tag, Some(budget))
    }

    fn submit_inner(
        &self,
        input: Tensor,
        tag: RequestTag,
        budget: Option<Duration>,
    ) -> Result<PendingVerdict> {
        let (tx, rx) = mpsc::channel();
        // lint-ok(gated-clocks): the submission timestamp feeds the
        // queue-wait/latency fields of ServeResponse and anchors the
        // server-side deadline — timing is the serving contract, not
        // incidental instrumentation.
        let submitted = Instant::now();
        let request = Request {
            input,
            tag,
            trace: adv_profile::next_trace_id(),
            submitted,
            deadline: budget.map(|b| submitted + b),
            tx,
        };
        match self.shared.queue.try_push(request) {
            Ok(depth) => {
                self.shared.metrics.record_submitted(depth);
                Ok(PendingVerdict { rx })
            }
            Err(PushError::Full(_)) => {
                self.shared.metrics.record_rejected();
                Err(ServeError::QueueFull)
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Number of requests currently queued (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// The engine's current health: `Degraded` while the breaker is open or
    /// a worker restart is within the restart window; `Failed` (terminal)
    /// once the restart budget is exhausted.
    pub fn health(&self) -> EngineHealth {
        self.shared.health.health(self.shared.breaker.is_open())
    }

    /// Current counter snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The engine's metrics in the Prometheus text exposition format
    /// (counters, the queue-depth high-water gauge, and the latency
    /// histogram with cumulative `le` buckets).
    pub fn metrics_prometheus(&self) -> String {
        self.shared.metrics.obs_snapshot().to_prometheus()
    }

    /// The engine's metrics as a JSON object (same content as
    /// [`metrics_prometheus`](Self::metrics_prometheus)).
    pub fn metrics_json(&self) -> String {
        self.shared.metrics.obs_snapshot().to_json()
    }

    /// Begins a graceful drain: the queue stops accepting new requests
    /// (submissions return [`ServeError::ShuttingDown`]) while workers keep
    /// answering everything already accepted, and [`health`](Self::health)
    /// reports [`EngineHealth::Draining`] so front ends (e.g. a network
    /// listener) can refuse new connects instead of racing the queue close.
    /// Idempotent; [`shutdown`](Self::shutdown) or drop still joins the
    /// workers afterwards.
    pub fn begin_drain(&self) {
        self.shared.health.set_draining();
        self.shared.queue.close();
    }

    /// Stops accepting work, drains every queued request, joins the workers,
    /// and returns the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop();
        self.shared.metrics.snapshot()
    }

    fn stop(&mut self) {
        self.shared.queue.close();
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Sends a response, counting (rather than ignoring) callers that dropped
/// their [`PendingVerdict`] without waiting.
fn respond(
    shared: &Shared,
    tx: &mpsc::Sender<Result<ServeResponse>>,
    result: Result<ServeResponse>,
) {
    if tx.send(result).is_err() {
        shared.metrics.record_response_abandoned();
    }
}

/// Closes the queue and fails every request still on it with `err`. The
/// close must precede the drain: `pop_batch` on an open empty queue blocks.
fn fail_engine(shared: &Shared, err: &ServeError) {
    shared.queue.close();
    while let Some(batch) = shared.queue.pop_batch(64, Duration::ZERO) {
        for request in batch {
            shared.metrics.record_failed();
            respond(shared, &request.tx, Err(err.clone()));
        }
    }
}

fn spawn_worker(id: usize, ctx: WorkerCtx) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("adv-serve-worker-{id}"))
        .spawn(move || worker_entry(id, ctx))
}

/// Outermost worker frame: runs the loop under `catch_unwind` so panics
/// outside batch execution (e.g. an injected poll-site panic) also turn
/// into a supervised respawn, then reports the exit to the supervisor.
fn worker_entry(id: usize, ctx: WorkerCtx) {
    let panicked = match std::panic::catch_unwind(AssertUnwindSafe(|| worker_loop(&ctx))) {
        Ok(WorkerExit::Closed) => false,
        Ok(WorkerExit::Panicked) => true,
        Err(_) => {
            // Panicked while holding no requests (batch panics are caught —
            // and counted — inside process_batch).
            ctx.shared.metrics.record_worker_panic();
            true
        }
    };
    let _ = ctx.events.send(WorkerEvent {
        worker: id,
        panicked,
    });
}

/// Worker body: coalesce, execute, respond — until close-and-drained.
fn worker_loop(ctx: &WorkerCtx) -> WorkerExit {
    loop {
        if let Some(injector) = &ctx.cfg.injector {
            // The poll site runs before any request is held: injected
            // panics kill only the worker (supervised), injected errors
            // have no request to fail and are deliberately dropped,
            // injected delays emulate a stalled worker.
            let _ = injector.apply(SITE_POLL);
        }
        let batch = {
            // Poll time covers both idle waiting and batch coalescing; in a
            // trace it shows up as the worker's non-pipeline time.
            let _poll = Span::enter("serve/poll");
            ctx.shared
                .queue
                .pop_batch(ctx.cfg.max_batch, ctx.cfg.max_wait)
        };
        let Some(batch) = batch else {
            return WorkerExit::Closed;
        };
        if batch.is_empty() {
            continue;
        }
        if process_batch(ctx, batch) == WorkerExit::Panicked {
            return WorkerExit::Panicked;
        }
    }
}

/// Executes one coalesced batch and answers every request in it — exactly
/// once, whatever happens: shed, served, failed, or panicked.
///
/// Requests are grouped by input shape first, so one oddly-shaped request
/// fails alone instead of poisoning the whole batch.
fn process_batch(ctx: &WorkerCtx, batch: Vec<Request>) -> WorkerExit {
    let shared = &ctx.shared;
    let cfg = &ctx.cfg;

    // Shed requests whose server-side deadline expired while queued: they
    // are answered (and counted), never silently dropped.
    // lint-ok(gated-clocks): deadline enforcement is the feature.
    let now = Instant::now();
    let mut live: Vec<Request> = Vec::with_capacity(batch.len());
    for request in batch {
        if request.deadline.is_some_and(|deadline| now >= deadline) {
            shared.metrics.record_shed_expired();
            respond(shared, &request.tx, Err(ServeError::Timeout));
        } else {
            live.push(request);
        }
    }

    let mut groups: VecDeque<Vec<Request>> = VecDeque::new();
    for request in live {
        match groups.iter_mut().find(|g| {
            g.first()
                .is_some_and(|r| r.input.shape() == request.input.shape())
        }) {
            Some(group) => group.push(request),
            None => groups.push_back(vec![request]),
        }
    }

    while let Some(group) = groups.pop_front() {
        let _batch_span = Span::enter("serve/batch");
        // lint-ok(gated-clocks): batch start time feeds the queue_wait and
        // latency response fields; measuring it is part of the API.
        let started = Instant::now();
        let (scheme, role) = shared.breaker.scheme_for_batch(shared.health.now_ns());
        let degraded = scheme != cfg.scheme;
        // One trace id per executed batch; each request's trace is linked
        // to it, and the guard tags every kernel/stage scope the pipeline
        // runs on this thread with the batch id. All of this is a no-op
        // (null ids, inactive guard) while profiling is off.
        let batch_trace = adv_profile::next_trace_id();
        for request in &group {
            adv_profile::link(request.trace, batch_trace);
        }
        let _trace_guard = adv_profile::record_into(batch_trace);
        let inputs: Vec<Tensor> = group.iter().map(|r| r.input.clone()).collect();

        // The response senders stay in `group`, outside the unwinding
        // closure — a panicking pipeline can never drop them, so callers
        // get WorkerPanic, not Disconnected.
        let mut attempt = 0;
        let outcome = loop {
            let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let stacked = {
                    let _stack = Span::enter("serve/stack");
                    Tensor::stack(&inputs).map_err(|e| ServeError::Pipeline(e.to_string()))
                };
                stacked.and_then(|x| {
                    let _pipeline = Span::enter("serve/pipeline");
                    // The fused pass memoises sub-computations shared
                    // between detectors, reformer, and classifier within
                    // the batch; its verdicts are bit-identical to serial
                    // classification (the equivalence tests pin this), so
                    // batching changes throughput, not results. The scored
                    // variant (same verdicts, detector scores kept instead
                    // of dropped) runs only when an observer wants them.
                    if cfg.observer.is_some() {
                        ctx.pipeline
                            .classify_batch_scored(&x, scheme)
                            .map_err(|e| ServeError::Pipeline(e.to_string()))
                    } else {
                        ctx.pipeline
                            .classify_batch(&x, scheme)
                            .map(|(verdicts, timings)| (verdicts, Vec::new(), timings))
                            .map_err(|e| ServeError::Pipeline(e.to_string()))
                    }
                })
            }));
            match run {
                Ok(Ok(ok)) => break Exec::Served(ok),
                Ok(Err(err)) => {
                    if attempt < cfg.max_retries {
                        attempt += 1;
                        shared.metrics.record_batch_retry();
                        std::thread::sleep(retry_backoff(cfg.retry_backoff, attempt));
                        continue;
                    }
                    break Exec::Failed(err);
                }
                Err(payload) => break Exec::Panicked(panic_message(payload.as_ref())),
            }
        };

        match outcome {
            Exec::Served((verdicts, det_scores, timings)) => {
                if shared.breaker.on_success(role) == Some(BreakerEvent::Closed) {
                    shared.metrics.record_breaker_closed();
                    let _t = Span::enter("serve/breaker/close");
                }
                shared
                    .metrics
                    .record_batch(timings.detect, timings.reform, timings.classify);
                let batch_size = group.len();
                for (i, (request, verdict)) in group.into_iter().zip(verdicts).enumerate() {
                    let response = ServeResponse {
                        verdict,
                        stage_timings: timings,
                        batch_size,
                        queue_wait: started.duration_since(request.submitted),
                        latency: request.submitted.elapsed(),
                        scheme,
                        degraded,
                        trace: request.trace,
                    };
                    adv_profile::record_event(
                        request.trace,
                        "queue_wait",
                        response.queue_wait.as_nanos() as u64,
                    );
                    adv_profile::observe_latency(response.latency.as_nanos() as u64, request.trace);
                    shared.metrics.record_completed(response.latency);
                    if degraded {
                        shared.metrics.record_degraded_response();
                    }
                    if let Some(observer) = &cfg.observer {
                        // Gather this item's score across the per-detector
                        // columns; allocated only on the observed path.
                        let scores: Vec<f32> = det_scores
                            .iter()
                            .filter_map(|col| col.get(i).copied())
                            .collect();
                        observer.on_response(&ServedRecord {
                            tag: request.tag,
                            verdict,
                            scheme,
                            degraded,
                            queue_ns: response.queue_wait.as_nanos() as u64,
                            infer_ns: timings.total().as_nanos() as u64,
                            tick_ns: shared.health.now_ns(),
                            trace_id: request.trace.as_u64(),
                            scores: &scores,
                        });
                    }
                    respond(shared, &request.tx, Ok(response));
                }
            }
            Exec::Failed(err) => {
                record_group_failure(ctx, role);
                for request in group {
                    shared.metrics.record_failed();
                    respond(shared, &request.tx, Err(err.clone()));
                }
            }
            Exec::Panicked(msg) => {
                record_group_failure(ctx, role);
                shared.metrics.record_worker_panic();
                let err = ServeError::WorkerPanic(msg);
                // The worker is about to die; answer the current group and
                // the rest of the batch now so no request rides down with
                // it (its senders would otherwise drop as Disconnected).
                for request in group.into_iter().chain(groups.drain(..).flatten()) {
                    shared.metrics.record_failed();
                    respond(shared, &request.tx, Err(err.clone()));
                }
                return WorkerExit::Panicked;
            }
        }
    }
    WorkerExit::Closed
}

/// How one batch group's execution ended.
enum Exec {
    Served((Vec<Verdict>, Vec<Vec<f32>>, StageTimings)),
    Failed(ServeError),
    Panicked(String),
}

/// Feeds a failed batch group into the breaker and records any resulting
/// transition.
fn record_group_failure(ctx: &WorkerCtx, role: BatchRole) {
    let shared = &ctx.shared;
    if let Some(BreakerEvent::Opened { .. }) =
        shared.breaker.on_failure(role, shared.health.now_ns())
    {
        shared.metrics.record_breaker_opened();
        let _t = Span::enter("serve/breaker/open");
    }
}

fn retry_backoff(base: Duration, attempt: usize) -> Duration {
    base.saturating_mul(1u32 << attempt.min(10) as u32)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Supervisor body: joins exited workers, respawns panicked ones under the
/// restart policy, and fails the engine when the budget runs out.
fn supervisor_loop(
    ctx: WorkerCtx,
    events: mpsc::Receiver<WorkerEvent>,
    mut handles: HashMap<usize, JoinHandle<()>>,
    workers: usize,
) {
    let restart = ctx.cfg.restart.clone();
    let window_ns = restart.window.as_nanos() as u64;
    let mut live = workers;
    let mut next_id = workers;
    let mut history: VecDeque<u64> = VecDeque::new();
    while live > 0 {
        let Ok(event) = events.recv() else {
            break;
        };
        if let Some(handle) = handles.remove(&event.worker) {
            // The worker already sent its exit event; the join is prompt.
            let _ = handle.join();
        }
        if !event.panicked {
            live -= 1;
            continue;
        }
        let now = ctx.shared.health.now_ns();
        while history
            .front()
            .is_some_and(|&t| now.saturating_sub(t) > window_ns)
        {
            history.pop_front();
        }
        if history.len() >= restart.max_restarts {
            ctx.shared.health.set_failed();
            fail_engine(
                &ctx.shared,
                &ServeError::WorkerPanic(format!(
                    "restart budget exhausted ({} restarts in {:?}); engine failed",
                    history.len(),
                    restart.window
                )),
            );
            live -= 1;
            continue;
        }
        // Backoff before the respawn; pending events just queue up behind
        // it (the backoff is capped well below typical event rates).
        std::thread::sleep(restart.backoff(history.len()));
        history.push_back(now);
        ctx.shared.health.mark_degraded(restart.window);
        ctx.shared.metrics.record_worker_restart();
        let _respawn = Span::enter("serve/worker/respawn");
        let id = next_id;
        next_id += 1;
        match spawn_worker(id, ctx.clone()) {
            Ok(handle) => {
                handles.insert(id, handle);
            }
            Err(e) => {
                ctx.shared.health.set_failed();
                fail_engine(
                    &ctx.shared,
                    &ServeError::WorkerSpawn(format!("respawn of worker {id}: {e}")),
                );
                live -= 1;
            }
        }
    }
    for (_, handle) in handles {
        let _ = handle.join();
    }
}
