//! The micro-batching engine: bounded request queue in front of a worker
//! pool that coalesces requests into batches and runs the shared
//! [`MagnetDefense`] pipeline on each batch.

use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::queue::{BoundedQueue, PushError};
use crate::{Result, ServeError};
use adv_magnet::{DefenseScheme, MagnetDefense, StageTimings, Verdict};
use adv_obs::Span;
use adv_tensor::Tensor;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest batch a worker will form before running the pipeline.
    pub max_batch: usize,
    /// How long a worker lingers for more requests after the first one.
    pub max_wait: Duration,
    /// Queue capacity; submissions beyond it are rejected (backpressure).
    pub queue_capacity: usize,
    /// Worker threads sharing the defense.
    pub workers: usize,
    /// Defense scheme every request is served under.
    pub scheme: DefenseScheme,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            queue_capacity: 256,
            workers: 2,
            scheme: DefenseScheme::Full,
        }
    }
}

/// One served verdict, with the latency breakdown of the batch it rode in.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The defense pipeline's decision for this input.
    pub verdict: Verdict,
    /// Per-stage wall-clock time of the executed batch (shared by every
    /// request in the batch).
    pub stage_timings: StageTimings,
    /// Number of requests coalesced into the executed batch.
    pub batch_size: usize,
    /// Time from submission until the batch started executing.
    pub queue_wait: Duration,
    /// Total time from submission to response.
    pub latency: Duration,
}

/// Handle to a submitted request; resolves to its [`ServeResponse`].
#[derive(Debug)]
pub struct PendingVerdict {
    rx: mpsc::Receiver<Result<ServeResponse>>,
}

impl PendingVerdict {
    /// Blocks until the verdict arrives.
    ///
    /// # Errors
    ///
    /// Returns the pipeline error for a failed batch, or
    /// [`ServeError::Disconnected`] if the engine died without answering.
    pub fn wait(self) -> Result<ServeResponse> {
        self.rx.recv().map_err(|_| ServeError::Disconnected)?
    }

    /// Like [`wait`](Self::wait) but gives up after `timeout`.
    ///
    /// # Errors
    ///
    /// As [`wait`](Self::wait), plus [`ServeError::Timeout`] on expiry.
    pub fn wait_timeout(self, timeout: Duration) -> Result<ServeResponse> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => r,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Disconnected),
        }
    }
}

/// A queued classification request.
#[derive(Debug)]
struct Request {
    input: Tensor,
    submitted: Instant,
    tx: mpsc::Sender<Result<ServeResponse>>,
}

/// The serving engine. Dropping (or [`shutdown`](Self::shutdown)) closes the
/// queue, drains every queued request, and joins the workers.
#[derive(Debug)]
pub struct ServeEngine {
    queue: Arc<BoundedQueue<Request>>,
    metrics: Arc<ServeMetrics>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Starts the worker pool around a shared, already-calibrated defense.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for zero-sized knobs.
    pub fn start(defense: Arc<MagnetDefense>, cfg: ServeConfig) -> Result<Self> {
        if cfg.max_batch == 0 || cfg.workers == 0 || cfg.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(format!(
                "max_batch {}, workers {} and queue_capacity {} must all be nonzero",
                cfg.max_batch, cfg.workers, cfg.queue_capacity
            )));
        }
        let queue = Arc::new(BoundedQueue::new(cfg.queue_capacity));
        let metrics = Arc::new(ServeMetrics::default());
        let mut workers = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let worker_queue = queue.clone();
            let worker_metrics = metrics.clone();
            let defense = defense.clone();
            let worker_cfg = cfg.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("adv-serve-worker-{i}"))
                .spawn(move || worker_loop(&worker_queue, &defense, &worker_cfg, &worker_metrics));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Unwind cleanly: stop the workers that did start before
                    // reporting the spawn failure.
                    queue.close();
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(ServeError::WorkerSpawn(format!(
                        "worker {i} of {}: {e}",
                        cfg.workers
                    )));
                }
            }
        }
        Ok(ServeEngine {
            queue,
            metrics,
            workers,
        })
    }

    /// Submits one input (per-item shape, e.g. `[C, H, W]`) for
    /// classification.
    ///
    /// Never blocks: when the queue is at capacity the request is rejected so
    /// the caller can shed load or retry.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] under backpressure,
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, input: Tensor) -> Result<PendingVerdict> {
        let (tx, rx) = mpsc::channel();
        let request = Request {
            input,
            // lint-ok(gated-clocks): the submission timestamp feeds the
            // queue-wait/latency fields of ServeResponse — timing is the
            // serving contract, not incidental instrumentation.
            submitted: Instant::now(),
            tx,
        };
        match self.queue.try_push(request) {
            Ok(depth) => {
                self.metrics.record_submitted(depth);
                Ok(PendingVerdict { rx })
            }
            Err(PushError::Full(_)) => {
                self.metrics.record_rejected();
                Err(ServeError::QueueFull)
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Number of requests currently queued (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Current counter snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The engine's metrics in the Prometheus text exposition format
    /// (counters, the queue-depth high-water gauge, and the latency
    /// histogram with cumulative `le` buckets).
    pub fn metrics_prometheus(&self) -> String {
        self.metrics.obs_snapshot().to_prometheus()
    }

    /// The engine's metrics as a JSON object (same content as
    /// [`metrics_prometheus`](Self::metrics_prometheus)).
    pub fn metrics_json(&self) -> String {
        self.metrics.obs_snapshot().to_json()
    }

    /// Stops accepting work, drains every queued request, joins the workers,
    /// and returns the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop();
        self.metrics.snapshot()
    }

    fn stop(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Worker body: coalesce, execute, respond — until close-and-drained.
fn worker_loop(
    queue: &BoundedQueue<Request>,
    defense: &MagnetDefense,
    cfg: &ServeConfig,
    metrics: &ServeMetrics,
) {
    loop {
        let batch = {
            // Poll time covers both idle waiting and batch coalescing; in a
            // trace it shows up as the worker's non-pipeline time.
            let _poll = Span::enter("serve/poll");
            queue.pop_batch(cfg.max_batch, cfg.max_wait)
        };
        let Some(batch) = batch else {
            break;
        };
        if batch.is_empty() {
            continue;
        }
        run_batch(defense, cfg.scheme, batch, metrics);
    }
}

/// Executes one coalesced batch and answers every request in it.
///
/// Requests are grouped by input shape first, so one oddly-shaped request
/// fails alone instead of poisoning the whole batch.
fn run_batch(
    defense: &MagnetDefense,
    scheme: DefenseScheme,
    batch: Vec<Request>,
    metrics: &ServeMetrics,
) {
    let mut groups: Vec<Vec<Request>> = Vec::new();
    for request in batch {
        match groups.iter_mut().find(|g| {
            g.first()
                .is_some_and(|r| r.input.shape() == request.input.shape())
        }) {
            Some(group) => group.push(request),
            None => groups.push(vec![request]),
        }
    }

    for group in groups {
        let _batch_span = Span::enter("serve/batch");
        // lint-ok(gated-clocks): batch start time feeds the queue_wait and
        // latency response fields; measuring it is part of the API.
        let started = Instant::now();
        let inputs: Vec<Tensor> = group.iter().map(|r| r.input.clone()).collect();
        let stacked = {
            let _stack = Span::enter("serve/stack");
            Tensor::stack(&inputs).map_err(|e| ServeError::Pipeline(e.to_string()))
        };
        let outcome = stacked.and_then(|x| {
            let _pipeline = Span::enter("serve/pipeline");
            // The fused pass memoises sub-computations shared between
            // detectors, reformer, and classifier within the batch; its
            // verdicts are bit-identical to `classify` (the equivalence
            // tests pin this), so batching changes throughput, not
            // results.
            defense
                .classify_fused(&x, scheme)
                .map_err(|e| ServeError::Pipeline(e.to_string()))
        });
        match outcome {
            Ok((verdicts, timings)) => {
                metrics.record_batch(timings.detect, timings.reform, timings.classify);
                let batch_size = group.len();
                for (request, verdict) in group.into_iter().zip(verdicts) {
                    let response = ServeResponse {
                        verdict,
                        stage_timings: timings,
                        batch_size,
                        queue_wait: started.duration_since(request.submitted),
                        latency: request.submitted.elapsed(),
                    };
                    metrics.record_completed(response.latency);
                    // A dropped receiver just means the caller stopped
                    // waiting; the verdict is discarded.
                    let _ = request.tx.send(Ok(response));
                }
            }
            Err(err) => {
                for request in group {
                    metrics.record_failed();
                    let _ = request.tx.send(Err(err.clone()));
                }
            }
        }
    }
}
