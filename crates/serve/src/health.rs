//! Engine health and worker restart policy.
//!
//! The supervisor escalates health monotonically within a degradation
//! window: `Healthy → Degraded` on a worker restart or an open circuit
//! breaker, `Degraded → Failed` when the restart budget is exhausted (or a
//! respawn itself fails). `Failed` is terminal; `Degraded` decays back to
//! `Healthy` only after the window expires *and* the breaker has closed, so
//! within one window the reported sequence can only move forward.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The engine's coarse health, reported by `ServeEngine::health`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EngineHealth {
    /// All workers live, breaker closed, no recent restarts.
    Healthy,
    /// The engine is serving, but a worker was recently respawned or the
    /// pipeline is running a reduced defense scheme.
    Degraded,
    /// A graceful shutdown is in progress: the queue is closed, already
    /// accepted requests are still being answered, and new submissions are
    /// refused. Front ends (e.g. `adv-net`'s listener) use this to refuse
    /// new connects instead of racing the queue close.
    Draining,
    /// The restart budget is exhausted; the queue is closed and every
    /// unanswered request has been failed. Terminal.
    Failed,
}

impl std::fmt::Display for EngineHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineHealth::Healthy => write!(f, "healthy"),
            EngineHealth::Degraded => write!(f, "degraded"),
            EngineHealth::Draining => write!(f, "draining"),
            EngineHealth::Failed => write!(f, "failed"),
        }
    }
}

/// How the supervisor handles worker deaths.
#[derive(Debug, Clone)]
pub struct RestartPolicy {
    /// Restarts tolerated within [`window`](Self::window) before the engine
    /// enters [`EngineHealth::Failed`] and stops.
    pub max_restarts: usize,
    /// Sliding window the restart budget applies to (also how long a
    /// restart keeps the engine reporting [`EngineHealth::Degraded`]).
    pub window: Duration,
    /// Backoff before the first respawn; doubles per restart currently in
    /// the window.
    pub backoff_base: Duration,
    /// Upper bound on the respawn backoff.
    pub backoff_max: Duration,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 8,
            window: Duration::from_secs(10),
            backoff_base: Duration::from_micros(500),
            backoff_max: Duration::from_millis(50),
        }
    }
}

impl RestartPolicy {
    /// Exponential backoff for a respawn with `prior` restarts already in
    /// the window, capped at [`backoff_max`](Self::backoff_max).
    pub fn backoff(&self, prior: usize) -> Duration {
        let shift = prior.min(16) as u32;
        self.backoff_base
            .saturating_mul(1u32 << shift)
            .min(self.backoff_max)
    }
}

/// Shared health flags, written by the supervisor and read by callers.
#[derive(Debug)]
pub(crate) struct HealthState {
    epoch: Instant,
    failed: AtomicBool,
    draining: AtomicBool,
    degraded_until_ns: AtomicU64,
}

impl HealthState {
    pub(crate) fn new() -> HealthState {
        HealthState {
            // lint-ok(gated-clocks): the epoch anchors the degradation
            // window and breaker probe timers — health timing is the
            // feature of this module.
            epoch: Instant::now(),
            failed: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            degraded_until_ns: AtomicU64::new(0),
        }
    }

    /// Nanoseconds since the engine started; the time base every health and
    /// breaker timestamp uses (fits u64 for ~584 years of uptime).
    pub(crate) fn now_ns(&self) -> u64 {
        // lint-ok(gated-clocks): see `new` — window timing is the feature.
        Instant::now().duration_since(self.epoch).as_nanos() as u64
    }

    /// Keeps the engine reporting `Degraded` for at least `window` from now.
    pub(crate) fn mark_degraded(&self, window: Duration) {
        let until = self.now_ns().saturating_add(window.as_nanos() as u64);
        self.degraded_until_ns.fetch_max(until, Ordering::Relaxed);
    }

    /// Marks the engine terminally failed.
    pub(crate) fn set_failed(&self) {
        // lint-ok(ordering-justified): one-way latch; readers that see it
        // late only report Degraded for one extra poll.
        self.failed.store(true, Ordering::Relaxed);
    }

    pub(crate) fn is_failed(&self) -> bool {
        // lint-ok(ordering-justified): see `set_failed` — one-way latch.
        self.failed.load(Ordering::Relaxed)
    }

    /// Marks a graceful drain as in progress. One-way: `Draining` is only
    /// superseded by `Failed`.
    pub(crate) fn set_draining(&self) {
        // lint-ok(ordering-justified): one-way latch; a reader that sees it
        // late submits one more request and gets ShuttingDown from the
        // closed queue — the same refusal, one hop later.
        self.draining.store(true, Ordering::Relaxed);
    }

    /// Folds the flags (plus the breaker's state) into one health value.
    pub(crate) fn health(&self, breaker_open: bool) -> EngineHealth {
        if self.is_failed() {
            return EngineHealth::Failed;
        }
        // lint-ok(ordering-justified): see `set_draining` — one-way latch.
        if self.draining.load(Ordering::Relaxed) {
            return EngineHealth::Draining;
        }
        let degraded_until = self.degraded_until_ns.load(Ordering::Relaxed);
        if breaker_open || self.now_ns() < degraded_until {
            EngineHealth::Degraded
        } else {
            EngineHealth::Healthy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_escalates_and_is_terminal_on_failure() {
        let h = HealthState::new();
        assert_eq!(h.health(false), EngineHealth::Healthy);
        h.mark_degraded(Duration::from_secs(60));
        assert_eq!(h.health(false), EngineHealth::Degraded);
        h.set_failed();
        assert_eq!(h.health(false), EngineHealth::Failed);
        // Failed wins over everything, forever.
        assert_eq!(h.health(true), EngineHealth::Failed);
    }

    #[test]
    fn degradation_window_expires() {
        let h = HealthState::new();
        h.mark_degraded(Duration::ZERO);
        // A zero window is already over by the next read.
        assert_eq!(h.health(false), EngineHealth::Healthy);
    }

    #[test]
    fn open_breaker_reports_degraded() {
        let h = HealthState::new();
        assert_eq!(h.health(true), EngineHealth::Degraded);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RestartPolicy {
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(6),
            ..RestartPolicy::default()
        };
        assert_eq!(p.backoff(0), Duration::from_millis(1));
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(6));
        assert_eq!(p.backoff(40), Duration::from_millis(6));
    }

    #[test]
    fn health_is_ordered_for_monotonicity_checks() {
        assert!(EngineHealth::Healthy < EngineHealth::Degraded);
        assert!(EngineHealth::Degraded < EngineHealth::Draining);
        assert!(EngineHealth::Draining < EngineHealth::Failed);
        assert_eq!(EngineHealth::Degraded.to_string(), "degraded");
        assert_eq!(EngineHealth::Draining.to_string(), "draining");
    }

    #[test]
    fn draining_overrides_degraded_but_not_failed() {
        let h = HealthState::new();
        h.mark_degraded(Duration::from_secs(60));
        h.set_draining();
        assert_eq!(h.health(false), EngineHealth::Draining);
        assert_eq!(h.health(true), EngineHealth::Draining);
        h.set_failed();
        assert_eq!(h.health(false), EngineHealth::Failed);
    }
}
