//! Variant routing: the seam between the network front door and whatever
//! serves requests behind it.
//!
//! A single [`ServeEngine`](crate::ServeEngine) hosts exactly one defense
//! pipeline. The model zoo (`adv-zoo`) hosts one engine shard per variant
//! behind an epoch-counted routing table. Both sit behind this trait so
//! `adv-net`'s listener, the probes, and the load generator are agnostic
//! to which one answers: every request carries a variant key, and the
//! router either admits it to that variant's shard or refuses it with
//! [`ServeError::VariantUnavailable`](crate::ServeError::VariantUnavailable).

use std::time::Duration;

use adv_tensor::Tensor;

use crate::{EngineHealth, MetricsSnapshot, PendingVerdict, RequestTag, Result, ServeEngine};

/// The variant id a plain single-pipeline engine serves, and the variant
/// untagged submissions are routed to.
pub const DEFAULT_VARIANT: u32 = 0;

/// One live entry in a router's routing table, as reported to ops clients
/// (the net `Welcome` frame carries exactly these fields per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteInfo {
    /// Variant id requests address.
    pub variant: u32,
    /// Version of the weight blob currently live for this variant
    /// (0 when the pipeline was installed directly, without a blob).
    pub version: u32,
    /// The serving shard's health, isolated per variant.
    pub health: EngineHealth,
}

/// Anything that can serve variant-keyed requests: a bare
/// [`ServeEngine`] (default variant only) or a multi-shard model zoo.
pub trait VariantRouter: Send + Sync + std::fmt::Debug {
    /// Submit `input` to the shard serving `variant`, with a request tag
    /// and a server-side deadline budget.
    ///
    /// # Errors
    ///
    /// [`ServeError::VariantUnavailable`](crate::ServeError::VariantUnavailable)
    /// when `variant` is not in the live routing table; otherwise as
    /// [`ServeEngine::submit_tagged_with_deadline`].
    fn submit_routed(
        &self,
        variant: u32,
        input: Tensor,
        tag: RequestTag,
        budget: Duration,
    ) -> Result<PendingVerdict>;

    /// Aggregate health across every live shard (the worst shard wins, so
    /// the front door drains when any route has begun draining).
    fn router_health(&self) -> EngineHealth;

    /// The live routing table: one entry per variant currently admitting
    /// traffic, sorted by variant id.
    fn routes(&self) -> Vec<RouteInfo>;

    /// The epoch of the current routing table. A bare engine is epoch 0
    /// forever; the zoo bumps the epoch on every atomic table flip.
    fn routing_epoch(&self) -> u64;

    /// Stop admitting new requests on every shard while answering what was
    /// already accepted.
    fn begin_drain(&self);

    /// Aggregate metrics for `variant`'s shard (including any retired
    /// predecessors of the live version), or `None` for unknown variants.
    fn variant_metrics(&self, variant: u32) -> Option<MetricsSnapshot>;
}

impl VariantRouter for ServeEngine {
    fn submit_routed(
        &self,
        variant: u32,
        input: Tensor,
        tag: RequestTag,
        budget: Duration,
    ) -> Result<PendingVerdict> {
        if variant != DEFAULT_VARIANT {
            return Err(crate::ServeError::VariantUnavailable(variant));
        }
        self.submit_tagged_with_deadline(input, tag.with_variant(variant), budget)
    }

    fn router_health(&self) -> EngineHealth {
        self.health()
    }

    fn routes(&self) -> Vec<RouteInfo> {
        vec![RouteInfo {
            variant: DEFAULT_VARIANT,
            version: 0,
            health: self.health(),
        }]
    }

    fn routing_epoch(&self) -> u64 {
        0
    }

    fn begin_drain(&self) {
        ServeEngine::begin_drain(self);
    }

    fn variant_metrics(&self, variant: u32) -> Option<MetricsSnapshot> {
        if variant == DEFAULT_VARIANT {
            Some(self.metrics())
        } else {
            None
        }
    }
}
