//! Serving metrics on the shared `adv-obs` registry: atomic counters on the
//! hot path, one fixed-bucket histogram sample per completed request.
//!
//! The engine owns a private [`Registry`] (so two engines in one process
//! never cross-count) and always records into it regardless of the global
//! `adv-obs` level — these counters back the engine's own
//! [`MetricsSnapshot`] API, they are not optional telemetry. Latency
//! percentiles come from the registry histogram's nearest-rank quantiles:
//! accurate to one power-of-two bucket, exact at the observed extremes.

use adv_obs::{Counter, Gauge, Histogram, Registry, Snapshot};
use std::sync::Arc;
use std::time::Duration;

/// Point-in-time view of the engine's counters, computed by
/// [`ServeMetrics::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted onto the queue.
    pub submitted: u64,
    /// Requests refused because the queue was full (backpressure).
    pub rejected: u64,
    /// Requests answered with a verdict.
    pub completed: u64,
    /// Requests answered with a pipeline error.
    pub failed: u64,
    /// Batches executed by the worker pool.
    pub batches: u64,
    /// Highest queue depth observed at submission time.
    pub max_queue_depth: u64,
    /// Mean executed batch size (`0.0` before the first batch).
    pub mean_batch_size: f64,
    /// Median submit-to-response latency (bucket-quantized; see module doc).
    pub p50_latency: Duration,
    /// 99th-percentile submit-to-response latency (bucket-quantized).
    pub p99_latency: Duration,
    /// Cumulative wall-clock time in detector scoring across all batches.
    pub detect_time: Duration,
    /// Cumulative wall-clock time in the reformer across all batches.
    pub reform_time: Duration,
    /// Cumulative wall-clock time in the classifier across all batches.
    pub classify_time: Duration,
    /// Requests shed because their server-side deadline expired in the
    /// queue (answered with [`crate::ServeError::Timeout`], never silently
    /// dropped).
    pub shed_expired: u64,
    /// Batch executions retried after a transient pipeline failure.
    pub batch_retries: u64,
    /// Worker panics caught by the supervision wrapper.
    pub worker_panics: u64,
    /// Workers respawned by the supervisor.
    pub worker_restarts: u64,
    /// Responses that could not be delivered because the caller dropped its
    /// [`crate::PendingVerdict`] receiver.
    pub responses_abandoned: u64,
    /// Responses served under a reduced defense scheme (breaker open).
    pub degraded_responses: u64,
    /// Circuit-breaker open (or further-degrade) transitions.
    pub breaker_opened: u64,
    /// Circuit-breaker close transitions (successful probes).
    pub breaker_closed: u64,
}

/// Shared counters updated by submitters and workers, living on a private
/// `adv-obs` [`Registry`].
#[derive(Debug)]
pub(crate) struct ServeMetrics {
    registry: Arc<Registry>,
    submitted: Arc<Counter>,
    rejected: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    batches: Arc<Counter>,
    max_queue_depth: Arc<Gauge>,
    latency: Arc<Histogram>,
    detect_ns: Arc<Counter>,
    reform_ns: Arc<Counter>,
    classify_ns: Arc<Counter>,
    shed_expired: Arc<Counter>,
    batch_retries: Arc<Counter>,
    worker_panics: Arc<Counter>,
    worker_restarts: Arc<Counter>,
    responses_abandoned: Arc<Counter>,
    degraded_responses: Arc<Counter>,
    breaker_opened: Arc<Counter>,
    breaker_closed: Arc<Counter>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        let registry = Arc::new(Registry::new());
        ServeMetrics {
            submitted: registry.counter("serve.submitted"),
            rejected: registry.counter("serve.rejected"),
            completed: registry.counter("serve.completed"),
            failed: registry.counter("serve.failed"),
            batches: registry.counter("serve.batches"),
            max_queue_depth: registry.gauge("serve.max_queue_depth"),
            latency: registry.histogram("serve.latency_ns"),
            detect_ns: registry.counter("serve.detect_ns"),
            reform_ns: registry.counter("serve.reform_ns"),
            classify_ns: registry.counter("serve.classify_ns"),
            shed_expired: registry.counter("serve.shed_expired"),
            batch_retries: registry.counter("serve.batch_retries"),
            worker_panics: registry.counter("serve.worker_panics"),
            worker_restarts: registry.counter("serve.worker_restarts"),
            responses_abandoned: registry.counter("serve.responses_abandoned"),
            degraded_responses: registry.counter("serve.degraded_responses"),
            breaker_opened: registry.counter("serve.breaker_opened"),
            breaker_closed: registry.counter("serve.breaker_closed"),
            registry,
        }
    }
}

impl ServeMetrics {
    /// Records an accepted request and the queue depth it observed.
    ///
    /// `queue_depth` is sampled at push time, *before* this metric update,
    /// so under concurrent submitters the recorded maximum can briefly lag
    /// the true instantaneous peak (submitter A pushes, B pushes and records
    /// depth 2, then A records depth 1). The `set_max` compare-and-swap
    /// keeps the gauge *monotone non-decreasing* regardless of that
    /// interleaving: a stale smaller sample can never overwrite a larger
    /// one, so the reported high-water mark is exact over the samples taken.
    pub fn record_submitted(&self, queue_depth: usize) {
        self.submitted.incr();
        self.max_queue_depth.set_max(queue_depth as f64);
    }

    pub fn record_rejected(&self) {
        self.rejected.incr();
    }

    pub fn record_batch(&self, detect: Duration, reform: Duration, classify: Duration) {
        self.batches.incr();
        self.detect_ns.add(detect.as_nanos() as u64);
        self.reform_ns.add(reform.as_nanos() as u64);
        self.classify_ns.add(classify.as_nanos() as u64);
    }

    pub fn record_completed(&self, latency: Duration) {
        self.completed.incr();
        self.latency.record_duration(latency);
    }

    pub fn record_failed(&self) {
        self.failed.incr();
    }

    /// Records a request answered with `Timeout` because its server-side
    /// deadline expired before a worker picked it up.
    pub fn record_shed_expired(&self) {
        self.shed_expired.incr();
    }

    pub fn record_batch_retry(&self) {
        self.batch_retries.incr();
    }

    pub fn record_worker_panic(&self) {
        self.worker_panics.incr();
    }

    pub fn record_worker_restart(&self) {
        self.worker_restarts.incr();
    }

    pub fn record_response_abandoned(&self) {
        self.responses_abandoned.incr();
    }

    pub fn record_degraded_response(&self) {
        self.degraded_responses.incr();
    }

    pub fn record_breaker_opened(&self) {
        self.breaker_opened.incr();
    }

    pub fn record_breaker_closed(&self) {
        self.breaker_closed.incr();
    }

    /// Raw `adv-obs` snapshot of the engine registry, for the Prometheus and
    /// JSON exporters.
    pub fn obs_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let completed = self.completed.get();
        let batches = self.batches.get();
        let latency = self.latency.snapshot();
        MetricsSnapshot {
            submitted: self.submitted.get(),
            rejected: self.rejected.get(),
            completed,
            failed: self.failed.get(),
            batches,
            max_queue_depth: self.max_queue_depth.get() as u64,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                completed as f64 / batches as f64
            },
            p50_latency: Duration::from_nanos(latency.quantile(0.50) as u64),
            p99_latency: Duration::from_nanos(latency.quantile(0.99) as u64),
            detect_time: Duration::from_nanos(self.detect_ns.get()),
            reform_time: Duration::from_nanos(self.reform_ns.get()),
            classify_time: Duration::from_nanos(self.classify_ns.get()),
            shed_expired: self.shed_expired.get(),
            batch_retries: self.batch_retries.get(),
            worker_panics: self.worker_panics.get(),
            worker_restarts: self.worker_restarts.get(),
            responses_abandoned: self.responses_abandoned.get(),
            degraded_responses: self.degraded_responses.get(),
            breaker_opened: self.breaker_opened.get(),
            breaker_closed: self.breaker_closed.get(),
        }
    }
}

/// Model check for the documented queue-depth race (see
/// [`ServeMetrics::record_submitted`]): the depth is sampled inside the
/// queue's critical section but recorded *outside* it, so a submitter can
/// record a stale (smaller) sample after a later, larger one. The check
/// drives real pushes through [`BoundedQueue`](crate::queue::BoundedQueue)
/// under perturbed schedules and asserts the gauge always lands on the
/// maximum of the sampled depths — i.e. the race can delay the high-water
/// mark but never lose it, which is exactly the "benign" claim in the doc.
#[cfg(all(loom, test))]
mod loom_checks {
    use super::*;
    use crate::queue::BoundedQueue;

    #[test]
    fn queue_depth_gauge_race_is_benign() {
        loom::model(|| {
            let queue = Arc::new(BoundedQueue::new(64));
            let metrics = Arc::new(ServeMetrics::default());
            let handles: Vec<_> = (0..3)
                .map(|producer| {
                    let queue = queue.clone();
                    let metrics = metrics.clone();
                    loom::thread::spawn(move || {
                        let mut sampled = Vec::new();
                        for i in 0..4u64 {
                            if let Ok(depth) = queue.try_push(producer * 10 + i) {
                                metrics.record_submitted(depth);
                                sampled.push(depth as u64);
                            }
                        }
                        sampled
                    })
                })
                .collect();
            let mut all_sampled = Vec::new();
            for handle in handles {
                all_sampled.extend(handle.join().expect("producer panicked"));
            }
            let snapshot = metrics.snapshot();
            let expected_max = all_sampled.iter().copied().max().unwrap_or(0);
            assert_eq!(
                snapshot.max_queue_depth, expected_max,
                "a stale depth sample overwrote a larger one (sampled {all_sampled:?})"
            );
            assert_eq!(snapshot.submitted, all_sampled.len() as u64);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_aggregates_counters() {
        let m = ServeMetrics::default();
        m.record_submitted(3);
        m.record_submitted(5);
        m.record_rejected();
        m.record_batch(
            Duration::from_nanos(10),
            Duration::from_nanos(20),
            Duration::from_nanos(30),
        );
        m.record_completed(Duration::from_micros(7));
        m.record_completed(Duration::from_micros(9));
        let s = m.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.completed, 2);
        assert_eq!(s.batches, 1);
        assert_eq!(s.max_queue_depth, 5);
        assert_eq!(s.mean_batch_size, 2.0);
        assert_eq!(s.detect_time, Duration::from_nanos(10));
        // Histogram quantiles are bucket-quantized: p50 lands inside the
        // sample range (within one 2× bucket of the true median), p99 clamps
        // to the observed maximum exactly.
        assert!(
            s.p50_latency >= Duration::from_micros(7) && s.p50_latency <= Duration::from_micros(9),
            "p50 {:?}",
            s.p50_latency
        );
        assert_eq!(s.p99_latency, Duration::from_micros(9));
    }

    #[test]
    fn fault_tolerance_counters_flow_into_the_snapshot() {
        let m = ServeMetrics::default();
        m.record_shed_expired();
        m.record_batch_retry();
        m.record_batch_retry();
        m.record_worker_panic();
        m.record_worker_restart();
        m.record_response_abandoned();
        m.record_degraded_response();
        m.record_breaker_opened();
        m.record_breaker_closed();
        let s = m.snapshot();
        assert_eq!(s.shed_expired, 1);
        assert_eq!(s.batch_retries, 2);
        assert_eq!(s.worker_panics, 1);
        assert_eq!(s.worker_restarts, 1);
        assert_eq!(s.responses_abandoned, 1);
        assert_eq!(s.degraded_responses, 1);
        assert_eq!(s.breaker_opened, 1);
        assert_eq!(s.breaker_closed, 1);
        let prom = m.obs_snapshot().to_prometheus();
        assert!(prom.contains("serve_worker_panics 1"), "{prom}");
        assert!(prom.contains("serve_breaker_opened 1"), "{prom}");
    }

    #[test]
    fn empty_metrics_report_zero_latencies() {
        let s = ServeMetrics::default().snapshot();
        assert_eq!(s.p50_latency, Duration::ZERO);
        assert_eq!(s.p99_latency, Duration::ZERO);
        assert_eq!(s.mean_batch_size, 0.0);
    }

    #[test]
    fn max_queue_depth_is_monotone_under_concurrent_submitters() {
        let m = Arc::new(ServeMetrics::default());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    // Interleaved rising and falling depth samples; the max
                    // must come out exact whatever the schedule.
                    for depth in 0..1000usize {
                        m.record_submitted(if t % 2 == 0 { depth } else { 999 - depth });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = m.snapshot();
        assert_eq!(s.submitted, 8000);
        assert_eq!(s.max_queue_depth, 999);
    }

    #[test]
    fn obs_snapshot_exports_engine_metrics() {
        let m = ServeMetrics::default();
        m.record_submitted(1);
        m.record_completed(Duration::from_micros(5));
        let snap = m.obs_snapshot();
        assert_eq!(snap.counter("serve.submitted"), Some(1));
        assert_eq!(snap.histogram("serve.latency_ns").unwrap().count, 1);
        let prom = snap.to_prometheus();
        assert!(prom.contains("serve_submitted 1"), "{prom}");
        assert!(prom.contains("serve_latency_ns_bucket"), "{prom}");
    }
}
