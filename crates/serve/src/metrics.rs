//! Lock-light serving metrics: atomic counters on the hot path, one mutex
//! touch per completed request to record its latency sample.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Point-in-time view of the engine's counters, computed by
/// [`ServeMetrics::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted onto the queue.
    pub submitted: u64,
    /// Requests refused because the queue was full (backpressure).
    pub rejected: u64,
    /// Requests answered with a verdict.
    pub completed: u64,
    /// Requests answered with a pipeline error.
    pub failed: u64,
    /// Batches executed by the worker pool.
    pub batches: u64,
    /// Highest queue depth observed at submission time.
    pub max_queue_depth: u64,
    /// Mean executed batch size (`0.0` before the first batch).
    pub mean_batch_size: f64,
    /// Median submit-to-response latency.
    pub p50_latency: Duration,
    /// 99th-percentile submit-to-response latency.
    pub p99_latency: Duration,
    /// Cumulative wall-clock time in detector scoring across all batches.
    pub detect_time: Duration,
    /// Cumulative wall-clock time in the reformer across all batches.
    pub reform_time: Duration,
    /// Cumulative wall-clock time in the classifier across all batches.
    pub classify_time: Duration,
}

/// Shared counters updated by submitters and workers.
#[derive(Debug, Default)]
pub(crate) struct ServeMetrics {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    max_queue_depth: AtomicU64,
    detect_ns: AtomicU64,
    reform_ns: AtomicU64,
    classify_ns: AtomicU64,
    latencies_ns: Mutex<Vec<u64>>,
}

impl ServeMetrics {
    pub fn record_submitted(&self, queue_depth: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.max_queue_depth
            .fetch_max(queue_depth as u64, Ordering::Relaxed);
    }

    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_batch(&self, detect: Duration, reform: Duration, classify: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.detect_ns
            .fetch_add(detect.as_nanos() as u64, Ordering::Relaxed);
        self.reform_ns
            .fetch_add(reform.as_nanos() as u64, Ordering::Relaxed);
        self.classify_ns
            .fetch_add(classify.as_nanos() as u64, Ordering::Relaxed);
    }

    pub fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latencies_ns
            .lock()
            .expect("metrics poisoned")
            .push(latency.as_nanos() as u64);
    }

    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut lat = self.latencies_ns.lock().expect("metrics poisoned").clone();
        lat.sort_unstable();
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            batches,
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                completed as f64 / batches as f64
            },
            p50_latency: quantile(&lat, 0.50),
            p99_latency: quantile(&lat, 0.99),
            detect_time: Duration::from_nanos(self.detect_ns.load(Ordering::Relaxed)),
            reform_time: Duration::from_nanos(self.reform_ns.load(Ordering::Relaxed)),
            classify_time: Duration::from_nanos(self.classify_ns.load(Ordering::Relaxed)),
        }
    }
}

/// Nearest-rank quantile (`⌈q·N⌉`-th order statistic) of an ascending-sorted
/// sample; zero when empty.
pub(crate) fn quantile(sorted_ns: &[u64], q: f64) -> Duration {
    if sorted_ns.is_empty() {
        return Duration::ZERO;
    }
    let rank = (q * sorted_ns.len() as f64).ceil() as usize;
    let idx = rank.clamp(1, sorted_ns.len()) - 1;
    Duration::from_nanos(sorted_ns[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_sample() {
        let ns: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&ns, 0.50), Duration::from_nanos(50));
        assert_eq!(quantile(&ns, 0.99), Duration::from_nanos(99));
        assert_eq!(quantile(&[], 0.5), Duration::ZERO);
    }

    #[test]
    fn snapshot_aggregates_counters() {
        let m = ServeMetrics::default();
        m.record_submitted(3);
        m.record_submitted(5);
        m.record_rejected();
        m.record_batch(
            Duration::from_nanos(10),
            Duration::from_nanos(20),
            Duration::from_nanos(30),
        );
        m.record_completed(Duration::from_micros(7));
        m.record_completed(Duration::from_micros(9));
        let s = m.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.completed, 2);
        assert_eq!(s.batches, 1);
        assert_eq!(s.max_queue_depth, 5);
        assert_eq!(s.mean_batch_size, 2.0);
        assert_eq!(s.detect_time, Duration::from_nanos(10));
        assert_eq!(s.p50_latency, Duration::from_micros(7));
        assert_eq!(s.p99_latency, Duration::from_micros(9));
    }
}
