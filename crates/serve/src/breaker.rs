//! Failure-rate circuit breaker with graceful degradation.
//!
//! When a worker sees `failure_threshold` consecutive pipeline failures the
//! breaker opens and the engine falls back one step down the
//! [`DefenseScheme::fallback`] ladder (`Full → DetectorOnly → None`,
//! `ReformerOnly → None`), stamping every response served under the reduced
//! scheme as degraded. While open, one worker is periodically elected (by
//! CAS, so exactly one probe is in flight) to run a batch under the
//! original scheme; a successful probe closes the breaker and restores the
//! configured scheme, a failed probe re-arms the probe timer.
//!
//! The breaker is atomics-only: workers consult it per batch group without
//! taking any lock, and races merely mean a worker serves one more batch
//! under the previous scheme — never a lost or duplicated response.

use adv_magnet::DefenseScheme;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

/// How the engine degrades when the pipeline keeps failing.
#[derive(Debug, Clone)]
pub struct DegradePolicy {
    /// Master switch; disabled means failures never change the scheme.
    pub enabled: bool,
    /// Consecutive batch failures that open the breaker (and, while it is
    /// already open, degrade one further ladder step).
    pub failure_threshold: u32,
    /// How long the breaker stays open before probing the original scheme
    /// again.
    pub probe_interval: Duration,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy {
            enabled: true,
            failure_threshold: 8,
            probe_interval: Duration::from_millis(250),
        }
    }
}

const CLOSED: u8 = 0;
const OPEN: u8 = 1;
const PROBING: u8 = 2;

/// How a batch relates to the breaker: ordinary traffic, or the elected
/// probe of the original scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BatchRole {
    Normal,
    Probe,
}

/// A state transition the engine should count and trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BreakerEvent {
    /// The breaker opened (or degraded one more step) — traffic now runs
    /// under `to`.
    Opened { to: DefenseScheme },
    /// A probe succeeded; the configured scheme is restored.
    Closed,
}

fn encode(scheme: DefenseScheme) -> u8 {
    match scheme {
        DefenseScheme::None => 0,
        DefenseScheme::DetectorOnly => 1,
        DefenseScheme::ReformerOnly => 2,
        DefenseScheme::Full => 3,
    }
}

fn decode(value: u8) -> DefenseScheme {
    match value {
        1 => DefenseScheme::DetectorOnly,
        2 => DefenseScheme::ReformerOnly,
        3 => DefenseScheme::Full,
        _ => DefenseScheme::None,
    }
}

#[derive(Debug)]
pub(crate) struct Breaker {
    policy: DegradePolicy,
    base: DefenseScheme,
    state: AtomicU8,
    /// Scheme served while the breaker is not closed (encoded).
    active: AtomicU8,
    failures: AtomicU32,
    opened_at_ns: AtomicU64,
}

impl Breaker {
    pub(crate) fn new(base: DefenseScheme, policy: DegradePolicy) -> Breaker {
        Breaker {
            policy,
            base,
            state: AtomicU8::new(CLOSED),
            active: AtomicU8::new(encode(base)),
            failures: AtomicU32::new(0),
            opened_at_ns: AtomicU64::new(0),
        }
    }

    pub(crate) fn is_open(&self) -> bool {
        // lint-ok(ordering-justified): advisory read for health reporting;
        // the breaker state machine itself tolerates stale observers (they
        // serve one batch under the previous scheme).
        self.policy.enabled && self.state.load(Ordering::Relaxed) != CLOSED
    }

    /// Scheme to run the next batch group under, plus whether this batch is
    /// the elected probe of the original scheme.
    pub(crate) fn scheme_for_batch(&self, now_ns: u64) -> (DefenseScheme, BatchRole) {
        if !self.policy.enabled {
            return (self.base, BatchRole::Normal);
        }
        // lint-ok(ordering-justified): no data is published through the
        // state word — schemes are self-contained u8s and a stale read only
        // delays the scheme switch by one batch.
        match self.state.load(Ordering::Relaxed) {
            CLOSED => (self.base, BatchRole::Normal),
            OPEN => {
                // lint-ok(ordering-justified): probe timer; staleness just
                // postpones the probe by one batch.
                let opened = self.opened_at_ns.load(Ordering::Relaxed);
                let due =
                    now_ns.saturating_sub(opened) >= self.policy.probe_interval.as_nanos() as u64;
                // The CAS elects exactly one prober; losers keep serving
                // the degraded scheme.
                // lint-ok(ordering-justified): the CAS only needs to be
                // atomic — the elected prober reads no data written by
                // other threads through this word.
                if due
                    && self
                        .state
                        .compare_exchange(OPEN, PROBING, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    return (self.base, BatchRole::Probe);
                }
                // lint-ok(ordering-justified): see state.load above.
                (
                    decode(self.active.load(Ordering::Relaxed)),
                    BatchRole::Normal,
                )
            }
            // lint-ok(ordering-justified): see state.load above.
            _ => (
                decode(self.active.load(Ordering::Relaxed)),
                BatchRole::Normal,
            ),
        }
    }

    /// Records a successful batch; a successful probe closes the breaker.
    pub(crate) fn on_success(&self, role: BatchRole) -> Option<BreakerEvent> {
        if !self.policy.enabled {
            return None;
        }
        // lint-ok(ordering-justified): consecutive-failure counter; resets
        // racing with increments bias toward staying closed, which is the
        // safe direction.
        self.failures.store(0, Ordering::Relaxed);
        if role == BatchRole::Probe {
            // lint-ok(ordering-justified): scheme word is self-contained;
            // only the one elected prober restores it before closing.
            self.active.store(encode(self.base), Ordering::Relaxed);
            // lint-ok(ordering-justified): single-word state transition by
            // the one elected prober; observers only need atomicity.
            self.state.store(CLOSED, Ordering::Relaxed);
            return Some(BreakerEvent::Closed);
        }
        None
    }

    /// Records a failed batch; crossing the threshold opens (or further
    /// degrades) the breaker, a failed probe re-arms the probe timer.
    pub(crate) fn on_failure(&self, role: BatchRole, now_ns: u64) -> Option<BreakerEvent> {
        if !self.policy.enabled {
            return None;
        }
        if role == BatchRole::Probe {
            // lint-ok(ordering-justified): probe timer restart + state
            // hand-back by the one elected prober; atomicity suffices.
            self.opened_at_ns.store(now_ns, Ordering::Relaxed);
            // lint-ok(ordering-justified): same hand-back — the elected
            // prober alone re-opens; word atomicity is all observers need.
            self.state.store(OPEN, Ordering::Relaxed);
            return None;
        }
        // lint-ok(ordering-justified): consecutive-failure counter — an
        // off-by-a-few under racing workers shifts *when* the breaker
        // opens, never whether responses are delivered.
        let seen = self
            .failures
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_add(1);
        if seen < self.policy.failure_threshold {
            return None;
        }
        // lint-ok(ordering-justified): see the counter comment above.
        self.failures.store(0, Ordering::Relaxed);
        // lint-ok(ordering-justified): scheme words are self-contained.
        let state = self.state.load(Ordering::Relaxed);
        let from = if state == CLOSED {
            self.base
        } else {
            // lint-ok(ordering-justified): see above.
            decode(self.active.load(Ordering::Relaxed))
        };
        let to = from.fallback();
        if state != CLOSED && to == from {
            // Already at the bottom of the ladder; stay open.
            return None;
        }
        // Publish the new scheme and timer before flipping the state so a
        // prober elected right after sees a coherent `opened_at`; with
        // Relaxed stores another worker could briefly see the old scheme,
        // which only delays the switch by one batch.
        // lint-ok(ordering-justified): see above — self-contained words.
        self.active.store(encode(to), Ordering::Relaxed);
        // lint-ok(ordering-justified): probe timer word.
        self.opened_at_ns.store(now_ns, Ordering::Relaxed);
        // lint-ok(ordering-justified): single-word state flip.
        self.state.store(OPEN, Ordering::Relaxed);
        Some(BreakerEvent::Opened { to })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(threshold: u32) -> DegradePolicy {
        DegradePolicy {
            enabled: true,
            failure_threshold: threshold,
            probe_interval: Duration::from_millis(5),
        }
    }

    #[test]
    fn schemes_roundtrip_through_the_encoding() {
        for scheme in DefenseScheme::ALL {
            assert_eq!(decode(encode(scheme)), scheme);
        }
    }

    #[test]
    fn opens_after_threshold_and_degrades_one_step() {
        let b = Breaker::new(DefenseScheme::Full, policy(3));
        assert_eq!(b.on_failure(BatchRole::Normal, 0), None);
        assert_eq!(b.on_failure(BatchRole::Normal, 0), None);
        assert_eq!(
            b.on_failure(BatchRole::Normal, 0),
            Some(BreakerEvent::Opened {
                to: DefenseScheme::DetectorOnly
            })
        );
        assert!(b.is_open());
        assert_eq!(
            b.scheme_for_batch(0),
            (DefenseScheme::DetectorOnly, BatchRole::Normal)
        );
    }

    #[test]
    fn success_resets_the_consecutive_failure_count() {
        let b = Breaker::new(DefenseScheme::Full, policy(2));
        assert_eq!(b.on_failure(BatchRole::Normal, 0), None);
        assert_eq!(b.on_success(BatchRole::Normal), None);
        assert_eq!(b.on_failure(BatchRole::Normal, 0), None);
        assert!(!b.is_open());
    }

    #[test]
    fn keeps_degrading_down_the_ladder_then_stays_open() {
        let b = Breaker::new(DefenseScheme::Full, policy(1));
        assert_eq!(
            b.on_failure(BatchRole::Normal, 0),
            Some(BreakerEvent::Opened {
                to: DefenseScheme::DetectorOnly
            })
        );
        assert_eq!(
            b.on_failure(BatchRole::Normal, 0),
            Some(BreakerEvent::Opened {
                to: DefenseScheme::None
            })
        );
        // Bottom of the ladder: stays open, no further event.
        assert_eq!(b.on_failure(BatchRole::Normal, 0), None);
        assert!(b.is_open());
    }

    #[test]
    fn probe_is_elected_once_and_closes_on_success() {
        let b = Breaker::new(DefenseScheme::Full, policy(1));
        b.on_failure(BatchRole::Normal, 0);
        let probe_due = Duration::from_millis(5).as_nanos() as u64;
        // Before the interval: no probe, degraded scheme.
        assert_eq!(
            b.scheme_for_batch(probe_due - 1),
            (DefenseScheme::DetectorOnly, BatchRole::Normal)
        );
        // At the interval: exactly one caller wins the probe.
        assert_eq!(
            b.scheme_for_batch(probe_due),
            (DefenseScheme::Full, BatchRole::Probe)
        );
        assert_eq!(
            b.scheme_for_batch(probe_due),
            (DefenseScheme::DetectorOnly, BatchRole::Normal)
        );
        // The probe succeeds: breaker closes, base scheme restored.
        assert_eq!(b.on_success(BatchRole::Probe), Some(BreakerEvent::Closed));
        assert!(!b.is_open());
        assert_eq!(
            b.scheme_for_batch(probe_due),
            (DefenseScheme::Full, BatchRole::Normal)
        );
    }

    #[test]
    fn failed_probe_rearms_the_timer() {
        let b = Breaker::new(DefenseScheme::Full, policy(1));
        b.on_failure(BatchRole::Normal, 0);
        let probe_due = Duration::from_millis(5).as_nanos() as u64;
        assert_eq!(b.scheme_for_batch(probe_due).1, BatchRole::Probe);
        assert_eq!(b.on_failure(BatchRole::Probe, probe_due), None);
        assert!(b.is_open());
        // Timer restarted from the failed probe: no new probe until another
        // full interval passes.
        assert_eq!(b.scheme_for_batch(probe_due + 1).1, BatchRole::Normal);
        assert_eq!(b.scheme_for_batch(2 * probe_due).1, BatchRole::Probe);
    }

    #[test]
    fn disabled_policy_is_inert() {
        let b = Breaker::new(
            DefenseScheme::Full,
            DegradePolicy {
                enabled: false,
                ..DegradePolicy::default()
            },
        );
        for _ in 0..64 {
            assert_eq!(b.on_failure(BatchRole::Normal, 0), None);
        }
        assert!(!b.is_open());
        assert_eq!(
            b.scheme_for_batch(u64::MAX),
            (DefenseScheme::Full, BatchRole::Normal)
        );
    }
}
