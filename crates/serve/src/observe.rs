//! Response observation: a per-request tap the engine calls after every
//! served verdict.
//!
//! The engine itself keeps only aggregate counters; an observer (e.g.
//! `adv-telemetry`'s recorder) receives one [`ServedRecord`] per request
//! and owns whatever durable recording happens next. The contract is
//! strictly fire-and-forget: `on_response` runs on the worker thread
//! between batches, so implementations must never block — hand the record
//! to a bounded channel and drop it when the channel is full.

use adv_magnet::{DefenseScheme, Verdict};

/// Caller-supplied identity of a request: which tenant and route submitted
/// it, which corpus sample it carries, and which defense variant served
/// it. The engine never interprets these — they ride along to the observer
/// so recorded traffic can be filtered and replayed (including per-variant
/// A/B replay). Untagged submissions carry all zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestTag {
    /// Tenant key of the submitting client.
    pub tenant: u32,
    /// Route key (endpoint / corpus the input came from).
    pub route: u32,
    /// Sample id, resolvable back to the input at replay time.
    pub sample: u32,
    /// Defense variant the request was routed to (`DEFAULT_VARIANT` for a
    /// single-pipeline engine).
    pub variant: u32,
}

impl RequestTag {
    /// A tag with the three caller keys set and the default variant.
    pub fn new(tenant: u32, route: u32, sample: u32) -> RequestTag {
        RequestTag {
            tenant,
            route,
            sample,
            variant: crate::router::DEFAULT_VARIANT,
        }
    }

    /// The same tag routed to `variant`.
    pub fn with_variant(mut self, variant: u32) -> RequestTag {
        self.variant = variant;
        self
    }
}

/// Everything the engine knows about one served request at response time.
#[derive(Debug, Clone, Copy)]
pub struct ServedRecord<'a> {
    /// The tag the submitter attached (zeros when untagged).
    pub tag: RequestTag,
    /// The pipeline's decision.
    pub verdict: Verdict,
    /// Scheme the batch actually ran under (after any breaker fallback).
    pub scheme: DefenseScheme,
    /// `true` when the breaker had degraded the configured scheme.
    pub degraded: bool,
    /// Time the request waited in the queue, nanoseconds.
    pub queue_ns: u64,
    /// Pipeline execution time of the request's batch, nanoseconds.
    pub infer_ns: u64,
    /// Response timestamp on the engine's monotonic `now_ns` time base.
    pub tick_ns: u64,
    /// The request's causal trace id (`adv_profile::TraceId` raw value; 0
    /// when profiling is off). Joins telemetry rows with span trees.
    pub trace_id: u64,
    /// Per-detector anomaly scores for this input, in the defense's
    /// detector order. Empty when the pipeline does not expose scores.
    // lint-ok(no-panic-lib): slice *type* in a field declaration, not an index expression.
    pub scores: &'a [f32],
}

/// A per-response tap. Implementations must be non-blocking; see the
/// module docs.
pub trait ResponseObserver: Send + Sync + std::fmt::Debug {
    /// Called once per served request, on the worker thread that ran the
    /// batch. Requests that error (queue rejection, panic, timeout) are
    /// not observed.
    fn on_response(&self, record: &ServedRecord<'_>);
}
