//! Per-file analysis model: scrubbed lines, test-region map, and
//! `// lint-ok(<rule>): <reason>` allowlist attachment.

use crate::lexer::{is_ident_char, scrub, Comment};
use crate::LintError;
use std::path::{Path, PathBuf};

/// How a file participates in its crate's build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Part of the library target (`src/**`, minus bins).
    Lib,
    /// A binary target (`src/main.rs`, `src/bin/**`).
    Bin,
    /// A Criterion bench target (`benches/**`).
    Bench,
    /// An example target (`examples/**`).
    Example,
}

impl FileKind {
    /// `true` for process-entry targets (bins, benches, examples): code
    /// that owns its process, where aborting with a *message* is the error
    /// strategy but a bare `.unwrap()` still hides the invariant.
    pub fn is_entrypoint(self) -> bool {
        matches!(self, FileKind::Bin | FileKind::Bench | FileKind::Example)
    }
}

/// One `lint-ok` allowlist entry attached to a code line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule id being allowed.
    pub rule: String,
    /// The justification after the colon (always non-empty; entries with an
    /// empty reason are reported as findings instead of honored).
    pub reason: String,
    /// 1-based line of the comment itself.
    pub comment_line: usize,
}

/// A source file prepared for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Path relative to the lint root, with `/` separators (for reports).
    pub rel: String,
    /// Build role of the file.
    pub kind: FileKind,
    /// Original source lines (for diagnostics snippets).
    pub lines: Vec<String>,
    /// Scrubbed lines: comments and literal bodies blanked (for matching).
    pub code: Vec<String>,
    /// `is_test[i]` is true when 0-based line `i` is inside `#[cfg(test)]`
    /// / `#[test]` / `#[bench]` scope.
    pub is_test: Vec<bool>,
    /// Allowlist entries per 0-based line.
    pub allows: Vec<Vec<Allow>>,
    /// `lint-ok` comments with an empty reason (reported, never honored).
    pub malformed_allows: Vec<usize>,
    /// Every comment with its 1-based start line, in source order (the
    /// symbol table reads `// SAFETY:` contracts out of these).
    pub comments: Vec<Comment>,
}

impl SourceFile {
    /// Loads and prepares `path` for linting.
    ///
    /// # Errors
    ///
    /// Returns [`LintError::Io`] when the file cannot be read.
    pub fn load(path: &Path, rel: String, kind: FileKind) -> Result<SourceFile, LintError> {
        let src = std::fs::read_to_string(path).map_err(|e| LintError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Ok(SourceFile::from_source(path.to_path_buf(), rel, kind, &src))
    }

    /// Builds the model from in-memory source (used by unit tests).
    pub fn from_source(path: PathBuf, rel: String, kind: FileKind, src: &str) -> SourceFile {
        let scrubbed = scrub(src);
        let lines: Vec<String> = src.lines().map(str::to_string).collect();
        let code: Vec<String> = scrubbed.code.lines().map(str::to_string).collect();
        let is_test = mark_test_regions(&code);
        let (allows, malformed_allows) = attach_allows(&scrubbed.comments, &code);
        SourceFile {
            path,
            rel,
            kind,
            lines,
            code,
            is_test,
            allows,
            malformed_allows,
            comments: scrubbed.comments,
        }
    }

    /// Looks up the allow entry for `rule` on 1-based line `line`, if any.
    pub fn allow_for(&self, line: usize, rule: &str) -> Option<&Allow> {
        self.allows
            .get(line.checked_sub(1)?)?
            .iter()
            .find(|a| a.rule == rule)
    }

    /// `true` when 1-based `line` is inside test-only code.
    pub fn is_test_line(&self, line: usize) -> bool {
        line.checked_sub(1)
            .and_then(|i| self.is_test.get(i).copied())
            .unwrap_or(false)
    }
}

/// Marks every line covered by a `#[cfg(test)]`-gated item, `#[test]` fn or
/// `#[bench]` fn. Detection is brace-based over scrubbed code: from the
/// attribute, scan to the item's opening `{` (or a `;` for an out-of-line
/// `mod tests;`, which marks only that line) and take the matching-brace
/// extent.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let joined = code.join("\n");
    let chars: Vec<char> = joined.chars().collect();
    let mut is_test = vec![false; code.len()];

    // Byte-ish offsets of line starts in `joined` (char offsets, really).
    let mut line_of = vec![0usize; chars.len() + 1];
    {
        let mut line = 0usize;
        for (i, &c) in chars.iter().enumerate() {
            line_of[i] = line;
            if c == '\n' {
                line += 1;
            }
        }
        line_of[chars.len()] = line;
    }

    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] != '#' {
            i += 1;
            continue;
        }
        // `#[ ... ]` — capture the attribute content.
        let mut j = i + 1;
        while j < chars.len() && chars[j].is_whitespace() {
            j += 1;
        }
        if chars.get(j) != Some(&'[') {
            i += 1;
            continue;
        }
        let attr_start = j + 1;
        let mut depth = 1i32;
        let mut k = attr_start;
        while k < chars.len() && depth > 0 {
            match chars[k] {
                '[' => depth += 1,
                ']' => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        let attr: String = chars[attr_start..k.saturating_sub(1)].iter().collect();
        if !is_test_attr(&attr) {
            i = k;
            continue;
        }
        // Scan past any further attributes to the item body.
        let mut p = k;
        loop {
            while p < chars.len() && chars[p].is_whitespace() {
                p += 1;
            }
            if chars.get(p) == Some(&'#') {
                // Another attribute; skip it.
                let mut q = p + 1;
                while q < chars.len() && chars[q].is_whitespace() {
                    q += 1;
                }
                if chars.get(q) == Some(&'[') {
                    let mut d = 1i32;
                    let mut r = q + 1;
                    while r < chars.len() && d > 0 {
                        match chars[r] {
                            '[' => d += 1,
                            ']' => d -= 1,
                            _ => {}
                        }
                        r += 1;
                    }
                    p = r;
                    continue;
                }
            }
            break;
        }
        // Find the item's `{` or a terminating `;` first.
        let mut open = None;
        let mut q = p;
        while q < chars.len() {
            match chars[q] {
                '{' => {
                    open = Some(q);
                    break;
                }
                ';' => break,
                _ => {}
            }
            q += 1;
        }
        let end = match open {
            Some(open) => {
                let mut d = 1i32;
                let mut r = open + 1;
                while r < chars.len() && d > 0 {
                    match chars[r] {
                        '{' => d += 1,
                        '}' => d -= 1,
                        _ => {}
                    }
                    r += 1;
                }
                r
            }
            None => q.min(chars.len()),
        };
        let first = line_of[i.min(chars.len())];
        let last = line_of[end.min(chars.len())];
        for flag in is_test
            .iter_mut()
            .take((last + 1).min(code.len()))
            .skip(first)
        {
            *flag = true;
        }
        i = end.max(i + 1);
    }
    is_test
}

/// `true` for attributes that gate test-only code: `test`, `bench`,
/// `cfg(...)` whose condition mentions `test` as a token outside `not(..)`.
fn is_test_attr(attr: &str) -> bool {
    let attr = attr.trim();
    if attr == "test" || attr == "bench" || attr.starts_with("test(") {
        return true;
    }
    let Some(rest) = attr.strip_prefix("cfg") else {
        return false;
    };
    let rest = rest.trim_start();
    let Some(cond) = rest.strip_prefix('(') else {
        return false;
    };
    // Drop everything inside `not(...)` groups, then look for a standalone
    // `test` token in what remains.
    let mut cleaned = String::new();
    let chars: Vec<char> = cond.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == 'n' && cond[i..].starts_with("not") {
            let mut j = i + 3;
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            if chars.get(j) == Some(&'(') {
                let mut d = 1i32;
                let mut r = j + 1;
                while r < chars.len() && d > 0 {
                    match chars[r] {
                        '(' => d += 1,
                        ')' => d -= 1,
                        _ => {}
                    }
                    r += 1;
                }
                i = r;
                continue;
            }
        }
        cleaned.push(chars[i]);
        i += 1;
    }
    contains_word(&cleaned, "test")
}

/// Word-boundary substring search over identifier characters.
pub fn contains_word(hay: &str, word: &str) -> bool {
    let hay: Vec<char> = hay.chars().collect();
    let needle: Vec<char> = word.chars().collect();
    if needle.is_empty() || hay.len() < needle.len() {
        return false;
    }
    for start in 0..=hay.len() - needle.len() {
        if hay[start..start + needle.len()] != needle[..] {
            continue;
        }
        let before_ok = start == 0 || !is_ident_char(hay[start - 1]);
        let after = start + needle.len();
        let after_ok = after >= hay.len() || !is_ident_char(hay[after]);
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// Parses `lint-ok(<rule>): <reason>` occurrences out of `text`. Doc
/// comments (`///`, `//!`, `/**`, `/*!`) never carry allows — they document
/// the syntax, they don't use it. Rule ids are restricted to
/// `[a-z0-9-]`, so placeholder spellings like `lint-ok(<rule>)` in prose
/// are ignored rather than reported.
fn parse_lint_ok(text: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    if text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
    {
        return out;
    }
    let mut rest = text;
    while let Some(pos) = rest.find("lint-ok(") {
        rest = &rest[pos + "lint-ok(".len()..];
        let Some(close) = rest.find(')') else { break };
        let rule = rest[..close].trim().to_string();
        if !rule
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        {
            rest = &rest[close + 1..];
            continue;
        }
        rest = &rest[close + 1..];
        let reason = match rest.strip_prefix(':') {
            Some(r) => {
                // Reason runs to the end of the comment or the next
                // `lint-ok(` marker (stacked allows in one comment).
                let end = r.find("lint-ok(").unwrap_or(r.len());
                r[..end].trim().trim_end_matches(';').trim().to_string()
            }
            None => String::new(),
        };
        if !rule.is_empty() {
            out.push((rule, reason));
        }
    }
    out
}

/// Attaches each `lint-ok` comment to the code lines it governs: the same
/// line for trailing comments; for own-line comments, the following
/// *statement* — from the next non-blank code line through the first line
/// whose code ends in `;`, `{` or `}` — so one comment covers a multi-line
/// expression (a `fetch_update` chain, a builder pipeline) the way an
/// attribute-style allow scopes to the statement under it.
fn attach_allows(comments: &[Comment], code: &[String]) -> (Vec<Vec<Allow>>, Vec<usize>) {
    let mut allows: Vec<Vec<Allow>> = vec![Vec::new(); code.len()];
    let mut malformed = Vec::new();
    for comment in comments {
        let entries = parse_lint_ok(&comment.text);
        if entries.is_empty() {
            continue;
        }
        let idx = comment.line - 1;
        let own_line_code = code.get(idx).map(|l| !l.trim().is_empty()).unwrap_or(false);
        let targets: Vec<usize> = if own_line_code {
            vec![idx]
        } else {
            statement_extent(code, idx + 1)
        };
        for (rule, reason) in entries {
            if reason.is_empty() {
                malformed.push(comment.line);
                continue;
            }
            for &t in &targets {
                allows[t].push(Allow {
                    rule: rule.clone(),
                    reason: reason.clone(),
                    comment_line: comment.line,
                });
            }
        }
    }
    (allows, malformed)
}

/// The 0-based line indices of the statement starting at or after `from`:
/// the first non-blank code line, then every following line until (and
/// including) one whose trimmed code ends in `;`, `{` or `}`.
fn statement_extent(code: &[String], from: usize) -> Vec<usize> {
    let Some(start) = (from..code.len()).find(|&i| !code[i].trim().is_empty()) else {
        return Vec::new();
    };
    let mut extent = Vec::new();
    for (i, line) in code.iter().enumerate().skip(start) {
        let trimmed = line.trim_end();
        if trimmed.is_empty() && i > start {
            break;
        }
        extent.push(i);
        if trimmed.ends_with(';') || trimmed.ends_with('{') || trimmed.ends_with('}') {
            break;
        }
    }
    extent
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from("mem.rs"), "mem.rs".into(), FileKind::Lib, src)
    }

    #[test]
    fn cfg_test_module_lines_are_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let f = file(src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let f = file("#[cfg(not(test))]\nfn live() { body(); }\n");
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn cfg_all_loom_test_is_a_test_region() {
        let f = file("#[cfg(all(loom, test))]\nmod loom_tests {\n    fn t() {}\n}\n");
        assert!(f.is_test_line(3));
    }

    #[test]
    fn test_attr_fn_is_marked_even_outside_mod() {
        let f = file("#[test]\nfn check() {\n    boom();\n}\nfn lib() {}\n");
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
    }

    #[test]
    fn trailing_allow_attaches_to_its_own_line() {
        let f = file("let x = a.unwrap(); // lint-ok(no-panic-lib): invariant: a is Some\n");
        let allow = f.allow_for(1, "no-panic-lib").unwrap();
        assert_eq!(allow.reason, "invariant: a is Some");
    }

    #[test]
    fn own_line_allow_attaches_to_next_code_line() {
        let src = "// lint-ok(ordering-justified): independent counter\n// more prose\nc.fetch_add(1, Ordering::Relaxed);\n";
        let f = file(src);
        assert!(f.allow_for(3, "ordering-justified").is_some());
        assert!(f.allow_for(1, "ordering-justified").is_none());
    }

    #[test]
    fn allow_without_reason_is_malformed_and_not_honored() {
        let f = file("x.unwrap(); // lint-ok(no-panic-lib)\n");
        assert!(f.allow_for(1, "no-panic-lib").is_none());
        assert_eq!(f.malformed_allows, vec![1]);
    }

    #[test]
    fn two_allows_in_one_comment() {
        let f = file(
            "Instant::now(); // lint-ok(gated-clocks): probe lint-ok(no-panic-lib): also fine\n",
        );
        assert_eq!(f.allow_for(1, "gated-clocks").unwrap().reason, "probe");
        assert_eq!(f.allow_for(1, "no-panic-lib").unwrap().reason, "also fine");
    }

    #[test]
    fn contains_word_respects_boundaries() {
        assert!(contains_word("all(loom, test)", "test"));
        assert!(!contains_word("latest", "test"));
        assert!(!contains_word("test_util", "test"));
    }
}
