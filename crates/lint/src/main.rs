//! adv-lint CLI.
//!
//! ```text
//! adv-lint check [--root DIR] [--format text|json] [--out FILE]
//! adv-lint debt  [--root DIR] [--write]
//! adv-lint rules
//! ```
//!
//! `debt` prints the live per-rule `lint-ok` counts in the baseline format;
//! `--write` updates `lint_debt.json` at the root (the conscious act the
//! `lint-debt` rule requires when suppression debt grows).
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error — so CI can
//! distinguish "violations" from "the linter itself broke".

use adv_lint::rules::{all_rules, WS_RULES};
use adv_lint::{debt, run_check, LintError};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    command: String,
    root: PathBuf,
    json: bool,
    write: bool,
    out: Option<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, LintError> {
    let mut args = Args {
        command: String::new(),
        root: PathBuf::from("."),
        json: false,
        write: false,
        out: None,
    };
    let mut it = argv.iter();
    args.command = it.next().cloned().unwrap_or_default();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--write" => {
                args.write = true;
            }
            "--root" => {
                let value = it
                    .next()
                    .ok_or_else(|| LintError::Usage("--root needs a directory".into()))?;
                args.root = PathBuf::from(value);
            }
            "--format" => {
                let value = it
                    .next()
                    .ok_or_else(|| LintError::Usage("--format needs text|json".into()))?;
                match value.as_str() {
                    "json" => args.json = true,
                    "text" => args.json = false,
                    other => {
                        return Err(LintError::Usage(format!(
                            "unknown format '{other}' (expected text|json)"
                        )))
                    }
                }
            }
            "--out" => {
                let value = it
                    .next()
                    .ok_or_else(|| LintError::Usage("--out needs a file path".into()))?;
                args.out = Some(PathBuf::from(value));
            }
            other => {
                return Err(LintError::Usage(format!("unknown argument '{other}'")));
            }
        }
    }
    Ok(args)
}

fn usage() -> &'static str {
    "usage: adv-lint <check|debt|rules> [--root DIR] [--format text|json] [--out FILE] [--write]"
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("adv-lint: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    match args.command.as_str() {
        "rules" => {
            println!("per-file rules:");
            for rule in all_rules() {
                println!("  {:<20} {}", rule.id(), rule.summary());
            }
            println!("workspace-wide rules (two-pass, over the symbol table):");
            for (id, summary) in WS_RULES {
                println!("  {id:<20} {summary}");
            }
            println!("engine checks:");
            println!(
                "  {:<20} allowlist comments must name a known rule and give a reason",
                "lint-ok-syntax"
            );
            ExitCode::SUCCESS
        }
        "debt" => match run_check(&args.root) {
            Ok(report) => {
                let rendered = debt::render_baseline(&report.allows_by_rule);
                if args.write {
                    let path = args.root.join(debt::DEBT_FILE);
                    if let Err(e) = std::fs::write(&path, &rendered) {
                        eprintln!("adv-lint: cannot write {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                    println!("adv-lint: baseline written to {}", path.display());
                } else {
                    print!("{rendered}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("adv-lint: {e}");
                ExitCode::from(2)
            }
        },
        "check" => match run_check(&args.root) {
            Ok(report) => {
                let rendered = report.render(args.json);
                if let Some(out_path) = &args.out {
                    if let Err(e) = std::fs::write(out_path, &rendered) {
                        eprintln!("adv-lint: cannot write {}: {e}", out_path.display());
                        return ExitCode::from(2);
                    }
                    // Keep the human summary on stdout even when the report
                    // goes to a file.
                    if args.json {
                        println!(
                            "adv-lint: {} finding(s), report written to {}",
                            report.findings.len(),
                            out_path.display()
                        );
                    }
                } else {
                    print!("{rendered}");
                }
                if report.is_clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                }
            }
            Err(e) => {
                eprintln!("adv-lint: {e}");
                ExitCode::from(2)
            }
        },
        "" => {
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
        other => {
            eprintln!("adv-lint: unknown command '{other}'\n{}", usage());
            ExitCode::from(2)
        }
    }
}
