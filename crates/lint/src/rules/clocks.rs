//! `gated-clocks`: wall-clock reads in library code must be gated or
//! justified.
//!
//! `Instant::now()` is cheap but not free (a `clock_gettime` vsyscall), and
//! a clock read on a per-sample hot path is exactly the overhead the
//! `ADV_OBS=off` contract promises not to pay. Library code may only read
//! clocks behind an observability gate (`trace_enabled()` /
//! `metrics_enabled()`) or where timing *is* the feature (the serving
//! engine's latency accounting, batch deadlines) — and each such site says
//! so via `// lint-ok(gated-clocks): <reason>`.
//!
//! Entrypoint targets are covered too, in *every* crate: binaries and
//! examples must justify each clock read the same way (probes measure wall
//! clock on purpose — the comment says which purpose), while benches get
//! `Instant` for free (manual timing loops are what a bench *is*) but
//! still must justify `SystemTime` — a wall-clock date in a bench is
//! nondeterminism, not measurement.

use super::{emit, find_word, skip_ws, FileCtx, RawMatch, Rule};
use crate::diagnostics::Finding;
use crate::source::{FileKind, SourceFile};

const CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

const HELP: &str = "move the read behind an `adv_obs` gate, or justify with \
`// lint-ok(gated-clocks): <why this clock read is part of the feature>`";

/// See module docs.
#[derive(Debug)]
pub struct GatedClocks;

impl Rule for GatedClocks {
    fn id(&self) -> &'static str {
        "gated-clocks"
    }

    fn summary(&self) -> &'static str {
        "`Instant::now` / `SystemTime::now` only behind an obs gate or with \
         an explicit justification (benches may read `Instant` freely)"
    }

    fn applies(&self, _ctx: &FileCtx<'_>) -> bool {
        // Library scope is gated per crate inside `check`; entrypoint
        // targets are covered in every crate.
        true
    }

    fn check(&self, file: &SourceFile, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if file.kind == FileKind::Lib
            && !ctx.config.clock_crates.iter().any(|c| c == ctx.crate_name)
        {
            return;
        }
        for (idx, line) in file.code.iter().enumerate() {
            let lineno = idx + 1;
            let chars: Vec<char> = line.chars().collect();
            for ty in CLOCK_TYPES {
                // Manual timing loops are a bench's purpose; only wall-clock
                // dates are suspect there.
                if file.kind == FileKind::Bench && *ty == "Instant" {
                    continue;
                }
                for col in find_word(line, ty) {
                    // Expect `::now` after the type name.
                    let Some(c1) = skip_ws(&chars, col + ty.len()) else {
                        continue;
                    };
                    if chars.get(c1) != Some(&':') || chars.get(c1 + 1) != Some(&':') {
                        continue;
                    }
                    let Some(n0) = skip_ws(&chars, c1 + 2) else {
                        continue;
                    };
                    let ident: String = chars[n0..]
                        .iter()
                        .take_while(|c| crate::lexer::is_ident_char(**c))
                        .collect();
                    if ident != "now" {
                        continue;
                    }
                    emit(
                        self.id(),
                        HELP,
                        file,
                        RawMatch {
                            line: lineno,
                            column: col + 1,
                            width: ty.len() + 5,
                            message: format!(
                                "`{ty}::now` clock read without a gate or justification"
                            ),
                        },
                        out,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::LintConfig;
    use std::path::PathBuf;

    fn run_kind(src: &str, kind: FileKind) -> Vec<Finding> {
        let file = SourceFile::from_source(PathBuf::from("mem.rs"), "src/lib.rs".into(), kind, src);
        let config = LintConfig {
            clock_crates: vec!["core-crate".into()],
            ..LintConfig::empty()
        };
        let ctx = FileCtx {
            crate_name: "core-crate",
            config: &config,
        };
        let mut out = Vec::new();
        if GatedClocks.applies(&ctx) {
            GatedClocks.check(&file, &ctx, &mut out);
        }
        out
    }

    #[test]
    fn bare_instant_now_is_flagged() {
        let out = run_kind("fn f() { let t = Instant::now(); }\n", FileKind::Lib);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("Instant::now"));
    }

    #[test]
    fn justified_clock_read_passes() {
        let src = "fn f() {\n    // lint-ok(gated-clocks): latency accounting is the serving API\n    let t = Instant::now();\n}\n";
        assert!(run_kind(src, FileKind::Lib).is_empty());
    }

    #[test]
    fn system_time_now_is_flagged() {
        let out = run_kind("fn f() { SystemTime::now(); }\n", FileKind::Lib);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn binaries_and_examples_need_justification_too() {
        for kind in [FileKind::Bin, FileKind::Example] {
            let out = run_kind("fn main() { Instant::now(); }\n", kind);
            assert_eq!(out.len(), 1, "{kind:?}: {out:?}");
        }
        let src = "fn main() {\n    // lint-ok(gated-clocks): probe measures end-to-end latency\n    Instant::now();\n}\n";
        assert!(run_kind(src, FileKind::Bin).is_empty());
    }

    #[test]
    fn benches_get_instant_free_but_not_system_time() {
        assert!(run_kind("fn b() { Instant::now(); }\n", FileKind::Bench).is_empty());
        let out = run_kind("fn b() { SystemTime::now(); }\n", FileKind::Bench);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn entrypoints_are_covered_in_unlisted_crates() {
        let file = SourceFile::from_source(
            PathBuf::from("mem.rs"),
            "src/bin/probe.rs".into(),
            FileKind::Bin,
            "fn main() { Instant::now(); }\n",
        );
        let config = LintConfig::empty();
        let ctx = FileCtx {
            crate_name: "not-a-clock-crate",
            config: &config,
        };
        let mut out = Vec::new();
        assert!(GatedClocks.applies(&ctx));
        GatedClocks.check(&file, &ctx, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn instant_method_calls_are_not_flagged() {
        assert!(run_kind("fn f(t: Instant) { t.elapsed(); }\n", FileKind::Lib).is_empty());
    }
}
