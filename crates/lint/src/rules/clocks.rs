//! `gated-clocks`: wall-clock reads in library code must be gated or
//! justified.
//!
//! `Instant::now()` is cheap but not free (a `clock_gettime` vsyscall), and
//! a clock read on a per-sample hot path is exactly the overhead the
//! `ADV_OBS=off` contract promises not to pay. Library code may only read
//! clocks behind an observability gate (`trace_enabled()` /
//! `metrics_enabled()`) or where timing *is* the feature (the serving
//! engine's latency accounting, batch deadlines) — and each such site says
//! so via `// lint-ok(gated-clocks): <reason>`. Binaries are exempt:
//! measuring wall clock is what probes do.

use super::{emit, find_word, skip_ws, FileCtx, RawMatch, Rule};
use crate::diagnostics::Finding;
use crate::source::{FileKind, SourceFile};

const CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

const HELP: &str = "move the read behind an `adv_obs` gate, or justify with \
`// lint-ok(gated-clocks): <why this clock read is part of the feature>`";

/// See module docs.
#[derive(Debug)]
pub struct GatedClocks;

impl Rule for GatedClocks {
    fn id(&self) -> &'static str {
        "gated-clocks"
    }

    fn summary(&self) -> &'static str {
        "`Instant::now` / `SystemTime::now` in library code only behind an \
         obs gate or with an explicit justification"
    }

    fn applies(&self, ctx: &FileCtx<'_>) -> bool {
        ctx.config.clock_crates.iter().any(|c| c == ctx.crate_name)
    }

    fn check(&self, file: &SourceFile, _ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib {
            return;
        }
        for (idx, line) in file.code.iter().enumerate() {
            let lineno = idx + 1;
            let chars: Vec<char> = line.chars().collect();
            for ty in CLOCK_TYPES {
                for col in find_word(line, ty) {
                    // Expect `::now` after the type name.
                    let Some(c1) = skip_ws(&chars, col + ty.len()) else {
                        continue;
                    };
                    if chars.get(c1) != Some(&':') || chars.get(c1 + 1) != Some(&':') {
                        continue;
                    }
                    let Some(n0) = skip_ws(&chars, c1 + 2) else {
                        continue;
                    };
                    let ident: String = chars[n0..]
                        .iter()
                        .take_while(|c| crate::lexer::is_ident_char(**c))
                        .collect();
                    if ident != "now" {
                        continue;
                    }
                    emit(
                        self.id(),
                        HELP,
                        file,
                        RawMatch {
                            line: lineno,
                            column: col + 1,
                            width: ty.len() + 5,
                            message: format!(
                                "`{ty}::now` clock read in library code without a gate \
                                 or justification"
                            ),
                        },
                        out,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::LintConfig;
    use std::path::PathBuf;

    fn run_kind(src: &str, kind: FileKind) -> Vec<Finding> {
        let file = SourceFile::from_source(PathBuf::from("mem.rs"), "src/lib.rs".into(), kind, src);
        let config = LintConfig {
            clock_crates: vec!["core-crate".into()],
            ..LintConfig::empty()
        };
        let ctx = FileCtx {
            crate_name: "core-crate",
            config: &config,
        };
        let mut out = Vec::new();
        if GatedClocks.applies(&ctx) {
            GatedClocks.check(&file, &ctx, &mut out);
        }
        out
    }

    #[test]
    fn bare_instant_now_is_flagged() {
        let out = run_kind("fn f() { let t = Instant::now(); }\n", FileKind::Lib);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("Instant::now"));
    }

    #[test]
    fn justified_clock_read_passes() {
        let src = "fn f() {\n    // lint-ok(gated-clocks): latency accounting is the serving API\n    let t = Instant::now();\n}\n";
        assert!(run_kind(src, FileKind::Lib).is_empty());
    }

    #[test]
    fn system_time_now_is_flagged() {
        let out = run_kind("fn f() { SystemTime::now(); }\n", FileKind::Lib);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn binaries_are_exempt() {
        assert!(run_kind("fn main() { Instant::now(); }\n", FileKind::Bin).is_empty());
    }

    #[test]
    fn instant_method_calls_are_not_flagged() {
        assert!(run_kind("fn f(t: Instant) { t.elapsed(); }\n", FileKind::Lib).is_empty());
    }
}
