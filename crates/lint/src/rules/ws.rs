//! Pass 2: workspace-wide rules over the [`SymbolTable`].
//!
//! Unlike the per-file rules, these see the whole workspace at once and can
//! state cross-file facts: a `Release` publish with no `Acquire` partner
//! *anywhere*, an `unsafe` block in a crate the committed policy never
//! cleared, a `KernelKind` slot no call site ever enters, a metric name
//! that exists only in the documentation. Findings still flow through the
//! same allowlist machinery — a `// lint-ok(<rule>): <reason>` on the
//! offending line suppresses, and test code never fires.

use super::find_word;
use crate::diagnostics::Finding;
use crate::lexer::is_ident_char;
use crate::source::SourceFile;
use crate::table::{AtomicSite, SymbolTable};
use std::collections::{BTreeMap, BTreeSet};

/// `(id, summary)` of every workspace-wide rule, for `adv-lint rules`.
pub const WS_RULES: &[(&str, &str)] = &[
    (
        "atomic-protocol",
        "cross-file acquire/release pairing: no unpaired Release publish, \
         no Relaxed read of a Release-published field, no unjustified \
         SeqCst, no stale justification on a proven Relaxed counter",
    ),
    (
        "unsafe-audit",
        "every `unsafe` needs a `// SAFETY:` contract and its crate must be \
         cleared in unsafe_policy.txt; dropping #![forbid(unsafe_code)] \
         outside the policy is a finding",
    ),
    (
        "no-alloc-in-kernel",
        "inside functions that open a KernelScope, no Vec::new/.push/\
         .to_vec/.clone()/format! after the scope opens unless allowlisted",
    ),
    (
        "dead-slot",
        "every KernelKind variant must be passed to KernelScope::enter \
         somewhere",
    ),
    (
        "dead-metric",
        "DESIGN.md's metric schema and the registered metric names must \
         match in both directions",
    ),
    (
        "lint-debt",
        "per-rule `lint-ok` counts may not grow past the committed \
         lint_debt.json baseline",
    ),
];

/// Shared context for the workspace rules: the file map for allowlist and
/// test-region filtering, plus `DESIGN.md`'s lines for schema diagnostics.
pub struct WsCtx<'a> {
    /// Every scanned file by report path.
    pub files: BTreeMap<&'a str, &'a SourceFile>,
    /// Lines of the workspace `DESIGN.md` (empty when absent).
    pub design_lines: Vec<String>,
}

/// Runs every workspace rule, pushing surviving findings into `out`.
pub fn check_workspace(table: &SymbolTable, ctx: &WsCtx<'_>, out: &mut Vec<Finding>) {
    atomic_protocol(table, ctx, out);
    unsafe_audit(table, ctx, out);
    alloc_in_kernel(table, ctx, out);
    dead_slots(table, ctx, out);
    dead_metrics(table, ctx, out);
}

/// Emits a finding at a source position unless the line is test code or
/// carries a matching allow. Paths outside the scanned set (`DESIGN.md`,
/// `lint_debt.json`) have no allow machinery and always emit.
#[allow(clippy::too_many_arguments)]
fn emit_ws(
    rule: &'static str,
    help: &str,
    ctx: &WsCtx<'_>,
    path: &str,
    line: usize,
    column: usize,
    width: usize,
    message: String,
    out: &mut Vec<Finding>,
) {
    let mut snippet = String::new();
    if let Some(file) = ctx.files.get(path) {
        if file.is_test_line(line) || file.allow_for(line, rule).is_some() {
            return;
        }
        snippet = file.lines.get(line - 1).cloned().unwrap_or_default();
    } else if path == "DESIGN.md" {
        snippet = ctx.design_lines.get(line - 1).cloned().unwrap_or_default();
    }
    out.push(Finding {
        rule,
        path: path.to_string(),
        line,
        column,
        width,
        message,
        snippet,
        help: help.to_string(),
    });
}

/// Orderings that make a write visible to an `Acquire`-side reader.
fn publishes(site: &AtomicSite) -> bool {
    site.op != "load"
        && site
            .orderings
            .iter()
            .any(|o| o == "Release" || o == "AcqRel" || o == "SeqCst")
}

/// Orderings that synchronize-with a `Release`-side writer.
fn consumes(site: &AtomicSite) -> bool {
    site.op != "store"
        && site
            .orderings
            .iter()
            .any(|o| o == "Acquire" || o == "AcqRel" || o == "SeqCst")
}

const ATOMIC_HELP: &str = "pair the publish with an Acquire-side read (or vice versa), weaken \
the ordering, or justify with `// lint-ok(atomic-protocol): <reason>`";

/// The cross-file atomic-ordering protocol checks (see [`WS_RULES`]).
fn atomic_protocol(table: &SymbolTable, ctx: &WsCtx<'_>, out: &mut Vec<Finding>) {
    // (a)/(b)/(e): per-field publish/consume pairing.
    for (field, sites) in table.sites_by_field() {
        let has_publish = sites.iter().any(|s| publishes(s));
        let has_consume = sites.iter().any(|s| consumes(s));
        for site in &sites {
            if publishes(site) && !has_consume {
                emit_ws(
                    "atomic-protocol",
                    ATOMIC_HELP,
                    ctx,
                    &site.path,
                    site.line,
                    site.column + 1,
                    site.op.len(),
                    format!(
                        "`{}` publishes `{field}` with a Release-class ordering, but no \
                         Acquire-side consumer of `{field}` exists anywhere in the workspace",
                        site.op
                    ),
                    out,
                );
            }
            if consumes(site) && !has_publish {
                emit_ws(
                    "atomic-protocol",
                    ATOMIC_HELP,
                    ctx,
                    &site.path,
                    site.line,
                    site.column + 1,
                    site.op.len(),
                    format!(
                        "`{}` reads `{field}` with an Acquire-class ordering, but `{field}` \
                         is never published with Release anywhere in the workspace",
                        site.op
                    ),
                    out,
                );
            }
            if site.op == "load" && site.orderings.iter().all(|o| o == "Relaxed") && has_publish {
                emit_ws(
                    "atomic-protocol",
                    ATOMIC_HELP,
                    ctx,
                    &site.path,
                    site.line,
                    site.column + 1,
                    site.op.len(),
                    format!(
                        "`Relaxed` load of `{field}`, which is published with a Release-class \
                         ordering elsewhere — the acquire pairing is lost at this read"
                    ),
                    out,
                );
            }
        }
    }
    // (c): SeqCst anywhere needs its own justification — it is almost never
    // the weakest sufficient ordering, and writing the reason down is the
    // point.
    for site in &table.atomic_sites {
        if site.orderings.iter().any(|o| o == "SeqCst") {
            emit_ws(
                "atomic-protocol",
                ATOMIC_HELP,
                ctx,
                &site.path,
                site.line,
                site.column + 1,
                site.op.len(),
                format!(
                    "`SeqCst` on `{}` — justify why no weaker ordering suffices",
                    site.op
                ),
                out,
            );
        }
    }
    // (d): an `ordering-justified` allow comment whose covered lines
    // contain only orderings on proven Relaxed counters is stale — the
    // stronger analysis proves the site benign without it.
    for (path, file) in &ctx.files {
        let mut by_comment: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (idx, entries) in file.allows.iter().enumerate() {
            for allow in entries {
                if allow.rule == "ordering-justified" {
                    by_comment
                        .entry(allow.comment_line)
                        .or_default()
                        .push(idx + 1);
                }
            }
        }
        for (comment_line, lines) in by_comment {
            if file.is_test_line(comment_line) {
                continue;
            }
            let mut tokens = 0usize;
            let mut exempt = 0usize;
            for &line in &lines {
                for (col, _) in ordering_tokens_on(file, line) {
                    tokens += 1;
                    if table
                        .exempt_ordering_tokens
                        .contains(&((*path).to_string(), line, col))
                    {
                        exempt += 1;
                    }
                }
            }
            if tokens > 0 && tokens == exempt {
                emit_ws(
                    "atomic-protocol",
                    "delete the comment — the workspace analysis proves every access to \
                     this field is a Relaxed pure counter, so no justification is needed",
                    ctx,
                    path,
                    comment_line,
                    1,
                    1,
                    "stale `lint-ok(ordering-justified)`: it covers only accesses to \
                     proven Relaxed counters, which need no justification"
                        .to_string(),
                    out,
                );
            }
        }
    }
}

/// 0-based columns of `Ordering::<variant>` tokens on a 1-based line.
fn ordering_tokens_on(file: &SourceFile, line: usize) -> Vec<(usize, String)> {
    let Some(code) = file.code.get(line - 1) else {
        return Vec::new();
    };
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    for col in find_word(code, "Ordering") {
        let Some(c1) = super::skip_ws(&chars, col + "Ordering".len()) else {
            continue;
        };
        if chars.get(c1) != Some(&':') || chars.get(c1 + 1) != Some(&':') {
            continue;
        }
        let Some(v0) = super::skip_ws(&chars, c1 + 2) else {
            continue;
        };
        let variant: String = chars[v0..]
            .iter()
            .take_while(|c| is_ident_char(**c))
            .collect();
        if ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"].contains(&variant.as_str()) {
            out.push((col, variant));
        }
    }
    out
}

const UNSAFE_HELP: &str = "add a `// SAFETY: <contract>` comment on or directly above the \
`unsafe`, and make sure the crate is listed in unsafe_policy.txt";

/// The unsafe-readiness audit (see [`WS_RULES`]).
fn unsafe_audit(table: &SymbolTable, ctx: &WsCtx<'_>, out: &mut Vec<Finding>) {
    for status in &table.crate_unsafe {
        if !status.lib_path.is_empty()
            && !status.forbids_unsafe
            && !table.unsafe_policy.contains_key(&status.name)
        {
            emit_ws(
                "unsafe-audit",
                "restore `#![forbid(unsafe_code)]` in lib.rs, or add \
                 `<crate>: <reason>` to unsafe_policy.txt at the workspace root",
                ctx,
                &status.lib_path,
                1,
                1,
                1,
                format!(
                    "crate `{}` does not carry `#![forbid(unsafe_code)]` and is not \
                     cleared by unsafe_policy.txt",
                    status.name
                ),
                out,
            );
        }
    }
    for site in &table.unsafe_sites {
        if !table.unsafe_policy.contains_key(&site.crate_name) {
            emit_ws(
                "unsafe-audit",
                "add the crate to unsafe_policy.txt with a reason, or remove the unsafe",
                ctx,
                &site.path,
                site.line,
                site.column + 1,
                "unsafe".len(),
                format!(
                    "`unsafe` in crate `{}`, which unsafe_policy.txt does not clear",
                    site.crate_name
                ),
                out,
            );
        } else if !site.has_safety {
            emit_ws(
                "unsafe-audit",
                UNSAFE_HELP,
                ctx,
                &site.path,
                site.line,
                site.column + 1,
                "unsafe".len(),
                "`unsafe` without a `// SAFETY:` contract".to_string(),
                out,
            );
        }
    }
}

/// Allocation-shaped tokens forbidden inside a measured kernel region.
const ALLOC_HELP: &str = "hoist the allocation out of the measured region (before \
`KernelScope::enter`), or justify with `// lint-ok(no-alloc-in-kernel): <reason>`";

/// The hot-path allocation lint (see [`WS_RULES`]).
fn alloc_in_kernel(table: &SymbolTable, ctx: &WsCtx<'_>, out: &mut Vec<Finding>) {
    let mut seen: BTreeSet<(String, usize, usize)> = BTreeSet::new();
    for kf in &table.kernel_fns {
        let Some(file) = ctx.files.get(kf.path.as_str()) else {
            continue;
        };
        for lineno in kf.region_start..=kf.region_end {
            let Some(code) = file.code.get(lineno - 1) else {
                continue;
            };
            let chars: Vec<char> = code.chars().collect();
            let min_col = if lineno == kf.region_start {
                kf.region_start_col
            } else {
                0
            };
            for (col, width, what) in alloc_tokens(code, &chars) {
                if col < min_col || !seen.insert((kf.path.clone(), lineno, col)) {
                    continue;
                }
                emit_ws(
                    "no-alloc-in-kernel",
                    ALLOC_HELP,
                    ctx,
                    &kf.path,
                    lineno,
                    col + 1,
                    width,
                    format!(
                        "{what} inside a measured kernel region (entered on line {})",
                        kf.enter_line
                    ),
                    out,
                );
            }
        }
    }
}

/// `(0-based col, width, description)` of each allocation token on a line.
fn alloc_tokens(code: &str, chars: &[char]) -> Vec<(usize, usize, &'static str)> {
    let mut out = Vec::new();
    for col in find_word(code, "Vec") {
        let after = col + 3;
        if chars.get(after) == Some(&':')
            && chars.get(after + 1) == Some(&':')
            && chars
                .get(after + 2..)
                .is_some_and(|r| r.starts_with(&['n', 'e', 'w'][..]))
        {
            out.push((col, "Vec::new".len(), "`Vec::new` allocation"));
        }
    }
    for (method, what) in [
        ("push", "`.push(..)` (may reallocate)"),
        ("to_vec", "`.to_vec()` allocation"),
        ("clone", "`.clone()` allocation"),
    ] {
        for col in find_word(code, method) {
            let is_call = col > 0
                && chars[..col]
                    .iter()
                    .rev()
                    .find(|c| !c.is_whitespace())
                    .is_some_and(|&c| c == '.')
                && super::skip_ws(chars, col + method.len()).is_some_and(|j| chars[j] == '(');
            if is_call {
                out.push((col, method.len(), what));
            }
        }
    }
    for col in find_word(code, "format") {
        if super::skip_ws(chars, col + "format".len()).is_some_and(|j| chars[j] == '!') {
            out.push((col, "format!".len(), "`format!` allocation"));
        }
    }
    out.sort_unstable_by_key(|(c, _, _)| *c);
    out
}

/// The dead `KernelKind` slot check (see [`WS_RULES`]).
fn dead_slots(table: &SymbolTable, ctx: &WsCtx<'_>, out: &mut Vec<Finding>) {
    // Only meaningful when both sides of the inventory exist: a fixture
    // with an enum but no call sites would otherwise flag everything.
    if table.kernel_variants.is_empty() || table.entered_kinds.is_empty() {
        return;
    }
    for variant in table.dead_kernel_variants() {
        emit_ws(
            "dead-slot",
            "remove the variant, or add the KernelScope::enter instrumentation \
             that was supposed to use it",
            ctx,
            &variant.path,
            variant.line,
            1,
            variant.name.len(),
            format!(
                "`KernelKind::{}` is never passed to `KernelScope::enter` anywhere \
                 in the workspace",
                variant.name
            ),
            out,
        );
    }
}

/// The metric-schema drift check (see [`WS_RULES`]).
fn dead_metrics(table: &SymbolTable, ctx: &WsCtx<'_>, out: &mut Vec<Finding>) {
    if !table.has_metric_schema {
        return;
    }
    let registered: BTreeSet<&str> = table.metric_regs.iter().map(|m| m.name.as_str()).collect();
    for (name, line) in &table.doc_metrics {
        if !registered.contains(name.as_str()) {
            emit_ws(
                "dead-metric",
                "remove the stale row from DESIGN.md's metric schema block, or \
                 restore the registration",
                ctx,
                "DESIGN.md",
                *line,
                1,
                name.len(),
                format!("metric `{name}` is documented in DESIGN.md but never registered"),
                out,
            );
        }
    }
    let mut reported: BTreeSet<&str> = BTreeSet::new();
    for reg in &table.metric_regs {
        if !table.doc_metrics.contains_key(&reg.name) && reported.insert(reg.name.as_str()) {
            emit_ws(
                "dead-metric",
                "add the metric to the `<!-- metric-schema:start -->` block in \
                 DESIGN.md",
                ctx,
                &reg.path,
                reg.line,
                1,
                reg.name.len(),
                format!(
                    "metric `{}` is registered but not documented in DESIGN.md",
                    reg.name
                ),
                out,
            );
        }
    }
}
