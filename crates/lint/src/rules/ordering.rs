//! `ordering-justified`: every atomic memory-ordering choice must carry a
//! written rationale.
//!
//! A bare `Ordering::Relaxed` is the single easiest way to ship a data race
//! that only shows up under load on weaker hardware; a bare `SeqCst` is the
//! single easiest way to hide that nobody thought about it. The rule makes
//! the reasoning part of the code: each use site must be allowlisted with
//! `// lint-ok(ordering-justified): <why this ordering is sufficient>`,
//! which doubles as the audit trail for the serve/obs concurrency core.

use super::{emit, find_word, skip_ws, FileCtx, RawMatch, Rule};
use crate::diagnostics::Finding;
use crate::source::SourceFile;

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

const HELP: &str = "add `// lint-ok(ordering-justified): <why this ordering is sufficient>` \
on or directly above the line";

/// See module docs.
#[derive(Debug)]
pub struct OrderingJustified;

impl Rule for OrderingJustified {
    fn id(&self) -> &'static str {
        "ordering-justified"
    }

    fn summary(&self) -> &'static str {
        "every `Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}` use site \
         must carry a justification comment"
    }

    fn applies(&self, _ctx: &FileCtx<'_>) -> bool {
        true
    }

    fn check(&self, file: &SourceFile, _ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        for (idx, line) in file.code.iter().enumerate() {
            let lineno = idx + 1;
            let chars: Vec<char> = line.chars().collect();
            let mut first: Option<(usize, &str)> = None;
            for col in find_word(line, "Ordering") {
                // Expect `:: <variant>` after the `Ordering` path segment.
                let Some(c1) = skip_ws(&chars, col + "Ordering".len()) else {
                    continue;
                };
                if chars.get(c1) != Some(&':') || chars.get(c1 + 1) != Some(&':') {
                    continue;
                }
                let Some(v0) = skip_ws(&chars, c1 + 2) else {
                    continue;
                };
                let variant: String = chars[v0..]
                    .iter()
                    .take_while(|c| crate::lexer::is_ident_char(**c))
                    .collect();
                if first.is_none() {
                    if let Some(&v) = ORDERINGS.iter().find(|o| **o == variant) {
                        first = Some((col, v));
                    }
                }
            }
            // One finding per line: `compare_exchange(.., Relaxed, Relaxed)`
            // is one decision, not two.
            if let Some((col, variant)) = first {
                emit(
                    self.id(),
                    HELP,
                    file,
                    RawMatch {
                        line: lineno,
                        column: col + 1,
                        width: "Ordering::".len() + variant.len(),
                        message: format!("`Ordering::{variant}` without a justification comment"),
                    },
                    out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};
    use crate::LintConfig;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(
            PathBuf::from("mem.rs"),
            "src/lib.rs".into(),
            FileKind::Lib,
            src,
        );
        let config = LintConfig::empty();
        let ctx = FileCtx {
            crate_name: "any",
            config: &config,
        };
        let mut out = Vec::new();
        OrderingJustified.check(&file, &ctx, &mut out);
        out
    }

    #[test]
    fn bare_ordering_is_flagged() {
        let out = run("fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("Ordering::Relaxed"));
    }

    #[test]
    fn justified_ordering_passes() {
        let src = "// lint-ok(ordering-justified): independent counter, no data published\nfn f(a: &AtomicU64) { a.fetch_add(1, Ordering::Relaxed); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn one_finding_per_line_for_compare_exchange() {
        let out =
            run("fn f(a: &AtomicU64) { a.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst); }\n");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn full_path_form_is_caught() {
        let out = run("fn f(a: &AtomicU64) { a.load(std::sync::atomic::Ordering::Acquire); }\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("Acquire"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unrelated_ordering_enum_paths_do_not_match() {
        assert!(run("fn f() { let x = cmp::Ordering::Less; }\n").is_empty());
    }
}
