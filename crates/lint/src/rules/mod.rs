//! The rule engine: a [`Rule`] trait, the built-in rule set, and shared
//! token-scanning helpers over scrubbed source.

mod clocks;
mod error_types;
mod no_panic;
mod ordering;
pub mod ws;

pub use clocks::GatedClocks;
pub use error_types::CrateErrorTypes;
pub use no_panic::NoPanicLib;
pub use ordering::OrderingJustified;
pub use ws::{check_workspace, WsCtx, WS_RULES};

use crate::diagnostics::Finding;
use crate::lexer::is_ident_char;
use crate::source::SourceFile;
use crate::LintConfig;

/// Per-file context a rule sees: which crate the file belongs to and the
/// workspace configuration.
#[derive(Debug, Clone, Copy)]
pub struct FileCtx<'a> {
    /// Package name from the owning crate's `Cargo.toml`.
    pub crate_name: &'a str,
    /// Workspace lint configuration.
    pub config: &'a LintConfig,
}

/// One invariant check. Rules scan scrubbed code (comments and literal
/// bodies blanked), skip test regions, and honor `lint-ok` allowlists via
/// [`emit`].
pub trait Rule {
    /// Stable rule id used in diagnostics and `lint-ok(<id>)` comments.
    fn id(&self) -> &'static str;
    /// One-line description for `adv-lint rules`.
    fn summary(&self) -> &'static str;
    /// Whether the rule runs on files of this crate at all.
    fn applies(&self, ctx: &FileCtx<'_>) -> bool;
    /// Scans `file`, pushing violations into `out`.
    fn check(&self, file: &SourceFile, ctx: &FileCtx<'_>, out: &mut Vec<Finding>);
}

/// The built-in per-file rule set, in reporting order. The workspace-wide
/// pass-2 rules live in [`ws`] and are listed in [`WS_RULES`].
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanicLib),
        Box::new(OrderingJustified),
        Box::new(GatedClocks),
        Box::new(CrateErrorTypes),
    ]
}

/// Every rule id the engine knows — per-file, workspace-wide, and the
/// engine-level `lint-debt` check — so `lint-ok(<rule>)` comments naming
/// any of them are well-formed.
pub fn all_rule_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = all_rules().iter().map(|r| r.id()).collect();
    ids.extend(WS_RULES.iter().map(|(id, _)| *id));
    ids
}

/// A raw match produced by a rule before allowlist/test filtering.
#[derive(Debug, Clone)]
pub struct RawMatch {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// Token run length for the caret underline.
    pub width: usize,
    /// Violation message.
    pub message: String,
}

/// Filters a raw match through the test-region map and the per-line
/// allowlist, emitting a [`Finding`] when it survives.
pub fn emit(
    rule: &'static str,
    help: &str,
    file: &SourceFile,
    m: RawMatch,
    out: &mut Vec<Finding>,
) {
    if file.is_test_line(m.line) {
        return;
    }
    if file.allow_for(m.line, rule).is_some() {
        return;
    }
    out.push(Finding {
        rule,
        path: file.rel.clone(),
        line: m.line,
        column: m.column,
        width: m.width,
        message: m.message,
        snippet: file.lines.get(m.line - 1).cloned().unwrap_or_default(),
        help: help.to_string(),
    });
}

/// Finds every occurrence of identifier `word` (word-boundary match) in a
/// scrubbed line, returning 0-based character columns.
pub fn find_word(line: &str, word: &str) -> Vec<usize> {
    let chars: Vec<char> = line.chars().collect();
    let needle: Vec<char> = word.chars().collect();
    let mut out = Vec::new();
    if needle.is_empty() || chars.len() < needle.len() {
        return out;
    }
    for start in 0..=chars.len() - needle.len() {
        if chars[start..start + needle.len()] != needle[..] {
            continue;
        }
        let before_ok = start == 0 || !is_ident_char(chars[start - 1]);
        let after = start + needle.len();
        let after_ok = after >= chars.len() || !is_ident_char(chars[after]);
        if before_ok && after_ok {
            out.push(start);
        }
    }
    out
}

/// `true` when `c` can end an indexable expression: an identifier char, a
/// closing paren, or a closing bracket.
pub fn is_expr_end(c: char) -> bool {
    is_ident_char(c) || c == ')' || c == ']'
}

/// After `start` (0-based char index), skips whitespace and returns the
/// index of the next non-whitespace char, if any.
pub fn skip_ws(chars: &[char], mut start: usize) -> Option<usize> {
    while start < chars.len() {
        if !chars[start].is_whitespace() {
            return Some(start);
        }
        start += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_word_boundaries() {
        assert_eq!(find_word("panic! and panics", "panic"), vec![0]);
        assert_eq!(find_word("Ordering::Relaxed", "Ordering"), vec![0]);
        assert!(find_word("Reordering::X", "Ordering").is_empty());
        assert_eq!(find_word("a Instant b Instant", "Instant"), vec![2, 12]);
    }
}
