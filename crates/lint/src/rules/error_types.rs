//! `crate-error-types`: public fallible functions return the crate's own
//! error type.
//!
//! `Box<dyn Error>` and `Result<_, String>` in a public signature make the
//! failure mode unmatchable for callers and erase the error taxonomy the
//! workspace crates deliberately maintain (`TensorError`, `NnError`,
//! `ServeError`, …). The rule scans every `pub fn` signature (multi-line
//! aware) and flags return types that mention `Box<dyn ..>` or use `String`
//! as the error arm of a `Result`.

use super::{FileCtx, RawMatch, Rule};
use crate::diagnostics::Finding;
use crate::lexer::is_ident_char;
use crate::source::{FileKind, SourceFile};

const HELP: &str = "return the crate's error enum (see its `error.rs`), or justify with \
`// lint-ok(crate-error-types): <reason>` on the `fn` line";

/// See module docs.
#[derive(Debug)]
pub struct CrateErrorTypes;

impl Rule for CrateErrorTypes {
    fn id(&self) -> &'static str {
        "crate-error-types"
    }

    fn summary(&self) -> &'static str {
        "public fallible fns return the crate's error type, not \
         `Box<dyn Error>` or `Result<_, String>`"
    }

    fn applies(&self, _ctx: &FileCtx<'_>) -> bool {
        true
    }

    fn check(&self, file: &SourceFile, _ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib {
            return;
        }
        let joined = file.code.join("\n");
        let chars: Vec<char> = joined.chars().collect();
        // 0-based (line, column) for every char offset.
        let mut pos = Vec::with_capacity(chars.len() + 1);
        {
            let (mut line, mut col) = (0usize, 0usize);
            for &c in &chars {
                pos.push((line, col));
                if c == '\n' {
                    line += 1;
                    col = 0;
                } else {
                    col += 1;
                }
            }
            pos.push((pos.last().map(|&(l, _)| l).unwrap_or(0), 0));
        }

        for sig in pub_fn_signatures(&chars) {
            let Some(ret) = sig.return_type else { continue };
            let Some(problem) = offending_return_type(&ret) else {
                continue;
            };
            let (line0, col0) = pos[sig.fn_offset];
            super::emit(
                self.id(),
                HELP,
                file,
                RawMatch {
                    line: line0 + 1,
                    column: col0 + 1,
                    width: 2 + 1 + sig.name.chars().count(),
                    message: format!(
                        "public fn `{}` returns {problem} instead of the crate error type",
                        sig.name
                    ),
                },
                out,
            );
        }
    }
}

/// A `pub fn` signature located in scrubbed code.
struct PubFnSig {
    /// Char offset of the `fn` keyword.
    fn_offset: usize,
    /// Function name.
    name: String,
    /// Text of the return type (after `->`, before `{`/`;`/`where`), if any.
    return_type: Option<String>,
}

/// Scans for `pub [const|unsafe|async|extern ".."] fn name .. (-> ret)?`.
/// `pub(crate)` / `pub(super)` are not public API and are skipped.
fn pub_fn_signatures(chars: &[char]) -> Vec<PubFnSig> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        if !word_at(chars, i, "pub") {
            i += 1;
            continue;
        }
        let mut j = i + 3;
        while j < chars.len() && chars[j].is_whitespace() {
            j += 1;
        }
        if chars.get(j) == Some(&'(') {
            // Restricted visibility: not public API.
            i = j;
            continue;
        }
        // Skip qualifier keywords up to `fn`.
        let mut fn_at = None;
        let mut guard = 0;
        while j < chars.len() && guard < 6 {
            guard += 1;
            if word_at(chars, j, "fn") {
                fn_at = Some(j);
                break;
            }
            let is_qualifier = ["const", "unsafe", "async", "extern"]
                .iter()
                .any(|q| word_at(chars, j, q));
            if !is_qualifier {
                break;
            }
            // Skip the qualifier word (ABI strings are scrubbed to spaces).
            while j < chars.len() && is_ident_char(chars[j]) {
                j += 1;
            }
            while j < chars.len() && (chars[j].is_whitespace()) {
                j += 1;
            }
        }
        let Some(fn_at) = fn_at else {
            i = j.max(i + 3);
            continue;
        };
        // Function name.
        let mut n = fn_at + 2;
        while n < chars.len() && chars[n].is_whitespace() {
            n += 1;
        }
        let name: String = chars[n..]
            .iter()
            .take_while(|c| is_ident_char(**c))
            .collect();
        // Signature body: to the first `{` or `;` outside brackets.
        let mut k = n + name.chars().count();
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut arrow_at = None;
        let sig_end;
        loop {
            if k >= chars.len() {
                sig_end = chars.len();
                break;
            }
            let c = chars[k];
            match c {
                '<' => angle += 1,
                '>' => {
                    if k > 0 && chars[k - 1] == '-' {
                        // `->` arrow, not a closing angle.
                        if angle == 0 && paren == 0 && bracket == 0 && arrow_at.is_none() {
                            arrow_at = Some(k + 1);
                        }
                    } else {
                        angle -= 1;
                    }
                }
                '(' => paren += 1,
                ')' => paren -= 1,
                '[' => bracket += 1,
                ']' => bracket -= 1,
                '{' | ';' if angle <= 0 && paren == 0 && bracket == 0 => {
                    sig_end = k;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let return_type = arrow_at.map(|a| {
            let ret: String = chars[a..sig_end].iter().collect();
            // Trim a trailing `where` clause off the return type.
            match find_top_level_where(&ret) {
                Some(w) => ret[..w].trim().to_string(),
                None => ret.trim().to_string(),
            }
        });
        out.push(PubFnSig {
            fn_offset: fn_at,
            name,
            return_type,
        });
        i = sig_end.max(i + 3);
    }
    out
}

/// Byte offset of a top-level `where` keyword in a return-type string.
fn find_top_level_where(ret: &str) -> Option<usize> {
    let chars: Vec<char> = ret.chars().collect();
    let mut depth = 0i32;
    let mut byte = 0usize;
    for (i, &c) in chars.iter().enumerate() {
        match c {
            '<' | '(' | '[' => depth += 1,
            // `->` of a nested fn pointer is not a closing bracket.
            '>' if i > 0 && chars[i - 1] == '-' => {}
            '>' | ')' | ']' => depth -= 1,
            'w' if depth == 0 && word_at(&chars, i, "where") => return Some(byte),
            _ => {}
        }
        byte += c.len_utf8();
    }
    None
}

/// Returns a description of the offending pattern in `ret`, if any.
fn offending_return_type(ret: &str) -> Option<String> {
    let chars: Vec<char> = ret.chars().collect();
    // `Box<dyn ..Error..>` anywhere in the return type. A plain trait
    // object (`Box<dyn Rule>`) is a legitimate return value; only erased
    // *errors* defeat the crate's error taxonomy.
    for i in 0..chars.len() {
        if word_at(&chars, i, "Box") {
            let mut j = i + 3;
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            if chars.get(j) == Some(&'<') {
                let mut k = j + 1;
                while k < chars.len() && chars[k].is_whitespace() {
                    k += 1;
                }
                if word_at(&chars, k, "dyn") {
                    // Capture the boxed path up to the matching `>`.
                    let mut depth = 1i32;
                    let mut m = j + 1;
                    while m < chars.len() && depth > 0 {
                        match chars[m] {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    let boxed: String = chars[k..m.saturating_sub(1)].iter().collect();
                    if crate::source::contains_word(&boxed, "Error") {
                        return Some("`Box<dyn Error>`".to_string());
                    }
                }
            }
        }
    }
    // `Result<_, String>` (the error arm is the last top-level comma arg).
    for i in 0..chars.len() {
        if !word_at(&chars, i, "Result") {
            continue;
        }
        let mut j = i + "Result".len();
        while j < chars.len() && chars[j].is_whitespace() {
            j += 1;
        }
        if chars.get(j) != Some(&'<') {
            continue;
        }
        let mut depth = 1i32;
        let mut k = j + 1;
        let mut last_comma = None;
        while k < chars.len() && depth > 0 {
            match chars[k] {
                '<' => depth += 1,
                // `->` of a nested fn pointer is not a closing bracket.
                '>' if k > 0 && chars[k - 1] == '-' => {}
                '>' => depth -= 1,
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                ',' if depth == 1 => last_comma = Some(k),
                _ => {}
            }
            k += 1;
        }
        if let Some(comma) = last_comma {
            let err_ty: String = chars[comma + 1..k.saturating_sub(1)].iter().collect();
            if err_ty.trim() == "String" {
                return Some("`Result<_, String>`".to_string());
            }
        }
    }
    None
}

/// `true` when the identifier `word` starts at char offset `i`.
fn word_at(chars: &[char], i: usize, word: &str) -> bool {
    let needle: Vec<char> = word.chars().collect();
    if i + needle.len() > chars.len() || chars[i..i + needle.len()] != needle[..] {
        return false;
    }
    let before_ok = i == 0 || !is_ident_char(chars[i - 1]);
    let after = i + needle.len();
    let after_ok = after >= chars.len() || !is_ident_char(chars[after]);
    before_ok && after_ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::LintConfig;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(
            PathBuf::from("mem.rs"),
            "src/lib.rs".into(),
            FileKind::Lib,
            src,
        );
        let config = LintConfig::empty();
        let ctx = FileCtx {
            crate_name: "any",
            config: &config,
        };
        let mut out = Vec::new();
        CrateErrorTypes.check(&file, &ctx, &mut out);
        out
    }

    #[test]
    fn box_dyn_error_return_is_flagged() {
        let out = run("pub fn load() -> Result<u8, Box<dyn std::error::Error>> { todo!() }\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("load"));
        assert!(out[0].message.contains("Box<dyn Error>"));
    }

    #[test]
    fn non_error_trait_objects_are_fine() {
        assert!(run("pub fn rules() -> Vec<Box<dyn Rule>> { Vec::new() }\n").is_empty());
    }

    #[test]
    fn string_error_arm_is_flagged_across_lines() {
        let src =
            "pub fn parse(\n    input: &str,\n) -> Result<Config,\n    String> {\n    todo!()\n}\n";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("Result<_, String>"));
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn crate_error_type_passes() {
        let src = "pub fn load() -> Result<u8, TensorError> { Ok(0) }\npub fn name() -> String { String::new() }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn pub_crate_fns_are_not_public_api() {
        assert!(run("pub(crate) fn inner() -> Result<(), String> { Ok(()) }\n").is_empty());
    }

    #[test]
    fn private_fns_are_out_of_scope() {
        assert!(run("fn helper() -> Result<(), String> { Ok(()) }\n").is_empty());
    }

    #[test]
    fn closure_arrows_in_generics_do_not_confuse_the_scanner() {
        let src = "pub fn map<F: Fn(u8) -> u8>(f: F) -> Result<u8, MyError> { Ok(f(0)) }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn alias_result_without_comma_passes() {
        assert!(run("pub fn go() -> Result<()> { Ok(()) }\n").is_empty());
    }

    #[test]
    fn lint_ok_on_fn_line_suppresses() {
        let src = "// lint-ok(crate-error-types): binary-style helper kept for scripts\npub fn legacy() -> Result<(), String> { Ok(()) }\n";
        assert!(run(src).is_empty());
    }
}
