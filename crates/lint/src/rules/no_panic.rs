//! `no-panic-lib`: no panic paths in library code of the core crates, and
//! no *bare* unwraps in any entrypoint target.
//!
//! Forbidden in non-test library code: `.unwrap()` / `.expect(..)` (and
//! their `_err` twins), the `panic!` / `unreachable!` / `todo!` /
//! `unimplemented!` macros, and — in the crates configured for index
//! checking (the concurrency core, where slices are rare and every index
//! deserves a justification) — bracket indexing, which panics out of
//! bounds. `debug_assert!`-style checks are fine: they vanish in release
//! builds and never take down a serving worker.
//!
//! Entrypoint targets (binaries, benches, examples — in *every* crate)
//! run a lighter check: aborting with a message is the legitimate error
//! strategy for code that owns its process, so `.expect("..")` and
//! `panic!("..")` pass, but a bare `.unwrap()` / `.unwrap_err()` — which
//! dies with a line number and no explanation — is still a finding.

use super::{emit, find_word, skip_ws, FileCtx, RawMatch, Rule};
use crate::diagnostics::Finding;
use crate::source::{FileKind, SourceFile};

/// Method calls that panic on the error/none arm.
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// See module docs.
#[derive(Debug)]
pub struct NoPanicLib;

const HELP: &str = "return the crate's error type instead, or justify with \
`// lint-ok(no-panic-lib): <why this cannot panic / is a programming error>`";

impl Rule for NoPanicLib {
    fn id(&self) -> &'static str {
        "no-panic-lib"
    }

    fn summary(&self) -> &'static str {
        "library code of the core crates must not contain panic paths \
         (unwrap/expect, panic-family macros, unchecked indexing in the \
         concurrency core); bins/benches/examples everywhere must not use \
         bare unwrap"
    }

    fn applies(&self, _ctx: &FileCtx<'_>) -> bool {
        // Library scope is gated per crate inside `check`; the entrypoint
        // check covers every crate.
        true
    }

    fn check(&self, file: &SourceFile, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if file.kind.is_entrypoint() {
            self.check_entrypoint(file, out);
            return;
        }
        if file.kind != FileKind::Lib
            || !ctx
                .config
                .no_panic_crates
                .iter()
                .any(|c| c == ctx.crate_name)
        {
            return;
        }
        let check_indexing = ctx
            .config
            .index_check_crates
            .iter()
            .any(|c| c == ctx.crate_name);
        for (idx, line) in file.code.iter().enumerate() {
            let lineno = idx + 1;
            let chars: Vec<char> = line.chars().collect();
            for method in PANIC_METHODS {
                for col in find_word(line, method) {
                    // Must be a `.method(` call, not a bare identifier.
                    let is_call = col > 0
                        && chars[..col]
                            .iter()
                            .rev()
                            .find(|c| !c.is_whitespace())
                            .is_some_and(|&c| c == '.')
                        && skip_ws(&chars, col + method.len()).is_some_and(|j| chars[j] == '(');
                    if is_call {
                        emit(
                            self.id(),
                            HELP,
                            file,
                            RawMatch {
                                line: lineno,
                                column: col + 1,
                                width: method.len(),
                                message: format!("`.{method}()` panic path in library code"),
                            },
                            out,
                        );
                    }
                }
            }
            for mac in PANIC_MACROS {
                for col in find_word(line, mac) {
                    let is_macro =
                        skip_ws(&chars, col + mac.len()).is_some_and(|j| chars[j] == '!');
                    if is_macro {
                        emit(
                            self.id(),
                            HELP,
                            file,
                            RawMatch {
                                line: lineno,
                                column: col + 1,
                                width: mac.len() + 1,
                                message: format!("`{mac}!` in library code"),
                            },
                            out,
                        );
                    }
                }
            }
            if check_indexing {
                for col in index_sites(&chars) {
                    emit(
                        self.id(),
                        HELP,
                        file,
                        RawMatch {
                            line: lineno,
                            column: col + 1,
                            width: 1,
                            message: "unchecked `[..]` indexing (panics out of bounds) \
                                      in the concurrency core"
                                .to_string(),
                        },
                        out,
                    );
                }
            }
        }
    }
}

impl NoPanicLib {
    /// The entrypoint check: bare `.unwrap()` / `.unwrap_err()` only.
    fn check_entrypoint(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        const ENTRY_HELP: &str = "use `.expect(\"what failed and why it cannot\")` — entrypoints \
may abort, but with a message; or justify with `// lint-ok(no-panic-lib): <reason>`";
        for (idx, line) in file.code.iter().enumerate() {
            let lineno = idx + 1;
            let chars: Vec<char> = line.chars().collect();
            for method in ["unwrap", "unwrap_err"] {
                for col in find_word(line, method) {
                    let is_call = col > 0
                        && chars[..col]
                            .iter()
                            .rev()
                            .find(|c| !c.is_whitespace())
                            .is_some_and(|&c| c == '.')
                        && skip_ws(&chars, col + method.len()).is_some_and(|j| chars[j] == '(');
                    if is_call {
                        emit(
                            self.id(),
                            ENTRY_HELP,
                            file,
                            RawMatch {
                                line: lineno,
                                column: col + 1,
                                width: method.len(),
                                message: format!(
                                    "bare `.{method}()` in an entrypoint target — aborts \
                                     without saying what failed"
                                ),
                            },
                            out,
                        );
                    }
                }
            }
        }
    }
}

/// 0-based columns of `[` tokens that index an expression: the previous
/// non-whitespace char is an identifier char, `)`, or `]`. This excludes
/// attributes (`#[..]`), macro brackets (`vec![..]`, previous char `!`),
/// type positions (`: [T; N]`, `&[T]`), and slice-type returns (`-> [T]`).
/// Slice types behind `mut` or a lifetime (`&mut [u8]`, `&'a [u8]`) end in
/// an identifier char too, so the preceding *word* is inspected: `mut` and
/// lifetimes are type syntax, never an indexed expression.
fn index_sites(chars: &[char]) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let Some(j) = chars[..i].iter().rposition(|c| !c.is_whitespace()) else {
            continue;
        };
        if !super::is_expr_end(chars[j]) {
            continue;
        }
        let start = chars[..=j]
            .iter()
            .rposition(|&c| !crate::lexer::is_ident_char(c))
            .map_or(0, |k| k + 1);
        let word: String = chars[start..=j].iter().collect();
        let lifetime = start > 0 && chars[start - 1] == '\'';
        if word == "mut" || lifetime {
            continue;
        }
        out.push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::LintConfig;
    use std::path::PathBuf;

    fn run(src: &str, crate_name: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(
            PathBuf::from("mem.rs"),
            "src/lib.rs".into(),
            FileKind::Lib,
            src,
        );
        let config = LintConfig {
            no_panic_crates: vec!["core-crate".into()],
            index_check_crates: vec!["core-crate".into()],
            ..LintConfig::empty()
        };
        let ctx = FileCtx {
            crate_name,
            config: &config,
        };
        let mut out = Vec::new();
        if NoPanicLib.applies(&ctx) {
            NoPanicLib.check(&file, &ctx, &mut out);
        }
        out
    }

    #[test]
    fn unwrap_and_expect_calls_are_flagged() {
        let out = run("fn f() { a.unwrap(); b.expect(\"msg\"); }\n", "core-crate");
        assert_eq!(out.len(), 2);
        assert!(out[0].message.contains("unwrap"));
        assert!(out[1].message.contains("expect"));
    }

    #[test]
    fn unwrap_or_family_is_allowed() {
        let out = run(
            "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }\n",
            "core-crate",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn panic_macros_are_flagged_but_debug_assert_is_not() {
        let out = run(
            "fn f() { panic!(\"x\"); unreachable!(); debug_assert!(true); assert_eq!(1, 1); }\n",
            "core-crate",
        );
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn indexing_is_flagged_only_in_expression_position() {
        let out = run(
            "fn f(xs: &[u64], m: [u8; 2]) -> u64 { let v = vec![1]; xs[0] + v[1] + m[0] }\n",
            "core-crate",
        );
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out.iter().all(|f| f.message.contains("indexing")));
    }

    #[test]
    fn slice_types_behind_mut_and_lifetimes_are_not_indexing() {
        let out = run(
            "fn f<'a>(buf: &mut [u8], tail: &'a [u8]) -> &'a [u8] { &tail[1..] }\n",
            "core-crate",
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn attributes_and_test_code_are_not_flagged() {
        let src = "#[derive(Debug)]\nstruct S;\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); s[0]; }\n}\n";
        assert!(run(src, "core-crate").is_empty());
    }

    #[test]
    fn lint_ok_comment_suppresses() {
        let src = "fn f() { a.unwrap() } // lint-ok(no-panic-lib): `a` was just inserted\n";
        assert!(run(src, "core-crate").is_empty());
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        assert!(run("fn f() { a.unwrap(); }\n", "other").is_empty());
    }

    fn run_entry(src: &str, kind: FileKind) -> Vec<Finding> {
        let file =
            SourceFile::from_source(PathBuf::from("mem.rs"), "benches/b.rs".into(), kind, src);
        let config = LintConfig::empty();
        let ctx = FileCtx {
            crate_name: "any-crate-at-all",
            config: &config,
        };
        let mut out = Vec::new();
        assert!(NoPanicLib.applies(&ctx));
        NoPanicLib.check(&file, &ctx, &mut out);
        out
    }

    #[test]
    fn entrypoint_bare_unwrap_is_flagged_in_every_crate() {
        for kind in [FileKind::Bin, FileKind::Bench, FileKind::Example] {
            let out = run_entry("fn main() { f().unwrap(); }\n", kind);
            assert_eq!(out.len(), 1, "{kind:?}: {out:?}");
            assert!(out[0].message.contains("entrypoint"));
        }
    }

    #[test]
    fn entrypoint_expect_macros_and_indexing_pass() {
        let src = "fn main() {\n    f().expect(\"load config\");\n    panic!(\"fatal: {e}\");\n    let x = v[0];\n}\n";
        assert!(run_entry(src, FileKind::Bin).is_empty());
    }

    #[test]
    fn strings_do_not_trigger() {
        assert!(run("fn f() { log(\"please .unwrap() me\") }\n", "core-crate").is_empty());
    }
}
