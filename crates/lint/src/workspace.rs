//! Workspace discovery: find first-party crates and their Rust sources.
//!
//! The linter checks `src/` trees only — `tests/`, `benches/` and
//! `examples/` are test code by construction, and the `shims/` stand-ins
//! for external crates are vendored surface, not first-party code. The
//! fixture crates under `crates/lint/tests/fixtures/` are likewise never
//! part of a workspace walk (they are not workspace members and live under
//! a `tests/` tree); fixture checks point the engine at them explicitly.

use crate::source::{FileKind, SourceFile};
use crate::LintError;
use std::path::{Path, PathBuf};

/// One crate to lint: its package name and source directory.
#[derive(Debug, Clone)]
pub struct CrateSrc {
    /// Package name from `Cargo.toml`.
    pub name: String,
    /// The crate's `src/` directory.
    pub src_dir: PathBuf,
    /// Root-relative prefix for report paths (e.g. `crates/tensor`).
    pub rel_prefix: String,
}

/// Discovers first-party crates under `root`: the root package (if it has a
/// `src/`) plus every `crates/*` member. `shims/*` are excluded by design.
///
/// # Errors
///
/// [`LintError::NotAWorkspace`] when `root` has no `Cargo.toml`, and
/// [`LintError::Io`] on unreadable directories.
pub fn discover(root: &Path) -> Result<Vec<CrateSrc>, LintError> {
    if !root.join("Cargo.toml").is_file() {
        return Err(LintError::NotAWorkspace {
            root: root.display().to_string(),
        });
    }
    let mut out = Vec::new();
    if root.join("src").is_dir() {
        if let Some(name) = package_name(&root.join("Cargo.toml")) {
            out.push(CrateSrc {
                name,
                src_dir: root.join("src"),
                rel_prefix: String::new(),
            });
        }
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = read_dir_sorted(&crates_dir)?;
        entries.retain(|p| p.is_dir());
        for dir in entries {
            let manifest = dir.join("Cargo.toml");
            let src = dir.join("src");
            if !manifest.is_file() || !src.is_dir() {
                continue;
            }
            let Some(name) = package_name(&manifest) else {
                continue;
            };
            let dir_name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            out.push(CrateSrc {
                name,
                src_dir: src,
                rel_prefix: format!("crates/{dir_name}"),
            });
        }
    }
    Ok(out)
}

/// Loads every `.rs` file under the crate's `src/`, classifying binary
/// targets (`src/main.rs`, `src/bin/**`) so bin-exempt rules can skip them.
pub fn load_sources(krate: &CrateSrc) -> Result<Vec<SourceFile>, LintError> {
    let mut files = Vec::new();
    let mut stack = vec![krate.src_dir.clone()];
    while let Some(dir) = stack.pop() {
        for entry in read_dir_sorted(&dir)? {
            if entry.is_dir() {
                stack.push(entry);
                continue;
            }
            if entry.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            let rel_in_src = entry
                .strip_prefix(&krate.src_dir)
                .unwrap_or(&entry)
                .to_string_lossy()
                .replace('\\', "/");
            let kind = if rel_in_src == "main.rs" || rel_in_src.starts_with("bin/") {
                FileKind::Bin
            } else {
                FileKind::Lib
            };
            let rel = if krate.rel_prefix.is_empty() {
                format!("src/{rel_in_src}")
            } else {
                format!("{}/src/{rel_in_src}", krate.rel_prefix)
            };
            files.push(SourceFile::load(&entry, rel, kind)?);
        }
    }
    Ok(files)
}

/// Reads a directory, sorted by name for deterministic reports.
fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let iter = std::fs::read_dir(dir).map_err(|e| LintError::Io {
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    let mut entries: Vec<PathBuf> = Vec::new();
    for entry in iter {
        let entry = entry.map_err(|e| LintError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

/// Extracts `name = "..."` from a manifest's `[package]` section with a
/// plain line scan (the workspace manifests are simple enough that a TOML
/// parser would be dead weight).
fn package_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                return Some(value.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> PathBuf {
        // crates/lint/.. /.. == the workspace root.
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."))
    }

    #[test]
    fn discovers_this_workspace() {
        let crates = discover(&workspace_root()).unwrap();
        let names: Vec<&str> = crates.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"adv-lint"), "{names:?}");
        assert!(names.contains(&"adv-serve"), "{names:?}");
        assert!(names.contains(&"magnet-l1"), "{names:?}");
        assert!(
            !names.iter().any(|n| n.starts_with("shim")),
            "shims must not be linted: {names:?}"
        );
    }

    #[test]
    fn classifies_bin_files() {
        let crates = discover(&workspace_root()).unwrap();
        let core = crates.iter().find(|c| c.name == "adv-eval").unwrap();
        let files = load_sources(core).unwrap();
        let probe = files
            .iter()
            .find(|f| f.rel.ends_with("bin/serve_probe.rs"))
            .unwrap();
        assert_eq!(probe.kind, FileKind::Bin);
        let lib = files
            .iter()
            .find(|f| f.rel.ends_with("src/lib.rs"))
            .unwrap();
        assert_eq!(lib.kind, FileKind::Lib);
    }

    #[test]
    fn missing_workspace_is_a_typed_error() {
        let err = discover(Path::new("/nonexistent-lint-root")).unwrap_err();
        assert!(matches!(err, LintError::NotAWorkspace { .. }));
    }
}
