//! Workspace discovery: find first-party crates and their Rust sources.
//!
//! The scan set covers every first-party *target*: library code (`src/**`),
//! binaries (`src/main.rs`, `src/bin/**`), Criterion benches
//! (`benches/**`) and examples (`examples/**`) — for the root package and
//! every `crates/*` member. `tests/` trees are test code by construction
//! and the `shims/` stand-ins for external crates are vendored surface,
//! not first-party code; both are skipped, but skipped `.rs` files are
//! *counted* ([`count_rs_files`]) so the report can surface coverage gaps
//! instead of silently narrowing. The fixture crates under
//! `crates/lint/tests/fixtures/` live under a `tests/` tree and are never
//! part of a workspace walk; fixture checks point the engine at them
//! explicitly.

use crate::source::{FileKind, SourceFile};
use crate::LintError;
use std::path::{Path, PathBuf};

/// One crate to lint: its package name and target directories.
#[derive(Debug, Clone)]
pub struct CrateSrc {
    /// Package name from `Cargo.toml`.
    pub name: String,
    /// The crate's root directory (holding `Cargo.toml`).
    pub crate_dir: PathBuf,
    /// The crate's `src/` directory.
    pub src_dir: PathBuf,
    /// Root-relative prefix for report paths (e.g. `crates/tensor`).
    pub rel_prefix: String,
}

/// Discovers first-party crates under `root`: the root package (if it has a
/// `src/`) plus every `crates/*` member. `shims/*` are excluded by design.
///
/// # Errors
///
/// [`LintError::NotAWorkspace`] when `root` has no `Cargo.toml`, and
/// [`LintError::Io`] on unreadable directories.
pub fn discover(root: &Path) -> Result<Vec<CrateSrc>, LintError> {
    if !root.join("Cargo.toml").is_file() {
        return Err(LintError::NotAWorkspace {
            root: root.display().to_string(),
        });
    }
    let mut out = Vec::new();
    if root.join("src").is_dir() {
        if let Some(name) = package_name(&root.join("Cargo.toml")) {
            out.push(CrateSrc {
                name,
                crate_dir: root.to_path_buf(),
                src_dir: root.join("src"),
                rel_prefix: String::new(),
            });
        }
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = read_dir_sorted(&crates_dir)?;
        entries.retain(|p| p.is_dir());
        for dir in entries {
            let manifest = dir.join("Cargo.toml");
            let src = dir.join("src");
            if !manifest.is_file() || !src.is_dir() {
                continue;
            }
            let Some(name) = package_name(&manifest) else {
                continue;
            };
            let dir_name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            out.push(CrateSrc {
                name,
                crate_dir: dir.clone(),
                src_dir: src,
                rel_prefix: format!("crates/{dir_name}"),
            });
        }
    }
    Ok(out)
}

/// Loads every `.rs` file belonging to the crate's targets: `src/**`
/// (binary targets `src/main.rs` / `src/bin/**` classified so bin-aware
/// rules can adapt), plus `benches/**` and `examples/**` when present.
pub fn load_sources(krate: &CrateSrc) -> Result<Vec<SourceFile>, LintError> {
    let mut files = Vec::new();
    load_tree(krate, &krate.src_dir, "src", &mut files)?;
    for (dir, label) in [("benches", "benches"), ("examples", "examples")] {
        let tree = krate.crate_dir.join(dir);
        if tree.is_dir() {
            load_tree(krate, &tree, label, &mut files)?;
        }
    }
    Ok(files)
}

/// Walks one target tree (`src`, `benches` or `examples`) of a crate.
fn load_tree(
    krate: &CrateSrc,
    tree: &Path,
    label: &str,
    files: &mut Vec<SourceFile>,
) -> Result<(), LintError> {
    let mut stack = vec![tree.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in read_dir_sorted(&dir)? {
            if entry.is_dir() {
                stack.push(entry);
                continue;
            }
            if entry.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            let rel_in_tree = entry
                .strip_prefix(tree)
                .unwrap_or(&entry)
                .to_string_lossy()
                .replace('\\', "/");
            let kind = match label {
                "benches" => FileKind::Bench,
                "examples" => FileKind::Example,
                _ if rel_in_tree == "main.rs" || rel_in_tree.starts_with("bin/") => FileKind::Bin,
                _ => FileKind::Lib,
            };
            let rel = if krate.rel_prefix.is_empty() {
                format!("{label}/{rel_in_tree}")
            } else {
                format!("{}/{label}/{rel_in_tree}", krate.rel_prefix)
            };
            files.push(SourceFile::load(&entry, rel, kind)?);
        }
    }
    Ok(())
}

/// Counts every `.rs` file under `root`, excluding build output and VCS
/// metadata. The difference between this and the number of files the walk
/// loaded is the *skipped* count the report prints: tests, shims and
/// fixtures that are out of scope by design, visible instead of silent.
pub fn count_rs_files(root: &Path) -> Result<usize, LintError> {
    let mut count = 0usize;
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in read_dir_sorted(&dir)? {
            if entry.is_dir() {
                let name = entry
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                if name == ".git" || name == "target" || name == "node_modules" {
                    continue;
                }
                stack.push(entry);
                continue;
            }
            if entry.extension().and_then(|e| e.to_str()) == Some("rs") {
                count += 1;
            }
        }
    }
    Ok(count)
}

/// Reads a directory, sorted by name for deterministic reports.
fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let iter = std::fs::read_dir(dir).map_err(|e| LintError::Io {
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    let mut entries: Vec<PathBuf> = Vec::new();
    for entry in iter {
        let entry = entry.map_err(|e| LintError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

/// Extracts `name = "..."` from a manifest's `[package]` section with a
/// plain line scan (the workspace manifests are simple enough that a TOML
/// parser would be dead weight).
fn package_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                return Some(value.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> PathBuf {
        // crates/lint/.. /.. == the workspace root.
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."))
    }

    #[test]
    fn discovers_this_workspace() {
        let crates = discover(&workspace_root()).unwrap();
        let names: Vec<&str> = crates.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"adv-lint"), "{names:?}");
        assert!(names.contains(&"adv-serve"), "{names:?}");
        assert!(names.contains(&"magnet-l1"), "{names:?}");
        assert!(
            !names.iter().any(|n| n.starts_with("shim")),
            "shims must not be linted: {names:?}"
        );
    }

    #[test]
    fn classifies_bin_files() {
        let crates = discover(&workspace_root()).unwrap();
        let core = crates.iter().find(|c| c.name == "adv-eval").unwrap();
        let files = load_sources(core).unwrap();
        let probe = files
            .iter()
            .find(|f| f.rel.ends_with("bin/serve_probe.rs"))
            .unwrap();
        assert_eq!(probe.kind, FileKind::Bin);
        let lib = files
            .iter()
            .find(|f| f.rel.ends_with("src/lib.rs"))
            .unwrap();
        assert_eq!(lib.kind, FileKind::Lib);
    }

    #[test]
    fn scans_bench_and_example_targets() {
        let crates = discover(&workspace_root()).unwrap();
        let bench = crates.iter().find(|c| c.name == "adv-bench").unwrap();
        let files = load_sources(bench).unwrap();
        let b = files
            .iter()
            .find(|f| f.rel.ends_with("benches/serve_throughput.rs"))
            .expect("bench targets must be scanned");
        assert_eq!(b.kind, FileKind::Bench);

        let root_pkg = crates.iter().find(|c| c.name == "magnet-l1").unwrap();
        let files = load_sources(root_pkg).unwrap();
        let e = files
            .iter()
            .find(|f| f.rel == "examples/quickstart.rs")
            .expect("root examples must be scanned");
        assert_eq!(e.kind, FileKind::Example);
    }

    #[test]
    fn skipped_file_count_is_visible() {
        let root = workspace_root();
        let total = count_rs_files(&root).unwrap();
        let crates = discover(&root).unwrap();
        let scanned: usize = crates
            .iter()
            .map(|c| load_sources(c).map(|f| f.len()).unwrap_or(0))
            .sum();
        assert!(
            total > scanned,
            "tests/shims/fixtures should make total ({total}) > scanned ({scanned})"
        );
    }

    #[test]
    fn missing_workspace_is_a_typed_error() {
        let err = discover(Path::new("/nonexistent-lint-root")).unwrap_err();
        assert!(matches!(err, LintError::NotAWorkspace { .. }));
    }
}
