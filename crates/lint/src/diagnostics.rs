//! Finding type plus the rustc-style text renderer and the JSON report.

use std::fmt::Write as _;

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `no-panic-lib`.
    pub rule: &'static str,
    /// Path relative to the lint root (`/`-separated).
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (character offset).
    pub column: usize,
    /// Length of the offending token run (for the caret underline).
    pub width: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// The original source line, for the diagnostic snippet.
    pub snippet: String,
    /// Actionable fix hint.
    pub help: String,
}

/// Renders findings in a rustc-like format:
///
/// ```text
/// error[no-panic-lib]: `.unwrap()` in library code
///   --> crates/tensor/src/tensor.rs:42:17
///    |
/// 42 |         let x = v.unwrap();
///    |                  ^^^^^^^^
///    = help: return a typed error, or allow with `// lint-ok(no-panic-lib): <reason>`
/// ```
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "error[{}]: {}", f.rule, f.message);
        let _ = writeln!(out, "  --> {}:{}:{}", f.path, f.line, f.column);
        let line_no = f.line.to_string();
        let gutter = " ".repeat(line_no.len());
        let _ = writeln!(out, "{gutter} |");
        let _ = writeln!(out, "{line_no} | {}", f.snippet);
        let caret_pad: String = f
            .snippet
            .chars()
            .take(f.column.saturating_sub(1))
            .map(|c| if c == '\t' { '\t' } else { ' ' })
            .collect();
        let _ = writeln!(out, "{gutter} | {caret_pad}{}", "^".repeat(f.width.max(1)));
        let _ = writeln!(out, "{gutter} = help: {}", f.help);
        let _ = writeln!(out);
    }
    out
}

/// Serializes the report as one JSON object (no external deps; same
/// hand-rolled style as the `adv-obs` exporters).
pub fn render_json(
    findings: &[Finding],
    files_checked: usize,
    skipped: usize,
    allows: usize,
) -> String {
    let mut out = String::from("{\"version\":1,\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"path\":{},\"line\":{},\"column\":{},\"message\":{},\"help\":{}}}",
            json_string(f.rule),
            json_string(&f.path),
            f.line,
            f.column,
            json_string(&f.message),
            json_string(&f.help),
        );
    }
    let _ = write!(
        out,
        "],\"summary\":{{\"files_checked\":{},\"skipped\":{},\"findings\":{},\"allows\":{}}}}}",
        files_checked,
        skipped,
        findings.len(),
        allows
    );
    out
}

/// JSON-escapes and quotes a string.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            rule: "no-panic-lib",
            path: "crates/x/src/lib.rs".into(),
            line: 42,
            column: 19,
            width: 8,
            message: "`.unwrap()` in library code".into(),
            snippet: "        let x = v.unwrap();".into(),
            help: "return a typed error".into(),
        }
    }

    #[test]
    fn text_format_has_location_snippet_and_caret() {
        let text = render_text(&[sample()]);
        assert!(text.contains("error[no-panic-lib]:"), "{text}");
        assert!(text.contains("--> crates/x/src/lib.rs:42:19"), "{text}");
        assert!(text.contains("42 |         let x = v.unwrap();"), "{text}");
        assert!(text.contains("^^^^^^^^"), "{text}");
        // Caret column lines up under the dot before `unwrap`.
        let caret_line = text.lines().find(|l| l.contains('^')).unwrap();
        assert_eq!(caret_line.find('^').unwrap(), " | ".len() + 2 + 18);
    }

    #[test]
    fn json_report_shape() {
        let json = render_json(&[sample()], 7, 2, 3);
        assert!(json.contains("\"version\":1"), "{json}");
        assert!(json.contains("\"rule\":\"no-panic-lib\""), "{json}");
        assert!(json.contains("\"line\":42"), "{json}");
        assert!(
            json.contains(
                "\"summary\":{\"files_checked\":7,\"skipped\":2,\"findings\":1,\"allows\":3}"
            ),
            "{json}"
        );
    }

    #[test]
    fn empty_report_is_valid() {
        let json = render_json(&[], 0, 0, 0);
        assert!(json.starts_with("{\"version\":1,\"findings\":[]"), "{json}");
    }
}
