//! Pass 1 of the two-pass analysis: the workspace symbol table.
//!
//! One walk over every scanned file extracts the inventory the cross-file
//! rules reason about:
//!
//! - **atomic fields** — `name: AtomicXxx` declarations inside structs (or
//!   `static NAME: AtomicXxx`), keyed `Struct.field`;
//! - **atomic sites** — every `.load/.store/.swap/.compare_exchange/
//!   .fetch_*` call whose argument list names an `Ordering::` variant, with
//!   the receiver field resolved token-level (`self.state.load(..)` →
//!   `state`; a call-returning receiver stays unresolved and is treated
//!   conservatively);
//! - **unsafe sites** — every `unsafe` block/fn/impl/trait outside test
//!   code, with whether a `// SAFETY:` contract sits on or directly above
//!   it, plus which crates still carry `#![forbid(unsafe_code)]`;
//! - **kernel inventory** — the `KernelKind` enum's variants vs the set of
//!   variants actually passed to `KernelScope::enter`, and the body extent
//!   of every function that opens a kernel scope (for the hot-path
//!   allocation rule);
//! - **metric registrations** — string-literal names passed to
//!   `.counter("..")`/`.gauge(..)`/`.histogram(..)` in library code, vs the
//!   names documented in `DESIGN.md`'s machine-readable schema block
//!   (`<!-- metric-schema:start/end -->`).
//!
//! The table also *classifies* atomic fields: a field whose every
//! non-test access is `Relaxed` and drawn from the pure-accumulator op set
//! (`load`, `fetch_add`, `fetch_sub`, `fetch_max`, `fetch_min`) publishes
//! nothing and can be proven benign without a per-site comment — the
//! `ordering-justified` rule exempts those sites, and stale justification
//! comments on them become findings.

use crate::lexer::is_ident_char;
use crate::source::{FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// The atomic methods that take `Ordering` arguments.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
];

/// Ops that never publish and never consume: a field touched only by these
/// (all `Relaxed`) is a pure accumulator.
const COUNTER_OPS: &[&str] = &["load", "fetch_add", "fetch_sub", "fetch_max", "fetch_min"];

/// Atomic integer/bool/ptr type names (suffix after `Atomic`).
const ATOMIC_TYS: &[&str] = &[
    "Bool", "U8", "U16", "U32", "U64", "Usize", "I8", "I16", "I32", "I64", "Isize", "Ptr",
];

/// One `field: AtomicXxx` (or `static NAME: AtomicXxx`) declaration.
#[derive(Debug, Clone)]
pub struct AtomicField {
    /// Enclosing struct name, or `static` for file-level statics.
    pub owner: String,
    /// Field (or static) name.
    pub field: String,
    /// The atomic type name (e.g. `AtomicU64`).
    pub ty: String,
    /// Report path of the declaring file.
    pub path: String,
    /// 1-based declaration line.
    pub line: usize,
}

/// One atomic load/store/RMW call site carrying `Ordering` arguments.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// Receiver field name when the receiver is a plain `path.field` chain;
    /// `None` for call-returning receivers (treated conservatively).
    pub field: Option<String>,
    /// Method name (`load`, `store`, `fetch_add`, ...).
    pub op: String,
    /// Every `Ordering::` variant in the call's argument list.
    pub orderings: Vec<String>,
    /// Positions of the `Ordering` tokens: `(1-based line, 0-based col)`.
    pub ordering_tokens: Vec<(usize, usize)>,
    /// Report path.
    pub path: String,
    /// 1-based line of the method token.
    pub line: usize,
    /// 0-based column of the method token.
    pub column: usize,
}

/// What kind of `unsafe` a site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { .. }` block.
    Block,
    /// `unsafe fn`.
    Fn,
    /// `unsafe impl`.
    Impl,
    /// `unsafe trait`.
    Trait,
}

/// One `unsafe` occurrence outside test code.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Which syntactic form.
    pub kind: UnsafeKind,
    /// Whether a `SAFETY:` comment sits on the line or directly above it.
    pub has_safety: bool,
    /// Crate the site lives in.
    pub crate_name: String,
    /// Report path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 0-based column.
    pub column: usize,
}

/// A `KernelKind` enum variant declaration.
#[derive(Debug, Clone)]
pub struct KernelVariant {
    /// Variant name.
    pub name: String,
    /// Report path of the enum.
    pub path: String,
    /// 1-based line of the variant.
    pub line: usize,
}

/// The body extent of a function that opens a `KernelScope`, with the
/// position where the scope starts (allocation checks apply after it).
#[derive(Debug, Clone)]
pub struct KernelFn {
    /// Report path.
    pub path: String,
    /// 1-based line of the `KernelScope::enter` call.
    pub enter_line: usize,
    /// 1-based first line of the measured region (after the enter call).
    pub region_start: usize,
    /// 0-based column on `region_start` where the region begins (tokens
    /// before it on that line are the enter call's own arguments).
    pub region_start_col: usize,
    /// 1-based last line of the function body.
    pub region_end: usize,
}

/// One metric registered under a string-literal name in library code.
#[derive(Debug, Clone)]
pub struct MetricReg {
    /// The metric name.
    pub name: String,
    /// Report path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
}

/// A crate-level summary used by the unsafe audit.
#[derive(Debug, Clone)]
pub struct CrateUnsafeStatus {
    /// Crate package name.
    pub name: String,
    /// Report path of the crate's `lib.rs` (empty when the crate has no
    /// library target).
    pub lib_path: String,
    /// Whether `lib.rs` carries `#![forbid(unsafe_code)]`.
    pub forbids_unsafe: bool,
}

/// The workspace symbol table — everything pass 2 reasons about.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Atomic field/static declarations, keyed `owner.field` in order.
    pub atomic_fields: Vec<AtomicField>,
    /// Every atomic op site with `Ordering` arguments (non-test code).
    pub atomic_sites: Vec<AtomicSite>,
    /// Field names proven to be pure `Relaxed` accumulators.
    pub relaxed_counters: BTreeSet<String>,
    /// `Ordering` token positions `(path, line, col)` on proven-counter
    /// sites: `ordering-justified` needs no comment there.
    pub exempt_ordering_tokens: BTreeSet<(String, usize, usize)>,
    /// `unsafe` sites (non-test code).
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Per-crate `forbid(unsafe_code)` status.
    pub crate_unsafe: Vec<CrateUnsafeStatus>,
    /// Crates cleared for `unsafe` by the committed policy file, with the
    /// recorded reason.
    pub unsafe_policy: BTreeMap<String, String>,
    /// `KernelKind` variant declarations.
    pub kernel_variants: Vec<KernelVariant>,
    /// Variants actually passed to `KernelScope::enter(KernelKind::X, ..)`.
    pub entered_kinds: BTreeSet<String>,
    /// Functions that open a kernel scope (hot-path allocation domain).
    pub kernel_fns: Vec<KernelFn>,
    /// Metric registrations in library code.
    pub metric_regs: Vec<MetricReg>,
    /// Metric names documented in `DESIGN.md`'s schema block → 1-based
    /// line in `DESIGN.md`.
    pub doc_metrics: BTreeMap<String, usize>,
    /// Whether a `DESIGN.md` with a schema block was found (the
    /// `dead-metric` rule only runs when it was).
    pub has_metric_schema: bool,
}

impl SymbolTable {
    /// Builds the table over every scanned file. `root` locates the
    /// optional side inputs: `unsafe_policy.txt` and `DESIGN.md`.
    pub fn build(root: &Path, files: &[(&str, &[SourceFile])]) -> SymbolTable {
        let mut table = SymbolTable {
            unsafe_policy: parse_unsafe_policy(root),
            ..SymbolTable::default()
        };
        let (doc_metrics, has_schema) = parse_metric_schema(root);
        table.doc_metrics = doc_metrics;
        table.has_metric_schema = has_schema;

        for (crate_name, crate_files) in files {
            let mut status = CrateUnsafeStatus {
                name: (*crate_name).to_string(),
                lib_path: String::new(),
                forbids_unsafe: false,
            };
            for file in *crate_files {
                let flat = Flat::new(file);
                collect_atomic_fields(&flat, &mut table.atomic_fields);
                collect_atomic_sites(&flat, &mut table.atomic_sites);
                collect_unsafe(&flat, crate_name, &mut table.unsafe_sites);
                collect_kernels(&flat, &mut table);
                if file.kind == FileKind::Lib {
                    collect_metrics(&flat, &mut table.metric_regs);
                }
                if file.rel.ends_with("src/lib.rs") {
                    status.lib_path = file.rel.clone();
                    // Scrubbed lines, so the attribute mentioned in a
                    // comment or string cannot satisfy the audit.
                    status.forbids_unsafe = file
                        .code
                        .iter()
                        .any(|l| l.contains("#![forbid(unsafe_code)]"));
                }
            }
            table.crate_unsafe.push(status);
        }
        table.classify_counters();
        table
    }

    /// Derives `relaxed_counters` and the exempt token set from the raw
    /// field/site inventory.
    fn classify_counters(&mut self) {
        let declared: BTreeSet<&str> = self
            .atomic_fields
            .iter()
            .map(|f| f.field.as_str())
            .collect();
        let mut by_field: BTreeMap<&str, Vec<&AtomicSite>> = BTreeMap::new();
        for site in &self.atomic_sites {
            if let Some(field) = &site.field {
                if declared.contains(field.as_str()) {
                    by_field.entry(field.as_str()).or_default().push(site);
                }
            }
        }
        let mut counters = BTreeSet::new();
        for (field, sites) in &by_field {
            let pure = sites.iter().all(|s| {
                COUNTER_OPS.contains(&s.op.as_str())
                    && !s.orderings.is_empty()
                    && s.orderings.iter().all(|o| o == "Relaxed")
            });
            if pure && !sites.is_empty() {
                counters.insert((*field).to_string());
            }
        }
        let mut exempt = BTreeSet::new();
        for site in &self.atomic_sites {
            let is_counter = site
                .field
                .as_ref()
                .is_some_and(|f| counters.contains(f.as_str()));
            if is_counter {
                for &(line, col) in &site.ordering_tokens {
                    exempt.insert((site.path.clone(), line, col));
                }
            }
        }
        self.relaxed_counters = counters;
        self.exempt_ordering_tokens = exempt;
    }

    /// Sites grouped per resolved field name (declared fields only).
    pub fn sites_by_field(&self) -> BTreeMap<&str, Vec<&AtomicSite>> {
        let declared: BTreeSet<&str> = self
            .atomic_fields
            .iter()
            .map(|f| f.field.as_str())
            .collect();
        let mut map: BTreeMap<&str, Vec<&AtomicSite>> = BTreeMap::new();
        for site in &self.atomic_sites {
            if let Some(field) = &site.field {
                if declared.contains(field.as_str()) {
                    map.entry(field.as_str()).or_default().push(site);
                }
            }
        }
        map
    }

    /// Kernel variants never passed to `KernelScope::enter` anywhere.
    pub fn dead_kernel_variants(&self) -> Vec<&KernelVariant> {
        self.kernel_variants
            .iter()
            .filter(|v| !self.entered_kinds.contains(&v.name))
            .collect()
    }
}

/// A file flattened to one char sequence with offset ↔ line/col maps, so
/// multi-line constructs (call argument lists, brace extents) can be
/// matched without per-line special cases. Operates on scrubbed code —
/// which is position-identical to the original — and keeps the original
/// text around for string-literal extraction.
struct Flat<'a> {
    file: &'a SourceFile,
    chars: Vec<char>,
    orig: Vec<char>,
    /// 0-based line index per char offset.
    line_of: Vec<usize>,
    /// Char offset of each 0-based line's start.
    line_start: Vec<usize>,
}

impl<'a> Flat<'a> {
    fn new(file: &'a SourceFile) -> Flat<'a> {
        let joined = file.code.join("\n");
        let orig_joined = file.lines.join("\n");
        let chars: Vec<char> = joined.chars().collect();
        let orig: Vec<char> = orig_joined.chars().collect();
        let mut line_of = Vec::with_capacity(chars.len() + 1);
        let mut line_start = vec![0usize];
        let mut line = 0usize;
        for (i, &c) in chars.iter().enumerate() {
            line_of.push(line);
            if c == '\n' {
                line += 1;
                line_start.push(i + 1);
            }
        }
        line_of.push(line);
        Flat {
            file,
            chars,
            orig,
            line_of,
            line_start,
        }
    }

    /// 1-based line of a char offset.
    fn line(&self, offset: usize) -> usize {
        self.line_of[offset.min(self.line_of.len() - 1)] + 1
    }

    /// 0-based column of a char offset.
    fn col(&self, offset: usize) -> usize {
        let line = self.line_of[offset.min(self.line_of.len() - 1)];
        offset - self.line_start[line]
    }

    /// `true` when the offset is inside test-marked code.
    fn is_test(&self, offset: usize) -> bool {
        self.file.is_test_line(self.line(offset))
    }

    /// Every word-boundary occurrence of `word` in the scrubbed text.
    fn word_sites(&self, word: &str) -> Vec<usize> {
        word_sites_in(&self.chars, word)
    }
}

/// Word-boundary search over a char slice.
fn word_sites_in(chars: &[char], word: &str) -> Vec<usize> {
    let needle: Vec<char> = word.chars().collect();
    let mut out = Vec::new();
    if needle.is_empty() || chars.len() < needle.len() {
        return out;
    }
    for start in 0..=chars.len() - needle.len() {
        if chars[start..start + needle.len()] != needle[..] {
            continue;
        }
        let before_ok = start == 0 || !is_ident_char(chars[start - 1]);
        let after = start + needle.len();
        let after_ok = after >= chars.len() || !is_ident_char(chars[after]);
        if before_ok && after_ok {
            out.push(start);
        }
    }
    out
}

/// Skips whitespace forward; returns the next non-ws offset, if any.
fn fwd_ws(chars: &[char], mut i: usize) -> Option<usize> {
    while i < chars.len() {
        if !chars[i].is_whitespace() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Skips whitespace backward from `i` (exclusive); returns the last
/// non-ws offset before `i`, if any.
fn back_ws(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !chars[j].is_whitespace() {
            return Some(j);
        }
    }
    None
}

/// Reads the identifier ending at `end` (inclusive), returning its start.
fn ident_start(chars: &[char], end: usize) -> usize {
    let mut s = end;
    while s > 0 && is_ident_char(chars[s - 1]) {
        s -= 1;
    }
    s
}

/// Reads the identifier starting at `start`.
fn ident_at(chars: &[char], start: usize) -> String {
    chars[start..]
        .iter()
        .take_while(|c| is_ident_char(**c))
        .collect()
}

/// Given an opening delimiter offset, returns the offset just past its
/// matching close (`()` / `{}` / `[]` chosen by the char at `open`).
fn delim_extent(chars: &[char], open: usize) -> usize {
    let (o, c) = match chars.get(open) {
        Some('(') => ('(', ')'),
        Some('{') => ('{', '}'),
        Some('[') => ('[', ']'),
        _ => return open + 1,
    };
    let mut depth = 0i32;
    let mut i = open;
    while i < chars.len() {
        if chars[i] == o {
            depth += 1;
        } else if chars[i] == c {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    chars.len()
}

/// Collects `name: AtomicXxx` declarations (struct fields and statics).
/// Initializer expressions (`AtomicU64::new(0)`) are excluded by requiring
/// the type name not be followed by `::`.
fn collect_atomic_fields(flat: &Flat<'_>, out: &mut Vec<AtomicField>) {
    // Struct extents for owner attribution.
    let mut structs: Vec<(String, usize, usize)> = Vec::new();
    for site in flat.word_sites("struct") {
        let Some(n0) = fwd_ws(&flat.chars, site + "struct".len()) else {
            continue;
        };
        let name = ident_at(&flat.chars, n0);
        if name.is_empty() {
            continue;
        }
        // Find the body `{` before any `;` (unit/tuple structs have none).
        let mut i = n0 + name.len();
        let mut open = None;
        while i < flat.chars.len() {
            match flat.chars[i] {
                '{' => {
                    open = Some(i);
                    break;
                }
                ';' => break,
                _ => {}
            }
            i += 1;
        }
        if let Some(open) = open {
            structs.push((name, open, delim_extent(&flat.chars, open)));
        }
    }

    for ty_suffix in ATOMIC_TYS {
        let ty = format!("Atomic{ty_suffix}");
        for site in flat.word_sites(&ty) {
            if flat.is_test(site) {
                continue;
            }
            // `AtomicU64::new(..)` is an expression, not a declaration.
            let after = site + ty.len();
            if flat.chars.get(after) == Some(&':') && flat.chars.get(after + 1) == Some(&':') {
                continue;
            }
            // Walk back over the type path (`std::sync::atomic::`), then
            // expect a single `:` preceded by the field name.
            let mut j = site;
            while let Some(p) = back_ws(&flat.chars, j) {
                if p == 0 || flat.chars[p] != ':' || flat.chars[p - 1] != ':' {
                    break;
                }
                let seg_end = match back_ws(&flat.chars, p - 1) {
                    Some(e) if is_ident_char(flat.chars[e]) => e,
                    _ => break,
                };
                j = ident_start(&flat.chars, seg_end);
            }
            let Some(colon) = back_ws(&flat.chars, j) else {
                continue;
            };
            if flat.chars[colon] != ':' || (colon >= 1 && flat.chars[colon - 1] == ':') {
                continue;
            }
            let Some(name_end) = back_ws(&flat.chars, colon) else {
                continue;
            };
            if !is_ident_char(flat.chars[name_end]) {
                continue;
            }
            let name_start = ident_start(&flat.chars, name_end);
            let field = ident_at(&flat.chars, name_start);
            if field.is_empty() || field == "mut" {
                continue;
            }
            // Owner: innermost struct whose body contains the site, else a
            // `static` keyword on the declaration's statement.
            let owner = structs
                .iter()
                .filter(|(_, open, close)| *open < site && site < *close)
                .max_by_key(|(_, open, _)| *open)
                .map(|(name, _, _)| name.clone());
            let owner = match owner {
                Some(o) => o,
                None => {
                    // Require `static` before the field name on the same
                    // statement, else this is a local/param annotation.
                    let before: String = {
                        let from = name_start.saturating_sub(24);
                        flat.chars[from..name_start].iter().collect()
                    };
                    if before.contains("static") {
                        "static".to_string()
                    } else {
                        continue;
                    }
                }
            };
            out.push(AtomicField {
                owner,
                field,
                ty: ty.clone(),
                path: flat.file.rel.clone(),
                line: flat.line(site),
            });
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
}

/// Collects every atomic op call that names an `Ordering::` variant.
fn collect_atomic_sites(flat: &Flat<'_>, out: &mut Vec<AtomicSite>) {
    for op in ATOMIC_OPS {
        for site in flat.word_sites(op) {
            if flat.is_test(site) {
                continue;
            }
            // Must be a `.op(` method call.
            let Some(dot) = back_ws(&flat.chars, site) else {
                continue;
            };
            if flat.chars[dot] != '.' {
                continue;
            }
            let Some(open) = fwd_ws(&flat.chars, site + op.len()) else {
                continue;
            };
            if flat.chars[open] != '(' {
                continue;
            }
            let close = delim_extent(&flat.chars, open);
            // Orderings inside the argument list.
            let args = &flat.chars[open..close];
            let mut orderings = Vec::new();
            let mut tokens = Vec::new();
            for w in word_sites_in(args, "Ordering") {
                let abs = open + w;
                let after = abs + "Ordering".len();
                if flat.chars.get(after) != Some(&':') || flat.chars.get(after + 1) != Some(&':') {
                    continue;
                }
                let Some(v0) = fwd_ws(&flat.chars, after + 2) else {
                    continue;
                };
                let variant = ident_at(&flat.chars, v0);
                if ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"].contains(&variant.as_str())
                {
                    orderings.push(variant);
                    tokens.push((flat.line(abs), flat.col(abs)));
                }
            }
            if orderings.is_empty() {
                continue;
            }
            // Receiver: the ident chain segment directly before the dot.
            let field = back_ws(&flat.chars, dot).and_then(|e| {
                if is_ident_char(flat.chars[e]) {
                    let start = ident_start(&flat.chars, e);
                    let name = ident_at(&flat.chars, start);
                    if name == "self" {
                        None
                    } else {
                        Some(name)
                    }
                } else {
                    None
                }
            });
            out.push(AtomicSite {
                field,
                op: (*op).to_string(),
                orderings,
                ordering_tokens: tokens,
                path: flat.file.rel.clone(),
                line: flat.line(site),
                column: flat.col(site),
            });
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, a.column).cmp(&(&b.path, b.line, b.column)));
}

/// Collects `unsafe` sites with their `SAFETY:` status.
fn collect_unsafe(flat: &Flat<'_>, crate_name: &str, out: &mut Vec<UnsafeSite>) {
    for site in flat.word_sites("unsafe") {
        if flat.is_test(site) {
            continue;
        }
        let kind = match fwd_ws(&flat.chars, site + "unsafe".len()) {
            Some(n) => match flat.chars[n] {
                '{' => UnsafeKind::Block,
                _ => match ident_at(&flat.chars, n).as_str() {
                    "fn" => UnsafeKind::Fn,
                    "impl" => UnsafeKind::Impl,
                    "trait" => UnsafeKind::Trait,
                    // `unsafe extern`, attribute args, etc. — still audit.
                    _ => UnsafeKind::Block,
                },
            },
            None => UnsafeKind::Block,
        };
        let line = flat.line(site);
        out.push(UnsafeSite {
            kind,
            has_safety: has_safety_comment(flat.file, line),
            crate_name: crate_name.to_string(),
            path: flat.file.rel.clone(),
            line,
            column: flat.col(site),
        });
    }
}

/// `true` when a `SAFETY:` comment sits on `line` or in the contiguous
/// comment block directly above it.
fn has_safety_comment(file: &SourceFile, line: usize) -> bool {
    let has_on = |l: usize| {
        file.comments
            .iter()
            .any(|c| c.line == l && c.text.contains("SAFETY:"))
    };
    if has_on(line) {
        return true;
    }
    // Walk up through comment-only lines (scrubbed code blank, original
    // non-empty).
    let mut l = line;
    while l > 1 {
        l -= 1;
        let code_blank = file
            .code
            .get(l - 1)
            .map(|c| c.trim().is_empty())
            .unwrap_or(true);
        let orig_blank = file
            .lines
            .get(l - 1)
            .map(|c| c.trim().is_empty())
            .unwrap_or(true);
        if !code_blank || orig_blank {
            return false;
        }
        if has_on(l) {
            return true;
        }
        // A comment body line (inside a block comment) has blank code but
        // no comment *start* — keep walking; the start line carries the
        // text and will be checked when reached.
        let is_comment_region = file
            .comments
            .iter()
            .any(|c| c.line <= l && c.text.lines().count() + c.line > l);
        if !is_comment_region && !has_on(l) {
            return false;
        }
    }
    false
}

/// Collects the `KernelKind` enum's variants, every variant passed to
/// `KernelScope::enter`, and the measured region of each entering
/// function.
fn collect_kernels(flat: &Flat<'_>, table: &mut SymbolTable) {
    // Variant declarations: `enum KernelKind { .. }`.
    for site in flat.word_sites("enum") {
        let Some(n0) = fwd_ws(&flat.chars, site + "enum".len()) else {
            continue;
        };
        if ident_at(&flat.chars, n0) != "KernelKind" {
            continue;
        }
        let mut i = n0 + "KernelKind".len();
        while i < flat.chars.len() && flat.chars[i] != '{' {
            i += 1;
        }
        if i >= flat.chars.len() {
            continue;
        }
        let close = delim_extent(&flat.chars, i);
        // Variants: idents at depth 1 whose previous non-ws char is `{`,
        // `,` or `]` (closing an attribute).
        let mut j = i + 1;
        while j < close.saturating_sub(1) {
            let c = flat.chars[j];
            if c == '#' {
                // Skip `#[..]` attribute.
                if let Some(b) = fwd_ws(&flat.chars, j + 1) {
                    if flat.chars[b] == '[' {
                        j = delim_extent(&flat.chars, b);
                        continue;
                    }
                }
            }
            if is_ident_char(c) && (j == 0 || !is_ident_char(flat.chars[j - 1])) {
                let name = ident_at(&flat.chars, j);
                let end = j + name.len();
                // A plain variant is followed by `,`, the closing brace, or an
                // explicit discriminant (`Variant = 3,`); data-carrying
                // variants would be followed by `(`/`{`. Numeric tokens are
                // discriminants, not variant names.
                let next = fwd_ws(&flat.chars, end);
                let ok = match next {
                    Some(n) => {
                        flat.chars[n] == ','
                            || n + 1 >= close
                            || (flat.chars[n] == '=' && flat.chars.get(n + 1) != Some(&'='))
                    }
                    None => true,
                };
                let is_name = name.chars().next().is_some_and(|c| !c.is_ascii_digit());
                if ok && is_name {
                    table.kernel_variants.push(KernelVariant {
                        name,
                        path: flat.file.rel.clone(),
                        line: flat.line(j),
                    });
                }
                j = end;
                continue;
            }
            j += 1;
        }
    }

    // Enter sites + enclosing function extents.
    let mut fn_extents: Option<Vec<(usize, usize)>> = None;
    for site in flat.word_sites("KernelScope") {
        let after = site + "KernelScope".len();
        if flat.chars.get(after) != Some(&':') || flat.chars.get(after + 1) != Some(&':') {
            continue;
        }
        let Some(m0) = fwd_ws(&flat.chars, after + 2) else {
            continue;
        };
        if ident_at(&flat.chars, m0) != "enter" {
            continue;
        }
        let Some(open) = fwd_ws(&flat.chars, m0 + "enter".len()) else {
            continue;
        };
        if flat.chars[open] != '(' {
            continue;
        }
        let close = delim_extent(&flat.chars, open);
        let args = &flat.chars[open..close];
        for w in word_sites_in(args, "KernelKind") {
            let abs = open + w + "KernelKind".len();
            if flat.chars.get(abs) == Some(&':') && flat.chars.get(abs + 1) == Some(&':') {
                if let Some(v0) = fwd_ws(&flat.chars, abs + 2) {
                    let variant = ident_at(&flat.chars, v0);
                    if !variant.is_empty() && !flat.is_test(site) {
                        table.entered_kinds.insert(variant);
                    }
                }
            }
        }
        if flat.is_test(site) {
            continue;
        }
        // Measured region: from past the enter call to the end of the
        // innermost enclosing fn body.
        let extents = fn_extents.get_or_insert_with(|| fn_body_extents(&flat.chars));
        if let Some(&(_, body_close)) = extents
            .iter()
            .filter(|(o, c)| *o < site && site < *c)
            .max_by_key(|(o, _)| *o)
        {
            table.kernel_fns.push(KernelFn {
                path: flat.file.rel.clone(),
                enter_line: flat.line(site),
                region_start: flat.line(close),
                region_start_col: flat.col(close),
                region_end: flat.line(body_close),
            });
        }
    }
}

/// `(open, close)` body brace offsets of every `fn` in the file.
fn fn_body_extents(chars: &[char]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for site in word_sites_in(chars, "fn") {
        let mut i = site + 2;
        let mut open = None;
        while i < chars.len() {
            match chars[i] {
                '{' => {
                    open = Some(i);
                    break;
                }
                // Trait method declarations end without a body.
                ';' => break,
                _ => {}
            }
            i += 1;
        }
        if let Some(open) = open {
            out.push((open, delim_extent(chars, open) - 1));
        }
    }
    out
}

/// Collects string-literal metric registrations: `.counter("name")` etc.
fn collect_metrics(flat: &Flat<'_>, out: &mut Vec<MetricReg>) {
    const METRIC_FNS: &[&str] = &[
        "counter",
        "gauge",
        "histogram",
        "try_counter",
        "try_gauge",
        "try_histogram",
        "try_histogram_with",
    ];
    for f in METRIC_FNS {
        for site in flat.word_sites(f) {
            if flat.is_test(site) {
                continue;
            }
            let Some(dot) = back_ws(&flat.chars, site) else {
                continue;
            };
            if flat.chars[dot] != '.' {
                continue;
            }
            let Some(open) = fwd_ws(&flat.chars, site + f.len()) else {
                continue;
            };
            if flat.chars[open] != '(' {
                continue;
            }
            // The scrubbed text blanks literals; read the name out of the
            // original text at the same offsets.
            let Some(q0) = fwd_ws(&flat.orig, open + 1) else {
                continue;
            };
            if flat.orig.get(q0) != Some(&'"') {
                continue;
            }
            let mut name = String::new();
            let mut k = q0 + 1;
            while k < flat.orig.len() && flat.orig[k] != '"' {
                name.push(flat.orig[k]);
                k += 1;
            }
            if !name.is_empty() {
                out.push(MetricReg {
                    name,
                    path: flat.file.rel.clone(),
                    line: flat.line(site),
                });
            }
        }
    }
}

/// Parses `unsafe_policy.txt` at the workspace root: `crate-name: reason`
/// lines, `#` comments. Missing file = empty policy (no crate may use
/// `unsafe`).
fn parse_unsafe_policy(root: &Path) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(root.join("unsafe_policy.txt")) else {
        return out;
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, reason)) = line.split_once(':') {
            out.insert(name.trim().to_string(), reason.trim().to_string());
        }
    }
    out
}

/// Parses the metric schema block out of `DESIGN.md`: backticked names
/// between `<!-- metric-schema:start -->` and `<!-- metric-schema:end -->`.
fn parse_metric_schema(root: &Path) -> (BTreeMap<String, usize>, bool) {
    let mut out = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(root.join("DESIGN.md")) else {
        return (out, false);
    };
    let mut in_block = false;
    let mut saw_block = false;
    for (idx, line) in text.lines().enumerate() {
        if line.contains("metric-schema:start") {
            in_block = true;
            saw_block = true;
            continue;
        }
        if line.contains("metric-schema:end") {
            in_block = false;
            continue;
        }
        if !in_block {
            continue;
        }
        // Backticked tokens that look like metric names.
        for (i, chunk) in line.split('`').enumerate() {
            // Odd chunks are inside backticks.
            if i % 2 == 1
                && chunk.contains('.')
                && !chunk.is_empty()
                && chunk
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
            {
                out.entry(chunk.to_string()).or_insert(idx + 1);
            }
        }
    }
    (out, saw_block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};
    use std::path::PathBuf;

    fn table_for(src: &str) -> SymbolTable {
        let files = vec![SourceFile::from_source(
            PathBuf::from("mem.rs"),
            "crates/x/src/lib.rs".into(),
            FileKind::Lib,
            src,
        )];
        SymbolTable::build(Path::new("/nonexistent-table-root"), &[("x", &files)])
    }

    #[test]
    fn atomic_fields_are_keyed_by_struct() {
        let t = table_for(
            "struct Breaker {\n    state: AtomicU8,\n    pub failures: AtomicU32,\n}\nstatic HITS: AtomicU64 = AtomicU64::new(0);\n",
        );
        let keys: Vec<String> = t
            .atomic_fields
            .iter()
            .map(|f| format!("{}.{}", f.owner, f.field))
            .collect();
        assert_eq!(
            keys,
            vec!["Breaker.state", "Breaker.failures", "static.HITS"],
            "{:?}",
            t.atomic_fields
        );
    }

    #[test]
    fn initializer_expressions_are_not_declarations() {
        let t = table_for(
            "struct S { c: AtomicU64 }\nimpl S {\n    fn new() -> S { S { c: AtomicU64::new(0) } }\n}\n",
        );
        assert_eq!(t.atomic_fields.len(), 1, "{:?}", t.atomic_fields);
    }

    #[test]
    fn sites_resolve_receiver_fields_and_orderings() {
        let t = table_for(
            "struct S { c: AtomicU64 }\nimpl S {\n    fn bump(&self) { self.c.fetch_add(1, Ordering::Relaxed); }\n    fn read(&self) -> u64 { self.c.load(Ordering::Relaxed) }\n}\n",
        );
        assert_eq!(t.atomic_sites.len(), 2);
        assert!(t
            .atomic_sites
            .iter()
            .all(|s| s.field.as_deref() == Some("c")));
        assert!(t.relaxed_counters.contains("c"), "{:?}", t.relaxed_counters);
    }

    #[test]
    fn store_disqualifies_counter_classification() {
        let t = table_for(
            "struct S { level: AtomicU8 }\nimpl S {\n    fn set(&self, v: u8) { self.level.store(v, Ordering::Relaxed); }\n    fn get(&self) -> u8 { self.level.load(Ordering::Relaxed) }\n}\n",
        );
        assert!(t.relaxed_counters.is_empty(), "{:?}", t.relaxed_counters);
    }

    #[test]
    fn multi_line_cas_collects_both_orderings() {
        let t = table_for(
            "struct S { state: AtomicU8 }\nimpl S {\n    fn go(&self) {\n        let _ = self.state.compare_exchange(\n            0,\n            1,\n            Ordering::AcqRel,\n            Ordering::Acquire,\n        );\n    }\n}\n",
        );
        assert_eq!(t.atomic_sites.len(), 1);
        assert_eq!(t.atomic_sites[0].orderings, vec!["AcqRel", "Acquire"]);
        assert_eq!(t.atomic_sites[0].ordering_tokens.len(), 2);
    }

    #[test]
    fn unsafe_sites_and_safety_comments() {
        let t = table_for(
            "fn a() {\n    // SAFETY: bounds checked above\n    unsafe { go(); }\n}\nfn b() {\n    unsafe { go(); }\n}\n",
        );
        assert_eq!(t.unsafe_sites.len(), 2);
        assert!(t.unsafe_sites[0].has_safety);
        assert!(!t.unsafe_sites[1].has_safety);
    }

    #[test]
    fn kernel_variants_and_enter_sites() {
        let t = table_for(
            "pub enum KernelKind {\n    MatMul,\n    Ghost,\n}\nfn hot() {\n    let _p = KernelScope::enter(KernelKind::MatMul, || Work::matmul(1, 1, 1));\n}\n",
        );
        let names: Vec<&str> = t.kernel_variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["MatMul", "Ghost"]);
        assert!(t.entered_kinds.contains("MatMul"));
        let dead: Vec<&str> = t
            .dead_kernel_variants()
            .iter()
            .map(|v| v.name.as_str())
            .collect();
        assert_eq!(dead, vec!["Ghost"]);
        assert_eq!(t.kernel_fns.len(), 1);
    }

    #[test]
    fn metric_registrations_read_literal_names() {
        let t = table_for(
            "fn wire(r: &Registry) {\n    let _c = r.counter(\"serve.submitted\");\n    let _g = r.gauge(\"serve.depth\");\n}\n",
        );
        let names: Vec<&str> = t.metric_regs.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["serve.submitted", "serve.depth"]);
    }

    #[test]
    fn test_code_is_excluded_from_the_table() {
        let t = table_for(
            "#[cfg(test)]\nmod tests {\n    fn t(a: &AtomicU64) { a.store(1, Ordering::SeqCst); unsafe { x(); } }\n}\n",
        );
        assert!(t.atomic_sites.is_empty());
        assert!(t.unsafe_sites.is_empty());
    }
}
