//! adv-lint: the workspace invariant linter.
//!
//! Generic clippy cannot know that this repo promises panic-free library
//! hot paths, a written rationale for every atomic ordering, clock reads
//! only where timing is the feature, and typed error enums on public
//! fallible APIs. This crate enforces those invariants with a token-level
//! static analysis: a comment/string-aware lexer ([`lexer`]), a per-file
//! model with test-region and allowlist maps ([`source`]), and a rule
//! engine ([`rules`]) producing rustc-style diagnostics and a
//! machine-readable JSON report ([`diagnostics`]).
//!
//! Run it over the workspace with `cargo run -p adv-lint -- check`
//! (`--format json` for the report CI uploads). A finding is suppressed
//! only by an allowlist comment that names the rule *and* gives a reason:
//!
//! ```text
//! // lint-ok(ordering-justified): independent counter; no data is published
//! hits.fetch_add(1, Ordering::Relaxed);
//! ```
//!
//! Allowlist comments with a missing reason, or naming an unknown rule, are
//! themselves findings (`lint-ok-syntax`) — a stale or lazy allowlist fails
//! the build just like the violation it hides.
//!
//! The analysis is deliberately token-level rather than type-aware (the
//! offline build environment has no `syn`/`rustc` driver): every rule
//! matches surface syntax that cannot be confused by context once strings
//! and comments are scrubbed. The fixture suite under `tests/fixtures/`
//! pins each rule's behavior; the `workspace_is_clean` integration test
//! pins the whole workspace at zero findings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

pub use diagnostics::{render_json, render_text, Finding};

use rules::{all_rules, FileCtx};
use source::SourceFile;
use std::path::Path;

/// Errors from the linter itself (not findings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintError {
    /// A file or directory could not be read.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error text.
        message: String,
    },
    /// The given root has no `Cargo.toml`.
    NotAWorkspace {
        /// The root that was tried.
        root: String,
    },
    /// An unknown CLI argument or value.
    Usage(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io { path, message } => write!(f, "cannot read {path}: {message}"),
            LintError::NotAWorkspace { root } => {
                write!(f, "{root} is not a workspace root (no Cargo.toml)")
            }
            LintError::Usage(msg) => write!(f, "usage error: {msg}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Which crates each scoped rule covers. The unscoped rules
/// (`ordering-justified`, `crate-error-types`) run on every discovered
/// crate.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crates whose library code must be panic-free (`no-panic-lib`).
    pub no_panic_crates: Vec<String>,
    /// Subset of crates where bracket indexing is also forbidden (the
    /// concurrency core, where every index deserves a justification).
    pub index_check_crates: Vec<String>,
    /// Crates whose library code may not read clocks ungated
    /// (`gated-clocks`).
    pub clock_crates: Vec<String>,
}

impl LintConfig {
    /// The workspace policy: the numeric/serving/observability core is
    /// panic-free and clock-gated; the concurrency core (serve, obs,
    /// chaos) and the linter itself additionally ban unchecked indexing.
    pub fn workspace_default() -> LintConfig {
        let s = |names: &[&str]| names.iter().map(|n| n.to_string()).collect();
        LintConfig {
            no_panic_crates: s(&[
                "adv-tensor",
                "adv-nn",
                "adv-serve",
                "adv-obs",
                "adv-chaos",
                "adv-magnet",
                "adv-lint",
                "adv-store",
                "adv-telemetry",
                "adv-profile",
            ]),
            index_check_crates: s(&["adv-serve", "adv-obs", "adv-chaos"]),
            clock_crates: s(&[
                "adv-tensor",
                "adv-nn",
                "adv-serve",
                "adv-obs",
                "adv-chaos",
                "adv-magnet",
                "adv-data",
                "adv-attacks",
                "adv-lint",
                "adv-store",
                "adv-telemetry",
                "adv-profile",
            ]),
        }
    }

    /// A configuration with every scoped rule disabled (unit tests opt in
    /// crate by crate).
    pub fn empty() -> LintConfig {
        LintConfig {
            no_panic_crates: Vec::new(),
            index_check_crates: Vec::new(),
            clock_crates: Vec::new(),
        }
    }
}

/// The outcome of a lint run.
#[derive(Debug)]
pub struct Report {
    /// Every surviving finding, in path/line order.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_checked: usize,
    /// Number of well-formed allowlist entries seen.
    pub allows: usize,
}

impl Report {
    /// `true` when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report as text or JSON.
    pub fn render(&self, json: bool) -> String {
        if json {
            render_json(&self.findings, self.files_checked, self.allows)
        } else if self.findings.is_empty() {
            format!(
                "adv-lint: clean — {} files checked, {} allowlisted sites\n",
                self.files_checked, self.allows
            )
        } else {
            format!(
                "{}adv-lint: {} finding(s) in {} files checked\n",
                render_text(&self.findings),
                self.findings.len(),
                self.files_checked
            )
        }
    }
}

/// Lints the workspace at `root` with the default policy.
///
/// # Errors
///
/// Propagates [`LintError`] from discovery and file loading; findings are
/// data, not errors.
pub fn run_check(root: &Path) -> Result<Report, LintError> {
    run_check_with(root, &LintConfig::workspace_default())
}

/// Lints the workspace at `root` under an explicit configuration.
///
/// # Errors
///
/// See [`run_check`].
pub fn run_check_with(root: &Path, config: &LintConfig) -> Result<Report, LintError> {
    let rules = all_rules();
    let known: Vec<&'static str> = rules.iter().map(|r| r.id()).collect();
    let mut findings = Vec::new();
    let mut files_checked = 0usize;
    let mut allows = 0usize;

    for krate in workspace::discover(root)? {
        let files = workspace::load_sources(&krate)?;
        let ctx = FileCtx {
            crate_name: &krate.name,
            config,
        };
        for file in &files {
            files_checked += 1;
            // A statement-scoped allow appears once per covered line; count
            // distinct comments, not coverage.
            let distinct: std::collections::BTreeSet<(usize, &str)> = file
                .allows
                .iter()
                .flatten()
                .map(|a| (a.comment_line, a.rule.as_str()))
                .collect();
            allows += distinct.len();
            check_allow_comments(file, &known, &mut findings);
            for rule in &rules {
                if rule.applies(&ctx) {
                    rule.check(file, &ctx, &mut findings);
                }
            }
        }
    }
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.column, a.rule).cmp(&(&b.path, b.line, b.column, b.rule))
    });
    Ok(Report {
        findings,
        files_checked,
        allows,
    })
}

/// Reports malformed allowlist comments (`lint-ok-syntax`): a missing
/// reason, or a rule id the engine does not know.
fn check_allow_comments(file: &SourceFile, known: &[&'static str], out: &mut Vec<Finding>) {
    for &line in &file.malformed_allows {
        if file.is_test_line(line) {
            continue;
        }
        out.push(Finding {
            rule: "lint-ok-syntax",
            path: file.rel.clone(),
            line,
            column: 1,
            width: 1,
            message: "`lint-ok(..)` comment without a reason".to_string(),
            snippet: file.lines.get(line - 1).cloned().unwrap_or_default(),
            help: "write `// lint-ok(<rule>): <reason>` — the reason is mandatory".to_string(),
        });
    }
    let mut reported: std::collections::BTreeSet<(usize, &str)> = std::collections::BTreeSet::new();
    for (idx, entries) in file.allows.iter().enumerate() {
        for allow in entries {
            if !known.contains(&allow.rule.as_str())
                && !file.is_test_line(allow.comment_line)
                && reported.insert((allow.comment_line, allow.rule.as_str()))
            {
                out.push(Finding {
                    rule: "lint-ok-syntax",
                    path: file.rel.clone(),
                    line: allow.comment_line,
                    column: 1,
                    width: 1,
                    message: format!("`lint-ok({})` names an unknown rule", allow.rule),
                    snippet: file
                        .lines
                        .get(allow.comment_line - 1)
                        .or_else(|| file.lines.get(idx))
                        .cloned()
                        .unwrap_or_default(),
                    help: "run `adv-lint rules` for the rule list".to_string(),
                });
            }
        }
    }
}
