//! adv-lint: the workspace invariant linter — a two-pass, workspace-wide
//! analysis.
//!
//! Generic clippy cannot know that this repo promises panic-free library
//! hot paths, a written rationale for every atomic ordering, clock reads
//! only where timing is the feature, typed error enums on public fallible
//! APIs, `SAFETY:` contracts on every `unsafe`, and allocation-free
//! measured kernel regions. This crate enforces those invariants with a
//! token-level static analysis in two passes:
//!
//! - **Pass 1** ([`table`]) walks every first-party target (library code,
//!   binaries, benches, examples) and builds a workspace symbol table:
//!   atomic field declarations and every load/store/RMW site keyed by
//!   field, `unsafe` occurrences and their `SAFETY:` comments,
//!   `KernelKind` variants vs `KernelScope::enter` call sites, and metric
//!   registrations vs the DESIGN.md schema.
//! - **Pass 2** runs the per-file rules ([`rules`]) *and* the cross-file
//!   rules ([`rules::ws`]) over that table: `atomic-protocol`,
//!   `unsafe-audit`, `no-alloc-in-kernel`, `dead-slot`, `dead-metric`,
//!   plus the suppression-debt ratchet ([`debt`]).
//!
//! The building blocks are a comment/string-aware lexer ([`lexer`]), a
//! per-file model with test-region and allowlist maps ([`source`]), and a
//! diagnostics layer producing rustc-style text and a machine-readable
//! JSON report ([`diagnostics`]).
//!
//! Run it over the workspace with `cargo run -p adv-lint -- check`
//! (`--format json` for the report CI uploads). A finding is suppressed
//! only by an allowlist comment that names the rule *and* gives a reason:
//!
//! ```text
//! // lint-ok(atomic-protocol): cross-thread handoff documented in DESIGN.md
//! self.state.store(OPEN, Ordering::Release);
//! ```
//!
//! Allowlist comments with a missing reason, or naming an unknown rule, are
//! themselves findings (`lint-ok-syntax`), and the per-rule allow counts
//! are ratcheted against the committed `lint_debt.json` baseline
//! (`lint-debt`) — a stale or lazy allowlist fails the build just like the
//! violation it hides. The symbol table also works *for* the allowlist:
//! atomic fields whose every access is a `Relaxed` pure counter are proven
//! benign and need no justification at all (stale ones are flagged).
//!
//! The analysis is deliberately token-level rather than type-aware (the
//! offline build environment has no `syn`/`rustc` driver): every rule
//! matches surface syntax that cannot be confused by context once strings
//! and comments are scrubbed. The fixture suites under `tests/fixtures/`
//! pin each rule's behavior; the `workspace_is_clean` integration test
//! pins the whole workspace at zero findings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod debt;
pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod table;
pub mod workspace;

pub use diagnostics::{render_json, render_text, Finding};
pub use table::SymbolTable;

use rules::{all_rule_ids, all_rules, FileCtx};
use source::SourceFile;
use std::collections::BTreeMap;
use std::path::Path;

/// Errors from the linter itself (not findings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintError {
    /// A file or directory could not be read.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error text.
        message: String,
    },
    /// The given root has no `Cargo.toml`.
    NotAWorkspace {
        /// The root that was tried.
        root: String,
    },
    /// An unknown CLI argument or value.
    Usage(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io { path, message } => write!(f, "cannot read {path}: {message}"),
            LintError::NotAWorkspace { root } => {
                write!(f, "{root} is not a workspace root (no Cargo.toml)")
            }
            LintError::Usage(msg) => write!(f, "usage error: {msg}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Which crates each scoped rule covers. The unscoped rules
/// (`ordering-justified`, `crate-error-types`) run on every discovered
/// crate.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crates whose library code must be panic-free (`no-panic-lib`).
    pub no_panic_crates: Vec<String>,
    /// Subset of crates where bracket indexing is also forbidden (the
    /// concurrency core, where every index deserves a justification).
    pub index_check_crates: Vec<String>,
    /// Crates whose library code may not read clocks ungated
    /// (`gated-clocks`).
    pub clock_crates: Vec<String>,
}

impl LintConfig {
    /// The workspace policy: the numeric/serving/observability core is
    /// panic-free and clock-gated; the concurrency core (serve, obs,
    /// chaos) and the linter itself additionally ban unchecked indexing.
    pub fn workspace_default() -> LintConfig {
        let s = |names: &[&str]| names.iter().map(|n| n.to_string()).collect();
        LintConfig {
            no_panic_crates: s(&[
                "adv-tensor",
                "adv-nn",
                "adv-serve",
                "adv-obs",
                "adv-chaos",
                "adv-magnet",
                "adv-lint",
                "adv-store",
                "adv-telemetry",
                "adv-profile",
                "adv-net",
                "adv-zoo",
            ]),
            index_check_crates: s(&["adv-serve", "adv-obs", "adv-chaos", "adv-net", "adv-zoo"]),
            clock_crates: s(&[
                "adv-tensor",
                "adv-nn",
                "adv-serve",
                "adv-obs",
                "adv-chaos",
                "adv-magnet",
                "adv-data",
                "adv-attacks",
                "adv-lint",
                "adv-store",
                "adv-telemetry",
                "adv-profile",
                "adv-net",
                "adv-zoo",
            ]),
        }
    }

    /// A configuration with every scoped rule disabled (unit tests opt in
    /// crate by crate).
    pub fn empty() -> LintConfig {
        LintConfig {
            no_panic_crates: Vec::new(),
            index_check_crates: Vec::new(),
            clock_crates: Vec::new(),
        }
    }
}

/// The outcome of a lint run.
#[derive(Debug)]
pub struct Report {
    /// Every surviving finding, in path/line order.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_checked: usize,
    /// Number of `.rs` files under the root that the walk did *not* scan
    /// (tests, shims, fixtures) — printed so coverage gaps stay visible.
    pub skipped: usize,
    /// Number of well-formed allowlist entries seen.
    pub allows: usize,
    /// Distinct allowlist comments per rule (the suppression-debt counts).
    pub allows_by_rule: BTreeMap<String, usize>,
}

impl Report {
    /// `true` when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report as text or JSON.
    pub fn render(&self, json: bool) -> String {
        if json {
            render_json(
                &self.findings,
                self.files_checked,
                self.skipped,
                self.allows,
            )
        } else if self.findings.is_empty() {
            format!(
                "adv-lint: clean — {} files checked, {} skipped \
                 (tests/shims/fixtures), {} allowlisted sites\n",
                self.files_checked, self.skipped, self.allows
            )
        } else {
            format!(
                "{}adv-lint: {} finding(s) in {} files checked ({} skipped)\n",
                render_text(&self.findings),
                self.findings.len(),
                self.files_checked,
                self.skipped
            )
        }
    }
}

/// Lints the workspace at `root` with the default policy.
///
/// # Errors
///
/// Propagates [`LintError`] from discovery and file loading; findings are
/// data, not errors.
pub fn run_check(root: &Path) -> Result<Report, LintError> {
    run_check_with(root, &LintConfig::workspace_default())
}

/// Lints the workspace at `root` under an explicit configuration.
///
/// # Errors
///
/// See [`run_check`].
pub fn run_check_with(root: &Path, config: &LintConfig) -> Result<Report, LintError> {
    let rules = all_rules();
    let known = all_rule_ids();
    let mut findings = Vec::new();
    let mut files_checked = 0usize;
    let mut allows = 0usize;
    let mut allows_by_rule: BTreeMap<String, usize> = BTreeMap::new();

    // Load everything first: pass 1 (the symbol table) needs the whole
    // workspace in view before any cross-file rule can run.
    let mut loaded: Vec<(workspace::CrateSrc, Vec<SourceFile>)> = Vec::new();
    for krate in workspace::discover(root)? {
        let files = workspace::load_sources(&krate)?;
        loaded.push((krate, files));
    }
    let table_input: Vec<(&str, &[SourceFile])> = loaded
        .iter()
        .map(|(k, f)| (k.name.as_str(), f.as_slice()))
        .collect();
    let symbols = table::SymbolTable::build(root, &table_input);

    // Pass 2a: per-file rules.
    for (krate, files) in &loaded {
        let ctx = FileCtx {
            crate_name: &krate.name,
            config,
        };
        for file in files {
            files_checked += 1;
            // A statement-scoped allow appears once per covered line; count
            // distinct comments, not coverage.
            let distinct: std::collections::BTreeSet<(usize, &str)> = file
                .allows
                .iter()
                .flatten()
                .map(|a| (a.comment_line, a.rule.as_str()))
                .collect();
            allows += distinct.len();
            for (_, rule) in &distinct {
                *allows_by_rule.entry((*rule).to_string()).or_insert(0) += 1;
            }
            check_allow_comments(file, &known, &mut findings);
            for rule in &rules {
                if rule.applies(&ctx) {
                    rule.check(file, &ctx, &mut findings);
                }
            }
        }
    }

    // The symbol table proves some ordering sites benign: fields whose
    // every access is a Relaxed pure counter need no justification, so
    // `ordering-justified` findings on those exact tokens are dropped.
    findings.retain(|f| {
        !(f.rule == "ordering-justified"
            && f.column > 0
            && symbols
                .exempt_ordering_tokens
                .contains(&(f.path.clone(), f.line, f.column - 1)))
    });

    // Pass 2b: workspace-wide rules over the symbol table.
    let ws_ctx = rules::WsCtx {
        files: loaded
            .iter()
            .flat_map(|(_, files)| files.iter())
            .map(|f| (f.rel.as_str(), f))
            .collect(),
        design_lines: std::fs::read_to_string(root.join("DESIGN.md"))
            .map(|t| t.lines().map(str::to_string).collect())
            .unwrap_or_default(),
    };
    rules::check_workspace(&symbols, &ws_ctx, &mut findings);

    // The suppression-debt ratchet against the committed baseline.
    debt::check_debt(root, &allows_by_rule, &mut findings);

    let skipped = workspace::count_rs_files(root)?.saturating_sub(files_checked);

    findings.sort_by(|a, b| {
        (&a.path, a.line, a.column, a.rule).cmp(&(&b.path, b.line, b.column, b.rule))
    });
    Ok(Report {
        findings,
        files_checked,
        skipped,
        allows,
        allows_by_rule,
    })
}

/// Builds just the pass-1 symbol table for the workspace at `root`
/// (used by the `workspace_symbol_table` integration test and exploratory
/// tooling; `run_check` builds its own).
///
/// # Errors
///
/// Propagates [`LintError`] from discovery and file loading.
pub fn build_symbol_table(root: &Path) -> Result<table::SymbolTable, LintError> {
    let mut loaded: Vec<(workspace::CrateSrc, Vec<SourceFile>)> = Vec::new();
    for krate in workspace::discover(root)? {
        let files = workspace::load_sources(&krate)?;
        loaded.push((krate, files));
    }
    let table_input: Vec<(&str, &[SourceFile])> = loaded
        .iter()
        .map(|(k, f)| (k.name.as_str(), f.as_slice()))
        .collect();
    Ok(table::SymbolTable::build(root, &table_input))
}

/// Reports malformed allowlist comments (`lint-ok-syntax`): a missing
/// reason, or a rule id the engine does not know.
fn check_allow_comments(file: &SourceFile, known: &[&'static str], out: &mut Vec<Finding>) {
    for &line in &file.malformed_allows {
        if file.is_test_line(line) {
            continue;
        }
        out.push(Finding {
            rule: "lint-ok-syntax",
            path: file.rel.clone(),
            line,
            column: 1,
            width: 1,
            message: "`lint-ok(..)` comment without a reason".to_string(),
            snippet: file.lines.get(line - 1).cloned().unwrap_or_default(),
            help: "write `// lint-ok(<rule>): <reason>` — the reason is mandatory".to_string(),
        });
    }
    let mut reported: std::collections::BTreeSet<(usize, &str)> = std::collections::BTreeSet::new();
    for (idx, entries) in file.allows.iter().enumerate() {
        for allow in entries {
            if !known.contains(&allow.rule.as_str())
                && !file.is_test_line(allow.comment_line)
                && reported.insert((allow.comment_line, allow.rule.as_str()))
            {
                out.push(Finding {
                    rule: "lint-ok-syntax",
                    path: file.rel.clone(),
                    line: allow.comment_line,
                    column: 1,
                    width: 1,
                    message: format!("`lint-ok({})` names an unknown rule", allow.rule),
                    snippet: file
                        .lines
                        .get(allow.comment_line - 1)
                        .or_else(|| file.lines.get(idx))
                        .cloned()
                        .unwrap_or_default(),
                    help: "run `adv-lint rules` for the rule list".to_string(),
                });
            }
        }
    }
}
