//! A minimal Rust surface lexer: separates code from comments and blanks
//! out literal contents.
//!
//! The rule engine never needs a full parse tree — every invariant it
//! checks is visible at the token surface (`.unwrap()`, `Ordering::Relaxed`,
//! `Instant::now`, a `pub fn` signature). What it *does* need is to never be
//! fooled by a forbidden pattern inside a string literal or a comment, and
//! to see comments separately so `// lint-ok(...)` allowlists can be
//! attached to code lines. [`scrub`] provides exactly that: a copy of the
//! source where every comment and every literal body is replaced by spaces
//! (newlines preserved, so line/column positions are unchanged), plus the
//! comment texts with their line numbers.

/// One comment extracted from the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
}

/// The result of [`scrub`]: position-preserving code with literals and
/// comments blanked, plus the extracted comments.
#[derive(Debug, Clone)]
pub struct Scrubbed {
    /// Source text with comments and literal bodies replaced by spaces.
    /// Identical length and line structure to the input.
    pub code: String,
    /// Every comment, in source order.
    pub comments: Vec<Comment>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Scrubs `src`, blanking comments and literal bodies while preserving the
/// exact line/column layout (see module docs).
pub fn scrub(src: &str) -> Scrubbed {
    let bytes: Vec<char> = src.chars().collect();
    let mut code = String::with_capacity(src.len());
    let mut comments = Vec::new();
    let mut current_comment = String::new();
    let mut comment_line = 0usize;
    let mut state = State::Code;
    let mut line = 1usize;
    let mut i = 0usize;

    // Pushes a source char to the scrubbed output, preserving newlines.
    fn blank(code: &mut String, c: char) {
        code.push(if c == '\n' { '\n' } else { ' ' });
    }

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    comment_line = line;
                    current_comment.clear();
                    current_comment.push_str("//");
                    blank(&mut code, '/');
                    blank(&mut code, '/');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    comment_line = line;
                    current_comment.clear();
                    current_comment.push_str("/*");
                    blank(&mut code, '/');
                    blank(&mut code, '*');
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    code.push(' ');
                }
                'r' | 'b' => {
                    // Possible raw/byte string: r", r#", br", b", rb is not
                    // a thing; scan optional second prefix char and hashes.
                    let mut j = i + 1;
                    if c == 'b' && bytes.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = j > i + 1 || c == 'r';
                    if is_raw && bytes.get(j) == Some(&'"') {
                        // Only a literal when `r`/`b` is not part of a wider
                        // identifier (e.g. `attr` or `rb` variable names).
                        let prev_ident = i > 0 && is_ident_char(bytes[i - 1]);
                        if !prev_ident {
                            for _ in i..=j {
                                code.push(' ');
                            }
                            i = j + 1;
                            state = State::RawStr(hashes);
                            continue;
                        }
                    }
                    if c == 'b' && bytes.get(i + 1) == Some(&'"') {
                        let prev_ident = i > 0 && is_ident_char(bytes[i - 1]);
                        if !prev_ident {
                            code.push(' ');
                            code.push(' ');
                            i += 2;
                            state = State::Str;
                            continue;
                        }
                    }
                    code.push(c);
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let is_lifetime = match next {
                        Some(n) if is_ident_char(n) && n != '\\' => bytes.get(i + 2) != Some(&'\''),
                        _ => false,
                    };
                    if is_lifetime {
                        code.push('\'');
                    } else {
                        state = State::Char;
                        code.push(' ');
                    }
                }
                _ => code.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    comments.push(Comment {
                        line: comment_line,
                        text: current_comment.clone(),
                    });
                    state = State::Code;
                    code.push('\n');
                } else {
                    current_comment.push(c);
                    blank(&mut code, c);
                }
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    current_comment.push_str("*/");
                    blank(&mut code, '*');
                    blank(&mut code, '/');
                    i += 2;
                    if depth == 1 {
                        comments.push(Comment {
                            line: comment_line,
                            text: current_comment.clone(),
                        });
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    continue;
                }
                if c == '/' && next == Some('*') {
                    current_comment.push_str("/*");
                    blank(&mut code, '/');
                    blank(&mut code, '*');
                    i += 2;
                    state = State::BlockComment(depth + 1);
                    continue;
                }
                current_comment.push(c);
                blank(&mut code, c);
            }
            State::Str => match c {
                '\\' => {
                    blank(&mut code, c);
                    if let Some(n) = next {
                        blank(&mut code, n);
                        i += 2;
                        if n == '\n' {
                            line += 1;
                        }
                        continue;
                    }
                }
                '"' => {
                    state = State::Code;
                    code.push(' ');
                }
                _ => blank(&mut code, c),
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && bytes.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        for _ in i..j {
                            code.push(' ');
                        }
                        i = j;
                        state = State::Code;
                        continue;
                    }
                }
                blank(&mut code, c);
            }
            State::Char => match c {
                '\\' => {
                    blank(&mut code, c);
                    if let Some(n) = next {
                        blank(&mut code, n);
                        i += 2;
                        continue;
                    }
                }
                '\'' => {
                    state = State::Code;
                    code.push(' ');
                }
                '\n' => {
                    // Unterminated char literal (shouldn't happen in code
                    // that compiles); bail back to code on the newline.
                    state = State::Code;
                    code.push('\n');
                }
                _ => blank(&mut code, c),
            },
        }
        if c == '\n' {
            line += 1;
        }
        i += 1;
    }
    if state == State::LineComment {
        comments.push(Comment {
            line: comment_line,
            text: current_comment,
        });
    }
    Scrubbed { code, comments }
}

/// `true` for characters that can appear inside a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"panic!\"; // unwrap() here\nlet y = 1;\n";
        let s = scrub(src);
        assert!(!s.code.contains("panic!"));
        assert!(!s.code.contains("unwrap"));
        assert!(s.code.contains("let y = 1;"));
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].line, 1);
        assert_eq!(s.comments[0].text, "// unwrap() here");
    }

    #[test]
    fn line_structure_is_preserved() {
        let src = "a\n\"two\nlines\"\nb /* c\nd */ e\n";
        let s = scrub(src);
        assert_eq!(s.code.lines().count(), src.lines().count());
        assert!(s.code.lines().nth(3).unwrap().starts_with('b'));
        assert!(s.code.lines().nth(4).unwrap().ends_with(" e"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"has \"quotes\" and unwrap()\"#; call();";
        let s = scrub(src);
        assert!(!s.code.contains("unwrap"));
        assert!(s.code.contains("call();"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = "let a = b\"panic!\"; let c = br#\"x\"#; done();";
        let s = scrub(src);
        assert!(!s.code.contains("panic!"));
        assert!(s.code.contains("done();"));
    }

    #[test]
    fn identifiers_ending_in_r_or_b_are_not_raw_strings() {
        let src = "let attr = \"x\"; let rb = 1; f(attr, rb);";
        let s = scrub(src);
        assert!(s.code.contains("let attr ="));
        assert!(s.code.contains("f(attr, rb);"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; g(c, n) }";
        let s = scrub(src);
        assert!(s.code.contains("<'a>"));
        assert!(s.code.contains("&'a str"));
        assert!(!s.code.contains("'x'"));
        assert!(s.code.contains("g(c, n)"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let s = scrub(src);
        assert!(s.code.contains('a'));
        assert!(s.code.contains('b'));
        assert!(!s.code.contains("still"));
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].text.contains("inner"));
    }

    #[test]
    fn escaped_quote_in_string() {
        let src = "let s = \"he said \\\"unwrap()\\\" loudly\"; after();";
        let s = scrub(src);
        assert!(!s.code.contains("unwrap"));
        assert!(s.code.contains("after();"));
    }

    #[test]
    fn trailing_line_comment_without_newline() {
        let s = scrub("x // tail");
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].text, "// tail");
    }
    #[test]
    fn brace_and_slash_char_literals_do_not_confuse_regions() {
        // `'{'`/`'}'` must not look like braces to the test-region brace
        // matcher, and `'/'` must not open a comment.
        let s = scrub("let open = '{'; let close = '}'; let sl = '/'; f(); // tail");
        assert!(!s.code.contains('{'));
        assert!(!s.code.contains('}'));
        assert!(s.code.contains("f();"));
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].text, "// tail");
    }

    #[test]
    fn escaped_quote_char_literals_terminate() {
        let src = "let c = '\\''; g(); let q = b'\\''; h();";
        let s = scrub(src);
        assert!(s.code.contains("g();"), "{:?}", s.code);
        assert!(s.code.contains("h();"), "{:?}", s.code);
    }

    #[test]
    fn multi_hash_raw_strings_skip_embedded_terminators() {
        // `"#` inside an `r##` string is content, not a terminator.
        let src = "let s = r##\"one \"# unwrap() \"## ; call();";
        let s = scrub(src);
        assert!(!s.code.contains("unwrap"), "{:?}", s.code);
        assert!(s.code.contains("call();"), "{:?}", s.code);
    }
}
