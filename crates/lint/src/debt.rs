//! Suppression-debt baseline: `lint_debt.json`.
//!
//! Every `// lint-ok(<rule>): <reason>` is technical debt — justified,
//! but debt. The committed `lint_debt.json` at the workspace root records
//! how much of it the team has consciously accepted, per rule. A check run
//! compares the live per-rule allow counts against the baseline and fails
//! (`lint-debt` findings) when any rule's count *grew*: new suppressions
//! require either fixing the site or deliberately updating the baseline
//! with `adv-lint debt --write` — a diff a reviewer will see. Counts
//! shrinking is progress and never fails; refresh the baseline to ratchet
//! it down.

use crate::diagnostics::Finding;
use std::collections::BTreeMap;
use std::path::Path;

/// File name of the committed baseline at the workspace root.
pub const DEBT_FILE: &str = "lint_debt.json";

/// Reads the committed baseline. `None` when no `lint_debt.json` exists
/// (fixture workspaces and fresh checkouts are not debt-enforced).
pub fn load_baseline(root: &Path) -> Option<BTreeMap<String, usize>> {
    let text = std::fs::read_to_string(root.join(DEBT_FILE)).ok()?;
    Some(parse_baseline(&text))
}

/// Parses the baseline's flat `{"rule": count, ...}` object. Unparseable
/// entries are skipped — a malformed baseline then under-reports, and the
/// growth check fails loudly rather than silently passing.
fn parse_baseline(text: &str) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    // Flat object: split on '"' to get keys, read the number after the ':'.
    let mut rest = text;
    while let Some(q0) = rest.find('"') {
        rest = &rest[q0 + 1..];
        let Some(q1) = rest.find('"') else { break };
        let key = &rest[..q1];
        rest = &rest[q1 + 1..];
        let Some(colon) = rest.find(':') else { break };
        let after = rest[colon + 1..].trim_start();
        let digits: String = after.chars().take_while(|c| c.is_ascii_digit()).collect();
        if let Ok(n) = digits.parse::<usize>() {
            if !key.is_empty() {
                out.insert(key.to_string(), n);
            }
        }
        rest = &rest[colon + 1..];
    }
    out
}

/// Renders live counts as the baseline file's content (sorted, one rule
/// per line, so diffs are reviewable).
pub fn render_baseline(counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::from("{\n");
    let entries: Vec<String> = counts
        .iter()
        .filter(|(_, n)| **n > 0)
        .map(|(rule, n)| format!("  \"{rule}\": {n}"))
        .collect();
    out.push_str(&entries.join(",\n"));
    out.push_str("\n}\n");
    out
}

/// Compares live counts against the baseline, emitting one `lint-debt`
/// finding per rule whose suppression count grew.
pub fn check_debt(root: &Path, live: &BTreeMap<String, usize>, out: &mut Vec<Finding>) {
    let Some(baseline) = load_baseline(root) else {
        return;
    };
    for (rule, &count) in live {
        let allowed = baseline.get(rule).copied().unwrap_or(0);
        if count > allowed {
            out.push(Finding {
                rule: "lint-debt",
                path: DEBT_FILE.to_string(),
                line: 1,
                column: 1,
                width: 1,
                message: format!(
                    "`lint-ok({rule})` count grew to {count} (baseline {allowed}) — \
                     suppression debt increased without a baseline update"
                ),
                snippet: String::new(),
                help: "fix the newly suppressed sites, or consciously accept the debt \
                       with `cargo run -p adv-lint -- debt --write` and commit the diff"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_roundtrip() {
        let mut counts = BTreeMap::new();
        counts.insert("ordering-justified".to_string(), 40);
        counts.insert("gated-clocks".to_string(), 28);
        counts.insert("never-used".to_string(), 0);
        let text = render_baseline(&counts);
        let parsed = parse_baseline(&text);
        assert_eq!(parsed.get("ordering-justified"), Some(&40));
        assert_eq!(parsed.get("gated-clocks"), Some(&28));
        assert_eq!(parsed.get("never-used"), None, "zero entries are dropped");
    }

    #[test]
    fn growth_is_a_finding_shrink_is_not() {
        let dir = std::env::temp_dir().join("adv-lint-debt-test");
        let _ = std::fs::create_dir_all(&dir);
        std::fs::write(
            dir.join(DEBT_FILE),
            "{\n  \"gated-clocks\": 5,\n  \"no-panic-lib\": 3\n}\n",
        )
        .expect("temp baseline must be writable");
        let mut live = BTreeMap::new();
        live.insert("gated-clocks".to_string(), 6);
        live.insert("no-panic-lib".to_string(), 2);
        let mut out = Vec::new();
        check_debt(&dir, &live, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("gated-clocks"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_baseline_is_not_enforced() {
        let mut live = BTreeMap::new();
        live.insert("x".to_string(), 100);
        let mut out = Vec::new();
        check_debt(Path::new("/nonexistent-debt-root"), &live, &mut out);
        assert!(out.is_empty());
    }
}
