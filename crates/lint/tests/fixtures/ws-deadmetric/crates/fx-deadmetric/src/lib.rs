//! Fixture: exactly one `dead-metric` violation (`fx.extra` is registered
//! but missing from DESIGN.md's schema block).

#![forbid(unsafe_code)]

/// Registers both metrics; the undocumented one is the violation.
pub fn install(registry: &Registry) {
    registry.counter("fx.documented");
    registry.counter("fx.extra");
}
