//! Fixture: exactly one `atomic-protocol` violation (the unconsumed
//! Release publish).

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

static READY: AtomicU64 = AtomicU64::new(0);

/// Release-publishes a flag that no Acquire-side consumer ever reads —
/// the violation (half a handoff).
pub fn publish() {
    // lint-ok(ordering-justified): Release publishes the readiness flag
    READY.store(1, Ordering::Release);
}
