//! Fixture: exactly one `dead-slot` violation (the `Ghost` variant).

#![forbid(unsafe_code)]

/// Kernel inventory with explicit discriminants, like the real one.
pub enum KernelKind {
    /// Entered below.
    MatMul = 0,
    /// Never passed to `KernelScope::enter` — the violation.
    Ghost = 1,
}

/// Enters the only live kind.
pub fn run(n: usize) {
    let _prof = KernelScope::enter(KernelKind::MatMul, || Work::map(n));
}
