//! Fixture: exactly one `lint-debt` violation — the committed baseline
//! budgets no `gated-clocks` suppressions, and this crate has one.

#![forbid(unsafe_code)]

use std::time::Instant;

/// The allow below is well-formed; the unbudgeted debt is the violation.
pub fn measure() -> Instant {
    // lint-ok(gated-clocks): timing is this fixture's feature
    Instant::now()
}

/// Budgeted debt (baseline allows one `no-panic-lib`); must NOT be a
/// finding.
pub fn budgeted(v: Option<u64>) -> u64 {
    // lint-ok(no-panic-lib): fixture exercises the budgeted path
    v.unwrap_or(0)
}
