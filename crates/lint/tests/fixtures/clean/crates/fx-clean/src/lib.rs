//! Clean fixture: every rule's pattern appears here in compliant or
//! allowlisted form, so the linter must report zero findings even with all
//! scoped rules enabled for this crate.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static TICKS: AtomicU64 = AtomicU64::new(0);
static LEVEL: AtomicU64 = AtomicU64::new(0);

/// The crate's typed error.
#[derive(Debug)]
pub enum CleanError {
    /// The input was empty.
    Empty,
}

/// Fallible API on the crate error type (compliant with
/// `crate-error-types`).
pub fn first(values: &[u64]) -> Result<u64, CleanError> {
    // `.first()` instead of `values[0]` (compliant with `no-panic-lib`,
    // including the indexing check).
    values.first().copied().ok_or(CleanError::Empty)
}

/// A proven Relaxed counter needs NO justification comment: every access
/// to `TICKS` is Relaxed and within the counter op set, so the workspace
/// analysis exempts it (compliant with `ordering-justified` v2).
pub fn tick() -> u64 {
    TICKS.fetch_add(1, Ordering::Relaxed)
}

/// Counter reads are exempt too.
pub fn ticks() -> u64 {
    TICKS.load(Ordering::Relaxed)
}

/// A store disqualifies `LEVEL` from the counter exemption, so this site
/// carries a live justification (compliant, and NOT stale).
pub fn set_level(v: u64) {
    // lint-ok(ordering-justified): level value; readers tolerate staleness
    LEVEL.store(v, Ordering::Relaxed);
}

/// An allowlisted clock read (compliant with `gated-clocks`): timing is
/// this function's documented purpose.
pub fn measure<F: FnOnce()>(f: F) -> std::time::Duration {
    // lint-ok(gated-clocks): measuring wall time is the feature here
    let start = Instant::now();
    f();
    start.elapsed()
}

/// An allowlisted unwrap (compliant with `no-panic-lib`): the value was
/// checked the line before.
pub fn double_checked(v: Option<u64>) -> u64 {
    if v.is_none() {
        return 0;
    }
    // lint-ok(no-panic-lib): is_none checked directly above
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn everything_still_works() {
        assert_eq!(super::first(&[7]).unwrap(), 7);
        assert_eq!(super::double_checked(Some(3)), 3);
    }
}
