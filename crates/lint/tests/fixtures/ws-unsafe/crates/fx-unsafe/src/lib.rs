//! Fixture: exactly one `unsafe-audit` violation — this lib.rs does not
//! forbid unsafe code at the crate level, and no unsafe_policy.txt clears
//! the crate.

/// Harmless body; the missing crate attribute is the violation.
pub fn noop() {}
