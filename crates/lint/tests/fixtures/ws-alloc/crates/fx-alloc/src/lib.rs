//! Fixture: exactly one `no-alloc-in-kernel` violation (the `Vec::new`
//! after `KernelScope::enter`).

#![forbid(unsafe_code)]

/// Opens a kernel scope, then allocates inside the measured region — the
/// violation. (The fixture is never compiled; `KernelScope` is a token
/// pattern to the linter, not a resolved path.)
pub fn hot(input: &[f32]) -> Vec<f32> {
    let _prof = KernelScope::enter(KernelKind::Elementwise, || Work::map(input.len()));
    let mut out = Vec::new();
    out.extend_from_slice(input);
    out
}

/// Allocates before entering; must NOT be a finding.
pub fn cold(input: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(input.len());
    let _prof = KernelScope::enter(KernelKind::Elementwise, || Work::map(input.len()));
    out.extend_from_slice(input);
    out
}
