//! Fixture: exactly one `gated-clocks` violation (the `Instant::now`).

use std::time::Instant;

/// Reads the clock in library code with no gate — the violation.
pub fn stamp() -> Instant {
    Instant::now()
}
