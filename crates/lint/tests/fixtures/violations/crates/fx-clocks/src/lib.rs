//! Fixture: exactly one `gated-clocks` violation (the `Instant::now`).

#![forbid(unsafe_code)]

use std::time::Instant;

/// Reads the clock in library code with no gate — the violation.
pub fn stamp() -> Instant {
    Instant::now()
}
