//! Fixture: exactly one `crate-error-types` violation (the `String` error).

#![forbid(unsafe_code)]

/// The crate's own error type; returning it is compliant.
#[derive(Debug)]
pub struct FxError(pub String);

/// Public fallible API with a stringly error — the violation.
pub fn load(path: &str) -> Result<Vec<u8>, String> {
    Err(format!("cannot load {path}"))
}

/// Typed crate error; must NOT be a finding.
pub fn load_typed(path: &str) -> Result<Vec<u8>, FxError> {
    Err(FxError(format!("cannot load {path}")))
}

/// Non-error trait object return; must NOT be a finding.
pub fn handlers() -> Vec<Box<dyn Fn() -> u32>> {
    Vec::new()
}

/// Private fns are out of scope; must NOT be a finding.
fn internal() -> Result<(), String> {
    Ok(())
}

/// Keeps `internal` used so the fixture stays warning-free if compiled.
pub fn touch() {
    let _ = internal();
}
