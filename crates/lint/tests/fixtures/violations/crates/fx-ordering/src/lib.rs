//! Fixture: exactly one `ordering-justified` violation (the bare load).

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

static HITS: AtomicU64 = AtomicU64::new(0);

/// Reads the value without justifying the ordering — the violation.
pub fn hits() -> u64 {
    HITS.load(Ordering::Relaxed)
}

/// A justified site on the same atomic; must NOT be a finding. The store
/// also keeps `HITS` out of the proven-counter exemption (counters never
/// store), so the bare load above stays a violation.
pub fn reset() {
    // lint-ok(ordering-justified): level value; readers tolerate staleness
    HITS.store(0, Ordering::Relaxed);
}

/// `cmp::Ordering` is not an atomic ordering; must NOT be a finding.
pub fn compare(a: u64, b: u64) -> std::cmp::Ordering {
    a.cmp(&b)
}
