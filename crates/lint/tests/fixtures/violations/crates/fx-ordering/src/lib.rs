//! Fixture: exactly one `ordering-justified` violation (the bare load).

use std::sync::atomic::{AtomicU64, Ordering};

static HITS: AtomicU64 = AtomicU64::new(0);

/// Reads the counter without justifying the ordering — the violation.
pub fn hits() -> u64 {
    HITS.load(Ordering::Relaxed)
}

/// A justified site on the same atomic; must NOT be a finding.
pub fn bump() {
    // lint-ok(ordering-justified): independent counter, no data published
    HITS.fetch_add(1, Ordering::Relaxed);
}

/// `cmp::Ordering` is not an atomic ordering; must NOT be a finding.
pub fn compare(a: u64, b: u64) -> std::cmp::Ordering {
    a.cmp(&b)
}
