//! Fixture: exactly one `lint-ok-syntax` violation (the reasonless allow).

use std::sync::atomic::{AtomicU64, Ordering};

static N: AtomicU64 = AtomicU64::new(0);

/// The allow below names the right rule but gives no reason — the
/// violation (and because the allow is malformed, it suppresses nothing;
/// the ordering site itself stays covered by the valid allow that follows).
pub fn bump() {
    // lint-ok(ordering-justified):
    // lint-ok(ordering-justified): independent counter, justified properly
    N.fetch_add(1, Ordering::Relaxed);
}
