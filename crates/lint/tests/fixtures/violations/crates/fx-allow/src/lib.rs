//! Fixture: exactly one `lint-ok-syntax` violation (the reasonless allow).

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

static N: AtomicU64 = AtomicU64::new(0);

/// The allow below names the right rule but gives no reason — the
/// violation (and because the allow is malformed, it suppresses nothing;
/// the ordering site itself stays covered by the valid allow that follows).
pub fn set() {
    // lint-ok(ordering-justified):
    // lint-ok(ordering-justified): level value set once, justified properly
    N.store(1, Ordering::Relaxed);
}
