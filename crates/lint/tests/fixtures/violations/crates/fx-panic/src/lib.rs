//! Fixture: exactly one `no-panic-lib` violation (the `unwrap` below).

#![forbid(unsafe_code)]

/// Parses a port, panicking on bad input — the violation under test.
pub fn parse_port(s: &str) -> u16 {
    s.parse().unwrap()
}

#[cfg(test)]
mod tests {
    // Panics in test code are fine; this must NOT be a finding.
    #[test]
    fn unwrap_in_tests_is_allowed() {
        assert_eq!(super::parse_port("80"), 80);
        let v: Vec<u32> = vec![1];
        assert_eq!(v[0], v.first().copied().unwrap());
    }
}
