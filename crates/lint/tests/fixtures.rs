//! Fixture-based integration tests: each rule fires exactly once on the
//! `violations` fixture workspace, the `clean` fixture is finding-free, and
//! the real workspace passes the default policy end to end.

use adv_lint::{run_check, run_check_with, LintConfig};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn fixture_config() -> LintConfig {
    LintConfig {
        no_panic_crates: vec!["fx-panic".into(), "fx-clean".into()],
        index_check_crates: vec!["fx-panic".into(), "fx-clean".into()],
        clock_crates: vec!["fx-clocks".into(), "fx-clean".into()],
    }
}

#[test]
fn violations_fixture_triggers_each_rule_exactly_once() {
    let report = run_check_with(&fixture("violations"), &fixture_config())
        .expect("fixture workspace must be walkable");

    let mut by_rule: Vec<(&str, &str, usize)> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.path.as_str(), f.line))
        .collect();
    by_rule.sort_unstable();
    assert_eq!(
        by_rule,
        vec![
            ("crate-error-types", "crates/fx-errors/src/lib.rs", 10),
            ("gated-clocks", "crates/fx-clocks/src/lib.rs", 9),
            ("lint-ok-syntax", "crates/fx-allow/src/lib.rs", 13),
            ("no-panic-lib", "crates/fx-panic/src/lib.rs", 7),
            ("ordering-justified", "crates/fx-ordering/src/lib.rs", 11),
        ],
        "each rule must fire exactly once, nowhere else: {:#?}",
        report.findings
    );
}

#[test]
fn violations_fixture_diagnostics_carry_file_line_and_caret() {
    let report = run_check_with(&fixture("violations"), &fixture_config()).expect("walkable");
    assert!(!report.is_clean());

    let text = report.render(false);
    assert!(
        text.contains("--> crates/fx-panic/src/lib.rs:7:"),
        "rustc-style file:line:col expected:\n{text}"
    );
    assert!(text.contains('^'), "caret underline expected:\n{text}");
    assert!(
        text.contains("error[no-panic-lib]"),
        "rule id in header expected:\n{text}"
    );

    let json = report.render(true);
    assert!(json.contains("\"rule\":\"gated-clocks\""), "{json}");
    assert!(json.contains("\"findings\":5"), "summary count: {json}");
}

#[test]
fn clean_fixture_has_no_findings_and_counts_allows() {
    let report =
        run_check_with(&fixture("clean"), &fixture_config()).expect("fixture must be walkable");
    assert!(
        report.is_clean(),
        "clean fixture must pass: {:#?}",
        report.findings
    );
    assert_eq!(
        report.allows, 3,
        "the three allowlisted sites must be counted"
    );
}

#[test]
fn missing_fixture_root_is_a_typed_error() {
    let err = run_check_with(&fixture("does-not-exist"), &fixture_config()).unwrap_err();
    assert!(matches!(err, adv_lint::LintError::NotAWorkspace { .. }));
}

/// The acceptance gate: the real workspace, under the real policy, is
/// clean. A seeded violation anywhere in a covered crate turns this red
/// (and `cargo run -p adv-lint -- check` non-zero) with a file:line
/// diagnostic.
#[test]
fn workspace_is_clean_under_default_policy() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint always sits two levels below the root")
        .to_path_buf();
    let report = run_check(&root).expect("workspace must be walkable");
    assert!(
        report.is_clean(),
        "workspace must pass its own linter:\n{}",
        report.render(false)
    );
    assert!(report.files_checked > 100, "whole workspace was walked");
    assert!(report.allows > 20, "allowlist audit trail present");
}

/// Simulates the driver's seeded-violation check without touching the real
/// tree: the same engine, pointed at a copy of the violations fixture laid
/// out like a covered crate, reports the seeded `unwrap()` with its
/// location.
#[test]
fn seeded_unwrap_in_a_covered_crate_is_reported_with_location() {
    let report = run_check_with(
        &fixture("violations"),
        &LintConfig {
            no_panic_crates: vec!["fx-panic".into()],
            index_check_crates: vec![],
            clock_crates: vec![],
        },
    )
    .expect("walkable");
    let hit = report
        .findings
        .iter()
        .find(|f| f.rule == "no-panic-lib")
        .expect("the seeded unwrap must be found");
    assert_eq!(
        (hit.path.as_str(), hit.line),
        ("crates/fx-panic/src/lib.rs", 7)
    );
    assert!(hit.snippet.contains("unwrap"), "{:?}", hit.snippet);
}

/// One fixture workspace per workspace-wide (pass-2) rule, each pinning
/// exactly one finding — the cross-file analogue of the `violations`
/// fixture above.
#[test]
fn each_workspace_rule_fires_exactly_once_in_its_fixture() {
    let cases = [
        (
            "ws-atomic",
            "atomic-protocol",
            "crates/fx-atomic/src/lib.rs",
        ),
        ("ws-unsafe", "unsafe-audit", "crates/fx-unsafe/src/lib.rs"),
        (
            "ws-alloc",
            "no-alloc-in-kernel",
            "crates/fx-alloc/src/lib.rs",
        ),
        ("ws-deadslot", "dead-slot", "crates/fx-deadslot/src/lib.rs"),
        (
            "ws-deadmetric",
            "dead-metric",
            "crates/fx-deadmetric/src/lib.rs",
        ),
        ("ws-debt", "lint-debt", "lint_debt.json"),
    ];
    for (fx, rule, path) in cases {
        let report = run_check(&fixture(fx)).expect("fixture workspace must be walkable");
        assert_eq!(
            report.findings.len(),
            1,
            "{fx} must pin exactly one finding: {:#?}",
            report.findings
        );
        assert_eq!(report.findings[0].rule, rule, "{fx}");
        assert_eq!(report.findings[0].path, path, "{fx}");
    }
}
