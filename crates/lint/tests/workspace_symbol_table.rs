//! Pins the pass-1 symbol-table inventory over the *real* workspace.
//!
//! These assertions are the machine-checked form of DESIGN.md's claims
//! about the codebase: how many atomic fields exist, that the workspace is
//! unsafe-free ahead of the SIMD lane, and that every `KernelKind` slot is
//! actually entered somewhere. When one of these fails, either the code
//! drifted (update DESIGN.md too) or the table collector regressed.

use adv_lint::build_symbol_table;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn pass1_inventory_matches_the_workspace() {
    let table = build_symbol_table(&workspace_root()).expect("workspace must be walkable");

    // Atomic protocol inventory: the workspace's lock-free state lives in a
    // known set of struct/static fields, and every load/store/RMW site
    // resolves to one of them.
    assert!(
        table.atomic_fields.len() >= 30,
        "expected the full atomic-field inventory, got {}: {:?}",
        table.atomic_fields.len(),
        table
            .atomic_fields
            .iter()
            .map(|f| format!("{}.{}", f.owner, f.field))
            .collect::<Vec<_>>()
    );
    assert!(
        !table.atomic_sites.is_empty(),
        "atomic access sites must be collected"
    );

    // Pure counters (every non-test access Relaxed, ops within the counter
    // set) are what lets atomic-protocol retire justification comments; the
    // workspace has plenty.
    assert!(
        table.relaxed_counters.len() >= 10,
        "expected proven Relaxed counters, got {:?}",
        table.relaxed_counters
    );

    // Pre-SIMD baseline: zero `unsafe` anywhere, and every lib.rs carries
    // the forbid. unsafe_policy.txt pre-clears adv-tensor for the SIMD
    // lane, but clearance is not use.
    assert_eq!(
        table.unsafe_sites.len(),
        0,
        "workspace must be unsafe-free before the SIMD lane lands: {:?}",
        table.unsafe_sites
    );
    assert!(
        table.crate_unsafe.iter().all(|c| c.forbids_unsafe),
        "every lib.rs must carry #![forbid(unsafe_code)]: {:?}",
        table
            .crate_unsafe
            .iter()
            .filter(|c| !c.forbids_unsafe)
            .map(|c| c.name.clone())
            .collect::<Vec<_>>()
    );
    assert!(
        table.unsafe_policy.contains_key("adv-tensor"),
        "unsafe_policy.txt pre-clears the SIMD lane"
    );

    // Kernel accounting: all fourteen KernelKind slots exist and each one
    // is entered by at least one non-test KernelScope::enter site.
    assert_eq!(
        table.kernel_variants.len(),
        14,
        "KernelKind inventory drifted: {:?}",
        table
            .kernel_variants
            .iter()
            .map(|v| v.name.clone())
            .collect::<Vec<_>>()
    );
    let dead: Vec<_> = table
        .dead_kernel_variants()
        .iter()
        .map(|v| v.name.clone())
        .collect();
    assert!(dead.is_empty(), "dead KernelKind slots: {dead:?}");

    // Metric registry: pass 1 sees the literal-name registrations and the
    // DESIGN.md schema block that mirrors them.
    assert!(
        table.has_metric_schema,
        "DESIGN.md must carry the metric-schema block"
    );
    let registered: std::collections::BTreeSet<&str> =
        table.metric_regs.iter().map(|r| r.name.as_str()).collect();
    for name in ["serve.submitted", "magnet.detected", "profile.dropped"] {
        assert!(registered.contains(name), "missing metric {name}");
    }
    assert_eq!(
        registered,
        table
            .doc_metrics
            .keys()
            .map(String::as_str)
            .collect::<std::collections::BTreeSet<&str>>(),
        "DESIGN.md schema and registered metrics must agree"
    );
}
