//! Property test: pruned, chunked range queries are indistinguishable from
//! a brute-force scan over every row ever recorded — for arbitrary row
//! populations, tick ranges, and filters. Windowed drift aggregates must
//! likewise agree with per-window brute-force recomputation.

use adv_magnet::{DefenseScheme, Verdict};
use adv_telemetry::{drift_windows, query, ChunkReader, ChunkStore, RowFilter, TelemetryRow};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch dir per proptest case (cases run concurrently).
fn scratch() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let id = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "adv_telemetry_query_prop_{}_{id}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[derive(Debug, Clone)]
struct RawRow {
    tick: u64,
    tenant: u32,
    route: u32,
    scheme: u8,
    degraded: bool,
    detected: bool,
    class: u8,
    score: f32,
}

fn raw_row() -> impl Strategy<Value = RawRow> {
    (
        0u64..1000,
        0u32..4,
        0u32..3,
        0u8..4,
        any::<bool>(),
        any::<bool>(),
        0u8..10,
        0.0f32..100.0,
    )
        .prop_map(
            |(tick, tenant, route, scheme, degraded, detected, class, score)| RawRow {
                tick,
                tenant,
                route,
                scheme,
                degraded,
                detected,
                class,
                score,
            },
        )
}

fn materialize(raw: &[RawRow]) -> Vec<TelemetryRow> {
    raw.iter()
        .enumerate()
        .map(|(i, r)| {
            TelemetryRow::new(
                r.tick,
                r.tenant,
                r.route,
                i as u32,
                DefenseScheme::ALL[usize::from(r.scheme)],
                r.degraded,
                if r.detected {
                    Verdict::Detected
                } else {
                    Verdict::Classified(usize::from(r.class))
                },
                1,
                2,
                i as u64,
                &[r.score, 100.0 - r.score],
            )
            // Derived, not fresh randomness: still exercises per-variant
            // pruning and matching across chunks.
            .with_variant(r.tenant % 3)
        })
        .collect()
}

fn filter_from(
    tenant: Option<u32>,
    variant: Option<u32>,
    scheme: Option<u8>,
    degraded: Option<bool>,
    detected: Option<bool>,
) -> RowFilter {
    RowFilter {
        tenant,
        route: None,
        variant,
        scheme: scheme.map(|s| DefenseScheme::ALL[usize::from(s)]),
        degraded,
        detected,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn range_query_equals_brute_force_scan(
        raw in proptest::collection::vec(raw_row(), 0..120),
        chunk_rows in 1usize..24,
        t0 in 0u64..1100,
        span in 0u64..1100,
        tenant in proptest::option::of(0u32..5),
        variant in proptest::option::of(0u32..4),
        scheme in proptest::option::of(0u8..4),
        degraded in proptest::option::of(any::<bool>()),
        detected in proptest::option::of(any::<bool>()),
    ) {
        let dir = scratch();
        let rows = materialize(&raw);
        let mut store = ChunkStore::open(&dir, chunk_rows).unwrap();
        for row in &rows {
            store.append(row).unwrap();
        }
        store.flush().unwrap();
        drop(store);

        let range = t0..t0.saturating_add(span);
        let filter = filter_from(tenant, variant, scheme, degraded, detected);
        let reader = ChunkReader::open(&dir).unwrap();
        let result = query(&reader, range.clone(), &filter).unwrap();

        let expected: Vec<TelemetryRow> = rows
            .iter()
            .filter(|r| range.contains(&r.tick) && filter.matches(r))
            .copied()
            .collect();
        prop_assert_eq!(&result.rows, &expected, "query != brute-force scan");
        prop_assert_eq!(result.chunks_rejected, 0);
        // Pruning must never hide a scanned chunk: pruned + scanned covers
        // the whole manifest.
        prop_assert_eq!(
            result.chunks_pruned + result.chunks_scanned,
            reader.entries().len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drift_windows_equal_per_window_brute_force(
        raw in proptest::collection::vec(raw_row(), 1..100),
        chunk_rows in 1usize..16,
        windows in 1usize..9,
    ) {
        let dir = scratch();
        let rows = materialize(&raw);
        let mut store = ChunkStore::open(&dir, chunk_rows).unwrap();
        for row in &rows {
            store.append(row).unwrap();
        }
        store.flush().unwrap();
        drop(store);

        let range = 0u64..1000;
        let filter = RowFilter::default();
        let reader = ChunkReader::open(&dir).unwrap();
        let agg = drift_windows(&reader, range.clone(), windows, &filter).unwrap();
        prop_assert_eq!(agg.len(), windows);

        let width = 1000u64.div_ceil(windows as u64);
        for (w, window) in agg.iter().enumerate() {
            let in_window = |r: &&TelemetryRow| {
                range.contains(&r.tick) && (r.tick / width) as usize == w
            };
            let expect_rows = rows.iter().filter(in_window).count() as u64;
            let expect_detected = rows
                .iter()
                .filter(in_window)
                .filter(|r| r.verdict == Verdict::Detected)
                .count() as u64;
            let expect_degraded =
                rows.iter().filter(in_window).filter(|r| r.degraded).count() as u64;
            prop_assert_eq!(window.rows, expect_rows, "window {} rows", w);
            prop_assert_eq!(window.detected, expect_detected, "window {} detected", w);
            prop_assert_eq!(window.degraded, expect_degraded, "window {} degraded", w);
            // Sketch totals track the rows (two live scores per row).
            prop_assert_eq!(window.sketches[0].count(), expect_rows);
            prop_assert_eq!(window.sketches[1].count(), expect_rows);
            prop_assert_eq!(window.sketches[2].count(), 0);
            // Quantiles stay inside the observed score range.
            if let (Some(q50), Some(lo), Some(hi)) = (
                window.sketches[0].quantile(0.5),
                window.sketches[0].observed_min(),
                window.sketches[0].observed_max(),
            ) {
                prop_assert!(q50 >= lo && q50 <= hi);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
