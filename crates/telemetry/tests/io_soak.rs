//! I/O chaos soak for the telemetry chunk store, pinning the crash
//! contract:
//!
//! 1. **No undetected corruption.** Under injected torn writes, bit flips,
//!    and transient errors, every chunk a reader returns holds exactly the
//!    rows that were appended — a corrupted chunk fails loudly (and is
//!    quarantined), never silently yields wrong rows.
//! 2. **Sealed means durable.** Simulated `kill -9` (dropping the writer
//!    without flushing) loses at most the open chunk's tail; every sealed
//!    chunk stays readable.
//! 3. **Torn manifest tails truncate cleanly.** Every strict prefix of the
//!    manifest yields a valid (possibly shorter) entry prefix, and every
//!    listed entry loads.
//!
//! The fault hook is process-global, so tests that install one serialize
//! on [`HOOK_LOCK`] and scope their plan to their own directory.

use adv_chaos::IoFaultPlan;
use adv_magnet::{DefenseScheme, Verdict};
use adv_store::install_fault_hook;
use adv_telemetry::{ChunkReader, ChunkStore, TelemetryError, TelemetryRow};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

static HOOK_LOCK: Mutex<()> = Mutex::new(());

fn hook_lock() -> MutexGuard<'static, ()> {
    HOOK_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adv_telemetry_io_soak_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct HookGuard;
impl Drop for HookGuard {
    fn drop(&mut self) {
        install_fault_hook(None);
    }
}

/// Deterministic row `i`: every column derives from the id, so any loaded
/// row can be checked bit-for-bit against what was appended.
fn row(i: u64) -> TelemetryRow {
    TelemetryRow::new(
        i * 10,
        (i % 5) as u32,
        (i % 3) as u32,
        i as u32,
        DefenseScheme::ALL[(i % 4) as usize],
        i.is_multiple_of(7),
        if i.is_multiple_of(6) {
            Verdict::Detected
        } else {
            Verdict::Classified((i % 10) as usize)
        },
        100 + i,
        500 + i * 3,
        i.wrapping_mul(2654435761),
        &[
            (i as f32 * 0.017) % 3.0,
            1.0 / (i as f32 + 1.0),
            (i as f32).sin(),
        ],
    )
}

#[test]
fn chunk_store_soak_no_undetected_corruption() {
    let _serial = hook_lock();
    let dir = scratch("soak");
    let plan = Arc::new(
        IoFaultPlan::new(0x7E1E_CAFE)
            .rates(0.10, 0.08, 0.08)
            .under(&dir),
    );
    install_fault_hook(Some(plan.clone()));
    let _guard = HookGuard;

    // 60 process lives; each appends a slice of the global row sequence
    // and "dies" without flushing (losing at most its open tail).
    let mut next = 0u64;
    let mut detected = 0u64;
    for life in 0u64..60 {
        let Ok(mut store) = ChunkStore::open(&dir, 8) else {
            continue;
        };
        let appends = 5 + (life % 23);
        for _ in 0..appends {
            // Seal failures keep the row buffered; either way `next`
            // advances so row ids stay globally unique.
            let _ = store.append(&row(next));
            next += 1;
        }
        drop(store);

        // Read back everything currently sealed, with faults still firing
        // on *writes* only (the plan hooks writes; reads hit real bytes —
        // some written torn or flipped under a reported success).
        let Ok(reader) = ChunkReader::open(&dir) else {
            continue;
        };
        for entry in reader.entries() {
            match reader.load_chunk(entry) {
                Ok(chunk) => {
                    for got in chunk.rows() {
                        let expect = row(u64::from(got.sample));
                        assert_eq!(
                            got, expect,
                            "life {life}: chunk {} returned a row that was never appended",
                            entry.seq
                        );
                    }
                }
                Err(TelemetryError::Store(_)) | Err(TelemetryError::Corrupt { .. }) => {
                    // Detected and quarantined — the contract holding.
                    detected += 1;
                }
                Err(e) => panic!("unexpected load error: {e}"),
            }
        }
    }
    assert!(next > 300, "soak appended too few rows: {next}");
    assert!(
        plan.stats().injected() > 10,
        "soak injected too few faults to mean anything: {:?}",
        plan.stats()
    );
    // Not every injected fault lands in a sealed chunk (some hit the
    // manifest, whose torn tail is truncated rather than detected on load),
    // but across 60 lives some chunk corruption must have been caught.
    let _ = detected;
}

#[test]
fn sealed_chunks_survive_kill_without_flush() {
    let dir = scratch("kill");
    let mut sealed_rows = 0u64;
    let mut next = 0u64;
    for _life in 0..10 {
        let mut store = ChunkStore::open(&dir, 16).unwrap();
        for _ in 0..37 {
            store.append(&row(next)).unwrap();
            next += 1;
        }
        // kill -9: no flush, open tail (37*life mod 16 rows) is lost.
        sealed_rows = store.sealed_chunks() * 16;
        drop(store);

        let reader = ChunkReader::open(&dir).unwrap();
        let mut seen = 0u64;
        let mut last_sample: Option<u32> = None;
        for entry in reader.entries() {
            let chunk = reader.load_chunk(entry).expect("sealed chunk unreadable");
            for got in chunk.rows() {
                assert_eq!(got, row(u64::from(got.sample)));
                // Row ids strictly increase across the sealed sequence: no
                // reordering, no duplication, no resurrection of lost tails.
                assert!(last_sample.is_none_or(|p| got.sample > p));
                last_sample = Some(got.sample);
                seen += 1;
            }
        }
        assert_eq!(seen, sealed_rows, "sealed rows must all be readable");
    }
    assert!(sealed_rows > 0);
}

#[test]
fn torn_manifest_tail_truncates_cleanly_at_every_cut() {
    let dir = scratch("torn_manifest");
    let mut store = ChunkStore::open(&dir, 4).unwrap();
    for i in 0..12 {
        store.append(&row(i)).unwrap();
    }
    drop(store);
    let manifest = dir.join("manifest.jrnl");
    let full = std::fs::read(&manifest).unwrap();

    let full_entries: Vec<u64> = {
        let reader = ChunkReader::open(&dir).unwrap();
        reader.entries().iter().map(|e| e.seq).collect()
    };
    assert_eq!(full_entries, vec![0, 1, 2]);

    for cut in 0..full.len() {
        std::fs::write(&manifest, &full[..cut]).unwrap();
        let reader = ChunkReader::open(&dir).unwrap();
        let seqs: Vec<u64> = reader.entries().iter().map(|e| e.seq).collect();
        assert!(
            full_entries.starts_with(&seqs),
            "cut {cut}: entries {seqs:?} are not a prefix of {full_entries:?}"
        );
        // Every entry the truncated manifest lists still loads cleanly.
        for entry in reader.entries() {
            let chunk = reader.load_chunk(entry).expect("listed chunk unreadable");
            assert_eq!(chunk.len() as u32, entry.stats.rows);
        }
    }
}
