//! The recording front door: a bounded, non-blocking channel between the
//! serving workers and the chunk-store writer thread.
//!
//! The contract is **drop, never block**: [`TelemetrySink::record`] is a
//! `try_send` — when the buffer is full (or the writer is gone) the row is
//! dropped and counted (`telemetry.rows_dropped`), and the serving worker
//! proceeds untouched. The `serve_throughput` bench pins the cost of the
//! enabled path against the disabled one.
//!
//! The writer thread owns the [`ChunkStore`]. Seal failures (disk full,
//! injected faults) are logged and retried on later appends; if the open
//! chunk grows past twice its seal capacity the excess rows are discarded
//! and counted rather than letting memory grow without bound.

use crate::store::ChunkStore;
use crate::{metric_names, obs, Result, TelemetryError, TelemetryRow};
use adv_serve::{ResponseObserver, ServedRecord};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Recorder tuning knobs.
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Directory the chunk store writes under.
    pub dir: PathBuf,
    /// Rows per sealed chunk.
    pub chunk_rows: usize,
    /// Capacity of the bounded channel between sinks and the writer; rows
    /// submitted beyond it are dropped (and counted), never queued
    /// unboundedly.
    pub buffer: usize,
}

impl RecorderConfig {
    /// Defaults (1024-row chunks, 4096-row buffer) under `dir`.
    pub fn new(dir: impl AsRef<Path>) -> RecorderConfig {
        RecorderConfig {
            dir: dir.as_ref().to_path_buf(),
            chunk_rows: 1024,
            buffer: 4096,
        }
    }
}

enum Msg {
    Row(TelemetryRow),
    Flush(mpsc::Sender<std::result::Result<(), String>>),
    Stop(mpsc::Sender<std::result::Result<(), String>>),
}

/// The cloneable, non-blocking recording handle. Implements
/// `adv_serve::ResponseObserver`, so an `Arc<TelemetrySink>` drops straight
/// into [`adv_serve::ServeConfig`]'s `observer` field.
#[derive(Debug, Clone)]
pub struct TelemetrySink {
    tx: mpsc::SyncSender<Msg>,
    dropped: Arc<AtomicU64>,
}

impl TelemetrySink {
    /// Hands one row to the writer. Never blocks: a full buffer or a dead
    /// writer drops the row, bumps `telemetry.rows_dropped`, and returns.
    pub fn record(&self, row: TelemetryRow) {
        if self.tx.try_send(Msg::Row(row)).is_err() {
            // lint-ok(ordering-justified): a monotonically increasing drop
            // counter with no other state depending on its value; Relaxed
            // suffices.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            obs::bump(metric_names::ROWS_DROPPED);
        }
    }

    /// Rows this recorder's sinks have dropped (shared across clones).
    pub fn dropped(&self) -> u64 {
        // lint-ok(ordering-justified): see `record` — an independent
        // counter read, no ordering relationship to enforce.
        self.dropped.load(Ordering::Relaxed)
    }
}

impl ResponseObserver for TelemetrySink {
    fn on_response(&self, record: &ServedRecord<'_>) {
        self.record(
            TelemetryRow::new(
                record.tick_ns,
                record.tag.tenant,
                record.tag.route,
                record.tag.sample,
                record.scheme,
                record.degraded,
                record.verdict,
                record.queue_ns,
                record.infer_ns,
                record.trace_id,
                record.scores,
            )
            .with_variant(record.tag.variant),
        );
    }
}

/// Owns the writer thread. Sinks ([`sink`](Self::sink)) stay valid for the
/// recorder's lifetime; [`shutdown`](Self::shutdown) seals the open chunk
/// and joins the writer even while sink clones are still held elsewhere.
#[derive(Debug)]
pub struct TelemetryRecorder {
    sink: TelemetrySink,
    dir: PathBuf,
    writer: Option<JoinHandle<()>>,
}

impl TelemetryRecorder {
    /// Opens the chunk store under `cfg.dir` (resuming an existing one) and
    /// starts the writer thread.
    ///
    /// # Errors
    ///
    /// Store/config errors opening the chunk store; a failed thread spawn.
    pub fn start(cfg: RecorderConfig) -> Result<TelemetryRecorder> {
        if cfg.buffer == 0 {
            return Err(TelemetryError::InvalidConfig(
                "buffer must be at least 1".into(),
            ));
        }
        // Open in the caller's thread so configuration and I/O errors
        // surface synchronously instead of as dropped rows.
        let store = ChunkStore::open(&cfg.dir, cfg.chunk_rows)?;
        let dir = cfg.dir.clone();
        let (tx, rx) = mpsc::sync_channel(cfg.buffer);
        let writer = std::thread::Builder::new()
            .name("adv-telemetry-writer".into())
            .spawn(move || writer_loop(store, &rx, cfg.chunk_rows))
            .map_err(|e| TelemetryError::Recorder(format!("cannot spawn writer: {e}")))?;
        Ok(TelemetryRecorder {
            sink: TelemetrySink {
                tx,
                dropped: Arc::new(AtomicU64::new(0)),
            },
            dir,
            writer: Some(writer),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A recording handle to hand out (e.g. as the engine's observer).
    pub fn sink(&self) -> TelemetrySink {
        self.sink.clone()
    }

    /// Drains the buffer and seals any partial open chunk, making every row
    /// recorded so far visible to readers. Blocks until the writer acks.
    ///
    /// # Errors
    ///
    /// The writer's seal error, or [`TelemetryError::Recorder`] if the
    /// writer is gone.
    pub fn flush(&self) -> Result<()> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.sink
            .tx
            .send(Msg::Flush(ack_tx))
            .map_err(|_| TelemetryError::Recorder("writer thread is gone".into()))?;
        match ack_rx.recv() {
            Ok(Ok(())) => Ok(()),
            Ok(Err(msg)) => Err(TelemetryError::Recorder(msg)),
            Err(_) => Err(TelemetryError::Recorder("writer died during flush".into())),
        }
    }

    /// Seals the open chunk and joins the writer. Sink clones held
    /// elsewhere keep dropping rows harmlessly afterwards.
    ///
    /// # Errors
    ///
    /// The final seal's error; the writer is joined either way.
    pub fn shutdown(mut self) -> Result<()> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<()> {
        let Some(writer) = self.writer.take() else {
            return Ok(());
        };
        let (ack_tx, ack_rx) = mpsc::channel();
        let result = match self.sink.tx.send(Msg::Stop(ack_tx)) {
            Ok(()) => match ack_rx.recv() {
                Ok(Ok(())) => Ok(()),
                Ok(Err(msg)) => Err(TelemetryError::Recorder(msg)),
                Err(_) => Err(TelemetryError::Recorder(
                    "writer died during shutdown".into(),
                )),
            },
            Err(_) => Err(TelemetryError::Recorder("writer thread is gone".into())),
        };
        let _ = writer.join();
        result
    }
}

impl Drop for TelemetryRecorder {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

/// Writer body: append rows, seal on capacity, cap open-chunk growth when
/// sealing keeps failing, ack flush/stop requests.
fn writer_loop(mut store: ChunkStore, rx: &mpsc::Receiver<Msg>, chunk_rows: usize) {
    let cap = chunk_rows.saturating_mul(2).max(2);
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Row(row) => {
                if let Err(e) = store.append(&row) {
                    // The row is retained in the open chunk; the seal will
                    // be retried by subsequent appends or an explicit
                    // flush. Bound memory meanwhile.
                    eprintln!("[adv-telemetry] seal failed (will retry): {e}");
                    if store.open_rows() >= cap {
                        let lost = store.discard_open();
                        obs::add(metric_names::ROWS_DROPPED, lost as u64);
                        eprintln!(
                            "[adv-telemetry] open chunk exceeded {cap} rows under seal failures; dropped {lost} buffered rows"
                        );
                    }
                }
            }
            Msg::Flush(ack) => {
                let _ = ack.send(store.flush().map_err(|e| e.to_string()));
            }
            Msg::Stop(ack) => {
                let _ = ack.send(store.flush().map_err(|e| e.to_string()));
                return;
            }
        }
    }
    // All senders dropped without a Stop: best-effort final seal.
    if let Err(e) = store.flush() {
        eprintln!("[adv-telemetry] final seal failed: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ChunkReader;
    use adv_magnet::{DefenseScheme, Verdict};

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("adv_telemetry_rec_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn row(i: u64) -> TelemetryRow {
        TelemetryRow::new(
            i,
            1,
            2,
            i as u32,
            DefenseScheme::Full,
            false,
            Verdict::Classified(0),
            5,
            7,
            i + 100,
            &[0.1, 0.2],
        )
    }

    #[test]
    fn record_flush_read_roundtrip() {
        let dir = tmp("roundtrip");
        let rec = TelemetryRecorder::start(RecorderConfig {
            dir: dir.clone(),
            chunk_rows: 8,
            buffer: 64,
        })
        .unwrap();
        let sink = rec.sink();
        for i in 0..20 {
            sink.record(row(i));
        }
        rec.flush().unwrap();
        let reader = ChunkReader::open(&dir).unwrap();
        let total: u32 = reader.entries().iter().map(|e| e.stats.rows).sum();
        assert_eq!(total, 20);
        assert_eq!(sink.dropped(), 0);
        rec.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_seals_partial_chunk() {
        let dir = tmp("shutdown");
        let rec = TelemetryRecorder::start(RecorderConfig {
            dir: dir.clone(),
            chunk_rows: 100,
            buffer: 16,
        })
        .unwrap();
        let sink = rec.sink();
        for i in 0..5 {
            sink.record(row(i));
        }
        rec.shutdown().unwrap();
        let reader = ChunkReader::open(&dir).unwrap();
        assert_eq!(reader.entries().len(), 1);
        assert_eq!(reader.entries()[0].stats.rows, 5);
        // The sink outlives the recorder; further records drop, not hang.
        sink.record(row(99));
        assert_eq!(sink.dropped(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_buffer_drops_rows_without_blocking() {
        let dir = tmp("drops");
        let rec = TelemetryRecorder::start(RecorderConfig {
            dir: dir.clone(),
            chunk_rows: 4,
            buffer: 1,
        })
        .unwrap();
        // Stall the writer by flooding faster than it can seal; with a
        // buffer of 1 at least some of a rapid burst must drop, and the
        // burst itself must not block.
        let sink = rec.sink();
        for i in 0..10_000 {
            sink.record(row(i));
        }
        rec.flush().unwrap();
        let reader = ChunkReader::open(&dir).unwrap();
        let total: u64 = reader
            .entries()
            .iter()
            .map(|e| u64::from(e.stats.rows))
            .sum();
        assert_eq!(total + sink.dropped(), 10_000, "dropped + stored = sent");
        rec.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_buffer_is_rejected() {
        let err = TelemetryRecorder::start(RecorderConfig {
            dir: tmp("zero"),
            chunk_rows: 8,
            buffer: 0,
        })
        .unwrap_err();
        assert!(matches!(err, TelemetryError::InvalidConfig(_)));
    }
}
