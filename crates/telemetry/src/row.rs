//! The telemetry row: one served request, as the store records it.

use adv_magnet::{DefenseScheme, Verdict};

/// Detector-score columns a chunk carries. The paper's largest assembly
/// (D+256+JSD) deploys four detectors; rows from smaller assemblies leave
/// the surplus columns at zero with `nscores` marking the live prefix.
pub const MAX_DETECTORS: usize = 4;

/// One served request. Plain `Copy` data — the store's unit of recording,
/// filtering, and replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryRow {
    /// Monotonic timestamp tick in nanoseconds (the serving engine's
    /// `now_ns` time base); the time index queries range over this.
    pub tick: u64,
    /// Tenant key of the submitting client (0 when untagged).
    pub tenant: u32,
    /// Route key (e.g. which corpus or endpoint produced the input).
    pub route: u32,
    /// Sample id — resolves back to the input through a
    /// [`crate::SampleProvider`] at replay time.
    pub sample: u32,
    /// Model-zoo variant that served the request (0 = the default
    /// variant / a bare engine). The A/B axis of replay comparisons.
    pub variant: u32,
    /// Defense scheme the batch actually ran under.
    pub scheme: DefenseScheme,
    /// `true` when the breaker had degraded the configured scheme.
    pub degraded: bool,
    /// The pipeline's decision for this input.
    pub verdict: Verdict,
    /// Time the request waited in the queue, nanoseconds.
    pub queue_ns: u64,
    /// Pipeline execution time of the request's batch, nanoseconds.
    pub infer_ns: u64,
    /// Causal trace id of the request (`adv_profile::TraceId` raw value; 0
    /// when profiling was off). Joins this row with recorded span trees.
    pub trace: u64,
    /// Number of live entries in [`scores`](Self::scores).
    pub nscores: u8,
    /// Per-detector anomaly scores (first `nscores` entries are live).
    pub scores: [f32; MAX_DETECTORS],
}

impl TelemetryRow {
    /// The live detector scores.
    pub fn live_scores(&self) -> &[f32] {
        let n = (self.nscores as usize).min(MAX_DETECTORS);
        self.scores.get(..n).unwrap_or(&[])
    }

    /// Builds a row from loose parts, clamping the score list to
    /// [`MAX_DETECTORS`] columns.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        tick: u64,
        tenant: u32,
        route: u32,
        sample: u32,
        scheme: DefenseScheme,
        degraded: bool,
        verdict: Verdict,
        queue_ns: u64,
        infer_ns: u64,
        trace: u64,
        detector_scores: &[f32],
    ) -> TelemetryRow {
        let mut scores = [0f32; MAX_DETECTORS];
        let n = detector_scores.len().min(MAX_DETECTORS);
        for (slot, s) in scores.iter_mut().zip(detector_scores.iter().take(n)) {
            *slot = *s;
        }
        TelemetryRow {
            tick,
            tenant,
            route,
            sample,
            variant: 0,
            scheme,
            degraded,
            verdict,
            queue_ns,
            infer_ns,
            trace,
            nscores: n as u8,
            scores,
        }
    }

    /// Sets the serving variant (builder-style; [`new`](Self::new) defaults
    /// it to 0, the bare-engine / default-variant id).
    #[must_use]
    pub fn with_variant(mut self, variant: u32) -> TelemetryRow {
        self.variant = variant;
        self
    }
}

/// Encodes a scheme as one byte (stable across versions — the on-disk id).
pub(crate) fn scheme_code(scheme: DefenseScheme) -> u8 {
    match scheme {
        DefenseScheme::None => 0,
        DefenseScheme::DetectorOnly => 1,
        DefenseScheme::ReformerOnly => 2,
        DefenseScheme::Full => 3,
    }
}

/// Decodes a scheme byte; unknown codes reject the chunk.
pub(crate) fn scheme_from_code(code: u8) -> Option<DefenseScheme> {
    match code {
        0 => Some(DefenseScheme::None),
        1 => Some(DefenseScheme::DetectorOnly),
        2 => Some(DefenseScheme::ReformerOnly),
        3 => Some(DefenseScheme::Full),
        _ => None,
    }
}

/// Encodes a verdict: `-1` = detected, otherwise the predicted class.
pub(crate) fn verdict_code(verdict: Verdict) -> i32 {
    match verdict {
        Verdict::Detected => -1,
        Verdict::Classified(c) => i32::try_from(c).unwrap_or(i32::MAX),
    }
}

/// Decodes a verdict code; negative means detected.
pub(crate) fn verdict_from_code(code: i32) -> Verdict {
    if code < 0 {
        Verdict::Detected
    } else {
        Verdict::Classified(code as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_codes_roundtrip() {
        for scheme in DefenseScheme::ALL {
            assert_eq!(scheme_from_code(scheme_code(scheme)), Some(scheme));
        }
        assert_eq!(scheme_from_code(9), None);
    }

    #[test]
    fn verdict_codes_roundtrip() {
        assert_eq!(
            verdict_from_code(verdict_code(Verdict::Detected)),
            Verdict::Detected
        );
        for c in [0usize, 3, 9, 4096] {
            assert_eq!(
                verdict_from_code(verdict_code(Verdict::Classified(c))),
                Verdict::Classified(c)
            );
        }
    }

    #[test]
    fn new_clamps_scores() {
        let row = TelemetryRow::new(
            1,
            2,
            3,
            4,
            DefenseScheme::Full,
            false,
            Verdict::Detected,
            10,
            20,
            0,
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        );
        assert_eq!(row.nscores as usize, MAX_DETECTORS);
        assert_eq!(row.live_scores(), &[1.0, 2.0, 3.0, 4.0]);
        let short = TelemetryRow::new(
            1,
            2,
            3,
            4,
            DefenseScheme::None,
            false,
            Verdict::Classified(7),
            10,
            20,
            0,
            &[0.5],
        );
        assert_eq!(short.live_scores(), &[0.5]);
    }
}
