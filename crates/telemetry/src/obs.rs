//! Thin adapter onto the `adv-obs` registry: one relaxed load when
//! telemetry metrics are off, a counter bump when they are on.

pub(crate) fn bump(name: &str) {
    add(name, 1);
}

pub(crate) fn add(name: &str, n: u64) {
    if adv_obs::metrics_enabled() {
        adv_obs::global().counter(name).add(n);
    }
}
